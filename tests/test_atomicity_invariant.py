"""Global atomicity invariant under arbitrary single failures.

The paper's bottom line, tested as one property: for ANY invocation
topology and ANY single failure (a service fault or a peer disconnection
at any protocol point), the system terminates with relaxed atomicity —

* if the transaction survived (forward recovery), every *alive* peer's
  share is either committed work or was compensated during a retry;
* if it aborted, every alive peer's document is restored to its
  pre-transaction canonical state;
* no context on any alive peer is left ACTIVE after the origin's
  commit/abort decision;
* disconnected peers may hold garbage — exactly the §3.3 caveat — but
  only disconnected ones.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PeerDisconnected, ReproError, ServiceFault
from repro.sim.rng import SeededRng
from repro.sim.scenarios import build_topology, run_root_transaction
from repro.sim.workload import generate_invocation_tree, tree_peers
from repro.txn.transaction import TransactionState
from repro.xmlstore.serializer import canonical

FAULT_POINTS = ("before_execute", "after_execute")
DISCONNECT_POINTS = ("before_execute", "after_local_work", "before_return")


def snapshot_documents(scenario):
    return {
        peer_id: canonical(peer.get_axml_document(f"D{peer_id[2:]}").document)
        for peer_id, peer in scenario.peers.items()
    }


@given(
    seed=st.integers(0, 2**31 - 1),
    depth=st.integers(2, 4),
    failure_kind=st.sampled_from(["fault", "disconnect", "none"]),
    point_index=st.integers(0, 2),
)
@settings(max_examples=60, deadline=None)
def test_single_failure_atomicity(seed, depth, failure_kind, point_index):
    rng = SeededRng(seed)
    topology = generate_invocation_tree(rng, depth=depth, fanout=2)
    # parent watch on: orphans of an in-flight dead subtree self-detect.
    scenario = build_topology(
        topology, super_peers=("AP1",), parent_watch_interval=0.05
    )
    pre = snapshot_documents(scenario)
    peers = tree_peers(topology)
    victim = rng.choice([p for p in peers if p != "AP1"])
    victim_method = f"S{victim[2:]}"
    if failure_kind == "fault":
        point = FAULT_POINTS[point_index % len(FAULT_POINTS)]
        scenario.injector.fault_service(victim, victim_method, "Crash", point=point)
    elif failure_kind == "disconnect":
        point = DISCONNECT_POINTS[point_index % len(DISCONNECT_POINTS)]
        scenario.injector.disconnect_during(victim, victim_method, point)

    txn, error = run_root_transaction(scenario)
    origin = scenario.peer("AP1")
    if error is None:
        origin.commit(txn.txn_id)
    # (origin abort already ran inside the protocol when error != None)
    # Let keep-alive probes resolve any in-doubt orphans.
    scenario.network.events.run_until(scenario.network.clock.now + 2.0)

    for peer_id, peer in scenario.peers.items():
        if peer.disconnected:
            continue  # §3.3: dead peers may hold garbage
        context = peer.manager.contexts.get(txn.txn_id)
        if context is not None:
            assert context.state is not TransactionState.ACTIVE, (
                f"{peer_id} left ACTIVE after the decision"
            )
        if error is not None:
            # Aborted: alive peers must be back at their pre-state.
            post = canonical(peer.get_axml_document(f"D{peer_id[2:]}").document)
            assert post == pre[peer_id], f"{peer_id} not restored after abort"
        # Either way the log must be empty for this transaction.
        assert peer.manager.log.entries_for(txn.txn_id) == []


@given(seed=st.integers(0, 2**31 - 1), depth=st.integers(2, 4))
@settings(max_examples=25, deadline=None)
def test_no_failure_always_commits(seed, depth):
    rng = SeededRng(seed)
    topology = generate_invocation_tree(rng, depth=depth, fanout=2)
    scenario = build_topology(topology, super_peers=("AP1",))
    txn, error = run_root_transaction(scenario)
    assert error is None
    scenario.peer("AP1").commit(txn.txn_id)
    # every participant holds its marker entry
    for peer_id in tree_peers(topology):
        if peer_id == "AP1":
            continue
        doc = scenario.peer(peer_id).get_axml_document(f"D{peer_id[2:]}")
        assert f'<entry by="{peer_id}"/>' in doc.to_xml()


@given(seed=st.integers(0, 2**31 - 1), depth=st.integers(2, 3))
@settings(max_examples=25, deadline=None)
def test_peer_independent_matches_peer_dependent(seed, depth):
    """Both compensation modes must produce the same aborted state on
    alive peers."""
    rng = SeededRng(seed)
    topology = generate_invocation_tree(rng, depth=depth, fanout=2)
    leaves = [p for p in tree_peers(topology) if p not in topology and p != "AP1"]
    victim = rng.choice(leaves)
    states = {}
    for peer_independent in (False, True):
        scenario = build_topology(topology, peer_independent=peer_independent)
        scenario.injector.fault_service(
            victim, f"S{victim[2:]}", "Crash", point="after_execute"
        )
        txn, error = run_root_transaction(scenario)
        assert error is not None
        states[peer_independent] = snapshot_documents(scenario)
    assert states[False] == states[True]
