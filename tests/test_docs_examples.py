"""Executable documentation: every fenced ``python`` block must run.

Extracts each ```python fenced block from ``README.md`` and
``docs/*.md`` and executes it in a fresh namespace.  Snippets are part
of the public surface — when an API drifts, the doc drifts with it or
this suite fails.  Blocks are compiled with a ``<file>:<line>``
filename so assertion tracebacks point at the markdown source line.

Blocks that are illustrative-only (shell transcripts, frame formats)
simply aren't fenced as ``python``; there is no skip-list.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

FENCE_RE = re.compile(r"^```python[ \t]*$")
FENCE_END_RE = re.compile(r"^```[ \t]*$")


def _doc_files():
    yield REPO_ROOT / "README.md"
    yield from sorted((REPO_ROOT / "docs").glob("*.md"))


def extract_python_blocks(path: Path):
    """Yield ``(first_code_line_number, source)`` per fenced python block."""
    lines = path.read_text(encoding="utf-8").splitlines()
    block: list = []
    start = None
    for number, line in enumerate(lines, start=1):
        if start is None:
            if FENCE_RE.match(line):
                start = number + 1
                block = []
        elif FENCE_END_RE.match(line):
            yield start, "\n".join(block) + "\n"
            start = None
        else:
            block.append(line)
    if start is not None:  # unterminated fence is a doc bug, not a pass
        raise AssertionError(f"{path.name}: unterminated ```python fence")


def _collect_cases():
    cases = []
    for path in _doc_files():
        rel = path.relative_to(REPO_ROOT)
        for line, source in extract_python_blocks(path):
            cases.append(pytest.param(path, line, source, id=f"{rel}:{line}"))
    return cases


CASES = _collect_cases()


def test_docs_have_executable_blocks():
    # The docs layer ships at least the README quickstart plus the
    # chaos/durability/replication snippets; an empty collection means
    # the extractor (or the docs) regressed.
    assert len(CASES) >= 4


@pytest.mark.parametrize("path,line,source", CASES)
def test_doc_snippet_executes(path, line, source):
    # Pad so tracebacks report real markdown line numbers.
    padded = "\n" * (line - 1) + source
    code = compile(padded, f"{path.relative_to(REPO_ROOT)}", "exec")
    namespace = {"__name__": f"doc_snippet_{path.stem}_{line}"}
    exec(code, namespace)
