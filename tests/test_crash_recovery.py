"""Crash-and-restart recovery: peer-level (crash/rejoin/resolve) and the
chaos harness's crash fault kind."""

import json

import pytest

from repro.axml.document import AXMLDocument
from repro.chaos import ChaosConfig, FaultPlanner, run_chaos
from repro.cli import main
from repro.p2p.failure import FailureInjector
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.services.descriptor import ParamSpec, ServiceDescriptor
from repro.services.service import UpdateService
from repro.xmlstore.serializer import canonical


def durable_world(tmp_path):
    network = SimNetwork()
    origin = AXMLPeer("Origin", network)
    worker = AXMLPeer(
        "Worker", network, durability=str(tmp_path / "worker-wal")
    )
    worker.host_document(AXMLDocument.from_xml("<D><slots/></D>", name="D"))
    worker.host_service(UpdateService(
        ServiceDescriptor(
            "book", kind="update", params=(ParamSpec("c"),),
            target_document="D",
        ),
        '<action type="insert"><data><slot c="$c"/></data>'
        "<location>Select d from d in D//slots;</location></action>",
    ))
    return network, origin, worker


class TestPeerCrash:
    def test_crash_loses_volatile_state(self, tmp_path):
        network, origin, worker = durable_world(tmp_path)
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "x"})
        assert len(worker.manager.log) == 1
        worker.crash()
        assert worker.disconnected
        assert not network.is_alive("Worker")
        assert len(worker.manager.log) == 0
        assert worker.manager.contexts == {}
        assert worker.chains == {}
        assert network.metrics.get("peer_crashes") == 1

    def test_documents_survive_a_crash(self, tmp_path):
        network, origin, worker = durable_world(tmp_path)
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "x"})
        worker.crash()
        # The durable store keeps the (dirty) document content.
        assert "slot" in worker.get_axml_document("D").to_xml()

    def test_restart_compensates_aborted_txn_from_disk(self, tmp_path):
        network, origin, worker = durable_world(tmp_path)
        pre = canonical(worker.get_axml_document("D").document)
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "x"})
        worker.crash()
        assert worker.rejoin(mode="in_doubt") == 1
        # The in-doubt context was rebuilt from the on-disk WAL.
        context = worker.manager.contexts[txn.txn_id]
        assert not context.is_finished
        assert context.log_seqs == [1]
        assert worker.resolve_in_doubt(txn.txn_id, committed=False) == "aborted"
        assert canonical(worker.get_axml_document("D").document) == pre
        assert len(worker.manager.log) == 0
        assert not worker.wal.load().entries

    def test_restart_keeps_committed_txn_effects(self, tmp_path):
        network, origin, worker = durable_world(tmp_path)
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "y"})
        worker.crash()
        worker.rejoin(mode="in_doubt")
        assert worker.resolve_in_doubt(txn.txn_id, committed=True) == "committed"
        assert 'c="y"' in worker.get_axml_document("D").to_xml()
        assert not worker.wal.load().entries  # commit truncated on disk too

    def test_default_rejoin_compensates_from_disk(self, tmp_path):
        network, origin, worker = durable_world(tmp_path)
        pre = canonical(worker.get_axml_document("D").document)
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "x"})
        worker.crash()
        assert worker.rejoin() == 1
        assert canonical(worker.get_axml_document("D").document) == pre
        assert network.metrics.get("recovery_replays") == 1

    def test_rejoin_rejects_unknown_mode(self, tmp_path):
        network, origin, worker = durable_world(tmp_path)
        network.disconnect("Worker")
        with pytest.raises(ValueError):
            worker.rejoin(mode="nonsense")

    def test_crash_during_own_service_execution(self, tmp_path):
        from repro.errors import PeerDisconnected, TransactionError

        network, origin, worker = durable_world(tmp_path)
        injector = FailureInjector(network)
        worker.injector = injector
        injector.crash_peer_during("Worker", "book", "after_local_work",
                                   restart_delay=0.25)
        pre = canonical(worker.get_axml_document("D").document)
        txn = origin.begin_transaction()
        with pytest.raises((PeerDisconnected, TransactionError)):
            origin.invoke(txn.txn_id, "Worker", "book", {"c": "x"})
        assert worker.disconnected
        # The scheduled restart brings it back with an in-doubt share.
        network.events.run_all()
        assert not worker.disconnected
        assert len(worker.manager.log) == 1
        worker.resolve_in_doubt(txn.txn_id, committed=False)
        assert canonical(worker.get_axml_document("D").document) == pre


class TestCrashChaos:
    CONFIG = ChaosConfig(
        seed=1, txns=10, fault_rate=0.2, crash_rate=0.3, durability=True
    )

    def test_config_validation(self):
        with pytest.raises(ValueError, match="durability"):
            ChaosConfig(crash_rate=0.5)
        with pytest.raises(ValueError, match="durability"):
            ChaosConfig(mutate="crash_skip_undo")

    def test_crash_plan_extends_existing_plan(self):
        providers = [f"AP{i}" for i in range(1, 7)]
        kwargs = dict(
            seed=4,
            providers=providers,
            provider_methods={p: f"S{p[2:]}" for p in providers},
            txns=20,
            fault_rate=0.5,
            horizon=3.0,
        )
        base = FaultPlanner(**kwargs).plan()
        crashy = FaultPlanner(crash_rate=0.2, **kwargs).plan()
        # Existing seeds keep their exact prefix: crash events are
        # sampled from a separate stream and appended.
        assert crashy.events[: len(base)] == base.events
        extra = crashy.events[len(base):]
        assert len(extra) == 4
        assert all(e.kind == "crash" and e.delay > 0 for e in extra)

    def test_crash_run_is_clean_and_crashes_fired(self):
        result = run_chaos(self.CONFIG)
        assert result.ok, result.violations
        assert any(e.kind == "crash" for e in result.plan.events)
        assert result.cluster.metrics.get("peer_crashes") >= 1
        assert result.cluster.metrics.get("peer_rejoins") >= 1
        assert result.summary["metrics"]["counters"]["wal_appends"] > 0

    def test_crash_sweep_summary_is_byte_identical(self):
        a = json.dumps(run_chaos(self.CONFIG).summary, sort_keys=True)
        b = json.dumps(run_chaos(self.CONFIG).summary, sort_keys=True)
        assert a == b

    def test_crash_skip_undo_is_flagged(self):
        from dataclasses import replace

        result = run_chaos(replace(self.CONFIG, mutate="crash_skip_undo"))
        assert not result.ok
        kinds = {v.kind for v in result.violations}
        # Recovery replayed from the (sabotaged) on-disk WAL: the lost
        # entry shows up both as an uncompensated marker and as a
        # disk/memory divergence.
        assert "compensation_missing" in kinds
        assert "wal_tail_inconsistent" in kinds

    def test_scratch_directories_are_removed(self):
        result = run_chaos(self.CONFIG)
        import os

        assert not os.path.exists(result.cluster.scratch.root)

    def test_cli_crash_smoke(self, capsys):
        code = main([
            "chaos", "--sweep", "--seeds", "2", "--txns", "6",
            "--fault-rate", "0.2", "--crash-rate", "0.3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos_violations = 0" in out
