"""Observability threaded through real scenario runs.

The span tree and histograms are only worth having if the protocols
actually emit them: these tests run the Fig. 1 / Fig. 2 scenarios and
assert the emitted structure — transaction spans parenting invokes,
invokes parenting RPC hops, compensation spans on the abort path — plus
the strict-JSON export of a live run.
"""

import json

import pytest

from repro.sim.harness import ExperimentTable
from repro.sim.scenarios import build_fig1, build_fig2, run_root_transaction


def _by_id(spans):
    return {span.span_id: span for span in spans.spans}


class TestHappyPathSpans:
    def test_span_tree_shape(self):
        scenario = build_fig1()
        txn, error = run_root_transaction(scenario)
        assert error is None
        scenario.peer("AP1").commit(txn.txn_id)
        spans = scenario.network.spans

        txn_spans = spans.by_kind("transaction")
        assert [s.status for s in txn_spans] == ["committed"]
        assert txn_spans[0].name == f"txn:{txn.txn_id}"

        # Fig. 1 runs five invocations; each invoke wraps one rpc hop,
        # and each rpc wraps the remote service execution.
        invokes = spans.by_kind("invoke")
        rpcs = spans.by_kind("rpc")
        services = spans.by_kind("service")
        assert len(invokes) == len(rpcs) == len(services) == 5
        index = _by_id(spans)
        for rpc in rpcs:
            assert index[rpc.parent_id].kind == "invoke"
        for service in services:
            assert index[service.parent_id].kind == "rpc"

        # Top-level invokes hang off the transaction span; nested ones
        # hang off the service executing them.
        roots = [s for s in invokes if index[s.parent_id].kind == "transaction"]
        nested = [s for s in invokes if index[s.parent_id].kind == "service"]
        assert len(roots) == 2  # AP1 -> S2, AP1 -> S3
        assert len(nested) == 3

    def test_all_spans_closed_and_timed(self):
        scenario = build_fig1()
        txn, _ = run_root_transaction(scenario)
        scenario.peer("AP1").commit(txn.txn_id)
        spans = scenario.network.spans
        assert spans.summary()["open"] == 0
        for span in spans.spans:
            assert span.duration is not None and span.duration >= 0

    def test_rpc_latency_histogram_populated(self):
        scenario = build_fig1()
        run_root_transaction(scenario)
        metrics = scenario.metrics
        hist = metrics.histogram("rpc_latency")
        assert hist.count == 5
        assert metrics.p50("rpc_latency") is not None
        assert metrics.p95("rpc_latency") >= metrics.p50("rpc_latency")
        # Chained invocations record how long the chain view was.
        assert metrics.histogram("chain_length").count > 0


class TestAbortPathSpans:
    def _aborted_run(self):
        scenario = build_fig1()
        scenario.injector.fault_service(
            "AP5", "S5", "Crash", point="after_execute"
        )
        txn, error = run_root_transaction(scenario)
        assert error is not None
        return scenario, txn

    def test_transaction_span_aborted(self):
        scenario, txn = self._aborted_run()
        txn_spans = scenario.network.spans.by_kind("transaction")
        assert [s.status for s in txn_spans] == ["aborted"]

    def test_compensation_spans_nest_under_service(self):
        scenario, txn = self._aborted_run()
        spans = scenario.network.spans
        comps = spans.by_kind("compensation")
        assert comps, "abort must emit compensation spans"
        index = _by_id(spans)
        # The faulting peer compensates while its service span is still
        # open, so at least one compensation span nests beneath it.
        parent_kinds = {
            index[c.parent_id].kind for c in comps if c.parent_id is not None
        }
        assert "service" in parent_kinds
        assert all(c.status == "ok" for c in comps)

    def test_fault_statuses_recorded(self):
        scenario, txn = self._aborted_run()
        spans = scenario.network.spans
        assert any(s.status == "fault" for s in spans.by_kind("rpc"))
        assert any(s.status == "fault" for s in spans.by_kind("service"))

    def test_compensation_depth_histogram(self):
        scenario, txn = self._aborted_run()
        hist = scenario.metrics.histogram("compensation_depth")
        assert hist.count > 0
        assert hist.max >= 1


class TestDisconnectionSpans:
    def test_disconnected_status_and_detection_histogram(self):
        scenario = build_fig2()
        scenario.injector.disconnect_peer_during(
            "AP3", "AP6", "S6", "after_local_work"
        )
        run_root_transaction(scenario)
        spans = scenario.network.spans
        assert any(
            s.status == "disconnected" for s in spans.by_kind("rpc")
        )
        metrics = scenario.metrics
        assert metrics.histogram("detection_latency").count == len(
            metrics.detections
        )
        assert metrics.detection_latency("AP3") is not None


class TestLiveRunExport:
    def test_metrics_and_spans_export_strict_json(self):
        scenario = build_fig1()
        scenario.injector.fault_service(
            "AP5", "S5", "Crash", point="after_execute"
        )
        run_root_transaction(scenario)
        metrics_text = scenario.metrics.to_json()
        spans_text = scenario.network.spans.to_json()
        for text in (metrics_text, spans_text):
            assert "Infinity" not in text and "NaN" not in text
            json.loads(text)
        data = json.loads(metrics_text)
        assert data["histograms"]["rpc_latency"]["p50"] is not None
        assert data["histograms"]["rpc_latency"]["p95"] is not None

    def test_experiment_table_json(self, tmp_path):
        table = ExperimentTable("t", ["a", "detect_s"])
        table.add_row(a=1, detect_s=None)
        table.add_row(a=2, detect_s=0.01)
        assert "-" in table.render()  # None renders as a dash
        data = json.loads(table.to_json())
        assert data["rows"][0]["detect_s"] is None
        path = table.write_json(str(tmp_path / "table.json"))
        assert json.loads(open(path).read())["title"] == "t"
