"""Integration tests for AXMLPeer: transactions across simulated peers."""

import pytest

from repro.axml.document import AXMLDocument
from repro.errors import PeerDisconnected, ServiceFault, TransactionError
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.p2p.replication import ReplicationManager
from repro.services.descriptor import ParamSpec, ServiceDescriptor
from repro.services.service import FunctionService, UpdateService
from repro.txn.recovery import DISCONNECT_FAULT, FaultPolicy
from repro.txn.transaction import TransactionState
from repro.xmlstore.serializer import canonical

SHOP = "<Shop><item id='1'><price>10</price><stock>3</stock></item></Shop>"

SET_PRICE = (
    '<action type="replace"><data><price>$price</price></data>'
    "<location>Select i/price from i in Shop//item;</location></action>"
)


def make_pair(peer_independent=False, chaining=True):
    """AP1 (origin, hosts Shop) + AP2 (hosts setPrice service on Shop2)."""
    network = SimNetwork()
    ap1 = AXMLPeer("AP1", network, peer_independent=peer_independent, chaining=chaining)
    ap2 = AXMLPeer("AP2", network, peer_independent=peer_independent, chaining=chaining)
    ap1.host_document(AXMLDocument.from_xml(SHOP, name="Shop"))
    ap2.host_document(AXMLDocument.from_xml(SHOP.replace("Shop", "Shop2"), name="Shop2"))
    ap2.host_service(
        UpdateService(
            ServiceDescriptor(
                "setPrice", kind="update", params=(ParamSpec("price"),),
                target_document="Shop2",
            ),
            SET_PRICE.replace("Shop//item", "Shop2//item"),
        )
    )
    return network, ap1, ap2


class TestLocalTransactions:
    def test_submit_and_commit(self):
        network, ap1, _ = make_pair()
        txn = ap1.begin_transaction()
        ap1.submit(txn.txn_id, SET_PRICE.replace("$price", "42"))
        ap1.commit(txn.txn_id)
        assert "42" in ap1.get_axml_document("Shop").to_xml()
        assert network.metrics.txn_outcomes[txn.txn_id] == "committed"
        # committed log entries truncated
        assert ap1.manager.log.entries_for(txn.txn_id) == []

    def test_submit_and_abort_restores(self):
        network, ap1, _ = make_pair()
        pre = canonical(ap1.get_axml_document("Shop").document)
        txn = ap1.begin_transaction()
        ap1.submit(txn.txn_id, SET_PRICE.replace("$price", "42"))
        assert ap1.abort(txn.txn_id)
        assert canonical(ap1.get_axml_document("Shop").document) == pre

    def test_multi_operation_abort_reverse_order(self):
        network, ap1, _ = make_pair()
        pre = canonical(ap1.get_axml_document("Shop").document)
        txn = ap1.begin_transaction()
        ap1.submit(txn.txn_id, SET_PRICE.replace("$price", "42"))
        ap1.submit(txn.txn_id, SET_PRICE.replace("$price", "77"))
        ap1.submit(
            txn.txn_id,
            '<action type="delete"><location>Select i/stock from i in '
            "Shop//item;</location></action>",
        )
        ap1.abort(txn.txn_id)
        assert canonical(ap1.get_axml_document("Shop").document) == pre

    def test_dead_peer_rejects_submissions(self):
        network, ap1, _ = make_pair()
        txn = ap1.begin_transaction()
        network.disconnect("AP1")
        with pytest.raises(PeerDisconnected):
            ap1.submit(txn.txn_id, SET_PRICE.replace("$price", "42"))


class TestRemoteInvocation:
    def test_invoke_and_commit(self):
        network, ap1, ap2 = make_pair()
        txn = ap1.begin_transaction()
        fragments = ap1.invoke(txn.txn_id, "AP2", "setPrice", {"price": "55"})
        assert fragments
        assert "55" in ap2.get_axml_document("Shop2").to_xml()
        ap1.commit(txn.txn_id)
        # participant context committed via CommitMessage
        assert (
            ap2.manager.context(txn.txn_id).state is TransactionState.COMMITTED
        )

    def test_invoke_and_abort_cascades(self):
        network, ap1, ap2 = make_pair()
        pre = canonical(ap2.get_axml_document("Shop2").document)
        txn = ap1.begin_transaction()
        ap1.invoke(txn.txn_id, "AP2", "setPrice", {"price": "55"})
        assert ap1.abort(txn.txn_id)
        assert canonical(ap2.get_axml_document("Shop2").document) == pre

    def test_chain_grows_with_invocations(self):
        network, ap1, ap2 = make_pair()
        txn = ap1.begin_transaction()
        ap1.invoke(txn.txn_id, "AP2", "setPrice", {"price": "55"})
        chain = ap1.chains[txn.txn_id]
        assert chain.children_of("AP1") == ["AP2"]
        # callee received the chain view
        assert ap2.chains[txn.txn_id].contains("AP2")

    def test_no_chain_when_disabled(self):
        network, ap1, ap2 = make_pair(chaining=False)
        txn = ap1.begin_transaction()
        ap1.invoke(txn.txn_id, "AP2", "setPrice", {"price": "55"})
        assert txn.txn_id not in ap2.chains

    def test_service_fault_aborts_participant(self):
        network, ap1, ap2 = make_pair()
        ap2.host_service(
            FunctionService(
                ServiceDescriptor("boom", kind="function"),
                body=lambda p: [],
                fault_name="Boom",
                fault_probability=1.0,
            )
        )
        ap2.rng.random = lambda: 0.0  # force the fault
        txn = ap1.begin_transaction()
        with pytest.raises(ServiceFault):
            ap1.invoke(txn.txn_id, "AP2", "boom", {})
        assert ap1.manager.context(txn.txn_id).is_finished
        assert network.metrics.txn_outcomes[txn.txn_id] == "aborted"

    def test_fault_compensates_earlier_remote_work(self):
        network, ap1, ap2 = make_pair()
        pre = canonical(ap2.get_axml_document("Shop2").document)
        ap2.host_service(
            FunctionService(
                ServiceDescriptor("boom", kind="function"),
                body=lambda p: [],
                fault_name="Boom",
                fault_probability=1.0,
            )
        )
        ap2.rng.random = lambda: 0.0
        txn = ap1.begin_transaction()
        ap1.invoke(txn.txn_id, "AP2", "setPrice", {"price": "55"})
        assert "55" in ap2.get_axml_document("Shop2").to_xml()
        with pytest.raises(ServiceFault):
            ap1.invoke(txn.txn_id, "AP2", "boom", {})
        # AP1 aborted and sent Abort to AP2... but AP2 is the failed peer,
        # which already aborted itself, compensating setPrice too.
        assert canonical(ap2.get_axml_document("Shop2").document) == pre

    def test_forward_recovery_absorb(self):
        network, ap1, ap2 = make_pair()
        ap2.host_service(
            FunctionService(
                ServiceDescriptor("boom", kind="function"),
                body=lambda p: [],
                fault_name="Boom",
                fault_probability=1.0,
            )
        )
        ap2.rng.random = lambda: 0.0
        ap1.set_fault_policy("boom", [FaultPolicy(fault_names={"Boom"}, absorb=True)])
        txn = ap1.begin_transaction()
        assert ap1.invoke(txn.txn_id, "AP2", "boom", {}) == []
        assert network.metrics.get("forward_recoveries") == 1
        ap1.commit(txn.txn_id)

    def test_forward_recovery_hook(self):
        network, ap1, ap2 = make_pair()
        network.disconnect("AP2")
        ap1.set_fault_policy(
            "setPrice",
            [FaultPolicy(fault_names={DISCONNECT_FAULT}, hook=lambda p: ["<cached/>"])],
        )
        txn = ap1.begin_transaction()
        assert ap1.invoke(txn.txn_id, "AP2", "setPrice", {"price": "1"}) == ["<cached/>"]

    def test_disconnected_target_no_policy_aborts(self):
        network, ap1, ap2 = make_pair()
        network.disconnect("AP2")
        txn = ap1.begin_transaction()
        with pytest.raises(PeerDisconnected):
            ap1.invoke(txn.txn_id, "AP2", "setPrice", {"price": "1"})
        assert network.metrics.txn_outcomes[txn.txn_id] == "aborted"

    def test_retry_on_replica(self):
        network, ap1, ap2 = make_pair()
        replication = ReplicationManager(network)
        ap3 = AXMLPeer("AP3", network)
        replication.register_primary("Shop2", "AP2")
        replication.register_service("setPrice", "AP2")
        replication.replicate_document("Shop2", "AP3")
        replication.replicate_service("setPrice", "AP3")
        network.disconnect("AP2")
        ap1.set_fault_policy(
            "setPrice",
            [FaultPolicy(
                fault_names={DISCONNECT_FAULT}, retry_times=1, alternative_peer="AP3"
            )],
        )
        txn = ap1.begin_transaction()
        fragments = ap1.invoke(txn.txn_id, "AP2", "setPrice", {"price": "88"})
        assert fragments
        assert "88" in ap3.get_axml_document("Shop2").to_xml()
        assert network.metrics.get("replica_retries") == 1

    def test_outside_transaction_rejected(self):
        network, ap1, ap2 = make_pair()
        with pytest.raises(TransactionError):
            ap1.invoke("T-unknown", "AP2", "setPrice", {"price": "1"})


class TestPeerIndependent:
    def test_definitions_collected_at_origin(self):
        network, ap1, ap2 = make_pair(peer_independent=True)
        txn = ap1.begin_transaction()
        ap1.invoke(txn.txn_id, "AP2", "setPrice", {"price": "55"})
        ctx = ap1.manager.context(txn.txn_id)
        assert len(ctx.received_compensations) == 1
        provider, plan_xml = ctx.received_compensations[0]
        assert provider == "AP2"
        assert "compensation" in plan_xml

    def test_origin_abort_uses_definitions(self):
        network, ap1, ap2 = make_pair(peer_independent=True)
        pre = canonical(ap2.get_axml_document("Shop2").document)
        txn = ap1.begin_transaction()
        ap1.invoke(txn.txn_id, "AP2", "setPrice", {"price": "55"})
        assert ap1.abort(txn.txn_id)
        assert canonical(ap2.get_axml_document("Shop2").document) == pre
        assert network.metrics.get("peer_independent_compensations") == 1

    def test_provider_dead_no_replica_incomplete(self):
        network, ap1, ap2 = make_pair(peer_independent=True)
        txn = ap1.begin_transaction()
        ap1.invoke(txn.txn_id, "AP2", "setPrice", {"price": "55"})
        network.disconnect("AP2")
        assert not ap1.abort(txn.txn_id)
        assert network.metrics.get("compensation_failures") == 1
        assert network.metrics.txn_outcomes[txn.txn_id] == "abort_incomplete"

    def test_provider_dead_with_replica_completes(self):
        network, ap1, ap2 = make_pair(peer_independent=True)
        replication = ReplicationManager(network)
        ap3 = AXMLPeer("AP3", network, peer_independent=True)
        replication.register_primary("Shop2", "AP2")
        txn = ap1.begin_transaction()
        ap1.invoke(txn.txn_id, "AP2", "setPrice", {"price": "55"})
        # replicate *after* the update so the replica holds the new state,
        # then kill the provider: compensation must run on the replica.
        replication.replicate_document("Shop2", "AP3")
        network.disconnect("AP2")
        assert ap1.abort(txn.txn_id)
        assert network.metrics.get("compensations_via_replica") == 1
        assert "10" in ap3.get_axml_document("Shop2").to_xml()
        assert "55" not in ap3.get_axml_document("Shop2").to_xml()


class TestContinuousWork:
    def test_work_units_cancelled_on_commit(self):
        network, ap1, _ = make_pair()
        txn = ap1.begin_transaction()
        ap1.add_pending_work(txn.txn_id, units=10, unit_duration=0.1)
        ap1.commit(txn.txn_id)
        network.events.run_until(5.0)
        assert network.metrics.get("work_units_done") == 0

    def test_work_units_run_without_cancellation(self):
        network, ap1, _ = make_pair()
        txn = ap1.begin_transaction()
        ap1.add_pending_work(txn.txn_id, units=5, unit_duration=0.1)
        network.events.run_until(5.0)
        assert network.metrics.get("work_units_done") == 5
        assert network.metrics.get("work_units_wasted") == 0

    def test_doomed_work_counts_as_wasted(self):
        network, ap1, _ = make_pair()
        txn = ap1.begin_transaction()
        ap1.add_pending_work(txn.txn_id, units=5, unit_duration=0.1)
        ap1.known_doomed.add(txn.txn_id)
        network.events.run_until(5.0)
        assert network.metrics.get("work_units_wasted") == 5
