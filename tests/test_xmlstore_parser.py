"""Unit tests for the from-scratch XML parser and serializer."""

import pytest

from repro.errors import XmlParseError
from repro.xmlstore.nodes import Document
from repro.xmlstore.parser import parse_document, parse_fragment
from repro.xmlstore.serializer import (
    canonical,
    pretty,
    rebind_ids,
    serialize,
    strip_ids,
    trees_equal,
)


class TestParseBasics:
    def test_minimal(self):
        doc = parse_document("<r/>")
        assert doc.root.name.local == "r"
        assert doc.root.children == []

    def test_prolog_ignored(self):
        doc = parse_document('<?xml version="1.0" encoding="UTF-8"?><r/>')
        assert doc.root.name.local == "r"

    def test_attributes_both_quotes(self):
        doc = parse_document("""<r a="1" b='2'/>""")
        assert doc.root.attributes == {"a": "1", "b": "2"}

    def test_nested_elements(self):
        doc = parse_document("<r><a><b/></a><c/></r>")
        assert [e.name.local for e in doc.root.iter_elements()] == ["r", "a", "b", "c"]

    def test_text_content(self):
        doc = parse_document("<r>hello</r>")
        assert doc.root.text_content() == "hello"

    def test_whitespace_only_text_dropped(self):
        doc = parse_document("<r>\n  <a/>\n</r>")
        assert len(doc.root.children) == 1

    def test_mixed_content_trimmed(self):
        doc = parse_document("<r> hi <a/></r>")
        assert doc.root.children[0].value == "hi"

    def test_prefixed_names(self):
        doc = parse_document("<axml:sc methodName='m'/>")
        assert doc.root.name.prefix == "axml"
        assert doc.root.name.local == "sc"

    def test_comments_skipped(self):
        doc = parse_document("<r><!-- note --><a/><!-- end --></r>")
        assert len(doc.root.children) == 1

    def test_cdata(self):
        doc = parse_document("<r><![CDATA[a < b & c]]></r>")
        assert doc.root.text_content() == "a < b & c"

    def test_doctype_tolerated(self):
        doc = parse_document("<!DOCTYPE r><r/>")
        assert doc.root.name.local == "r"

    def test_processing_instruction_skipped(self):
        doc = parse_document("<r><?pi data?><a/></r>")
        assert len(doc.root.children) == 1


class TestEntities:
    @pytest.mark.parametrize(
        "entity,expected",
        [("&amp;", "&"), ("&lt;", "<"), ("&gt;", ">"), ("&quot;", '"'), ("&apos;", "'")],
    )
    def test_predefined(self, entity, expected):
        doc = parse_document(f"<r>{entity}</r>")
        assert doc.root.text_content() == expected

    def test_decimal_charref(self):
        assert parse_document("<r>&#65;</r>").root.text_content() == "A"

    def test_hex_charref(self):
        assert parse_document("<r>&#x41;</r>").root.text_content() == "A"

    def test_entity_in_attribute(self):
        doc = parse_document('<r a="x&amp;y"/>')
        assert doc.root.attributes["a"] == "x&y"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlParseError):
            parse_document("<r>&nope;</r>")

    def test_unterminated_entity_rejected(self):
        with pytest.raises(XmlParseError):
            parse_document("<r>&amp</r>")


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "<r>",
            "<r></s>",
            "<r><a></r></a>",
            "<r a=1/>",
            "<r 'x'/>",
            "<r/><extra/>",
            "<r a='1' a='2'/>",
            "<1bad/>",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(XmlParseError):
            parse_document(text)

    def test_error_carries_position(self):
        with pytest.raises(XmlParseError) as exc:
            parse_document("<r>\n<bad")
        assert exc.value.line == 2


class TestSerializer:
    def test_roundtrip_simple(self):
        text = '<r a="1"><b>hi</b><c/></r>'
        assert serialize(parse_document(text)) == text

    def test_attributes_sorted(self):
        doc = parse_document('<r z="1" a="2"/>')
        assert serialize(doc) == '<r a="2" z="1"/>'

    def test_escaping(self):
        doc = Document()
        root = doc.create_root("r")
        root.new_text("a<b&c>d")
        root.attributes["q"] = 'say "hi" & <go>'
        out = serialize(doc)
        assert "&lt;" in out and "&amp;" in out and "&quot;" in out
        assert trees_equal(parse_document(out), doc)

    def test_declaration(self):
        assert serialize(parse_document("<r/>"), declaration=True).startswith("<?xml")

    def test_pretty_indents(self):
        doc = parse_document("<r><a><b/></a></r>")
        lines = pretty(doc).splitlines()
        assert lines[0] == "<r>"
        assert lines[1].startswith("  <a>")

    def test_pretty_inlines_text_only(self):
        doc = parse_document("<r><a>x</a></r>")
        assert "<a>x</a>" in pretty(doc)

    def test_serialize_subtree(self):
        doc = parse_document("<r><a>x</a></r>")
        assert serialize(doc.root.first_child("a")) == "<a>x</a>"

    def test_empty_document(self):
        assert serialize(Document()) == ""


class TestIdPersistence:
    def test_ids_roundtrip(self):
        doc = parse_document("<r><a/></r>")
        original_ids = {e.name.local: e.node_id for e in doc.iter_elements()}
        text = serialize(doc, include_ids=True)
        restored = parse_document(text)
        rebind_ids(restored)
        for element in restored.iter_elements():
            assert element.node_id == original_ids[element.name.local]

    def test_strip_ids(self):
        doc = parse_document("<r/>")
        text = serialize(doc, include_ids=True)
        restored = parse_document(text)
        strip_ids(restored)
        assert "repro:id" not in serialize(restored)

    def test_rebind_count(self):
        doc = parse_document("<r><a/><b/></r>")
        restored = parse_document(serialize(doc, include_ids=True))
        assert rebind_ids(restored) == 3


class TestFragments:
    def test_single(self):
        doc = Document()
        nodes = parse_fragment("<a>x</a>", doc)
        assert len(nodes) == 1
        assert nodes[0].parent is None
        assert nodes[0].document is doc

    def test_multiple_siblings(self):
        doc = Document()
        nodes = parse_fragment("<a/><b/><c/>", doc)
        assert [n.name.local for n in nodes] == ["a", "b", "c"]

    def test_empty(self):
        assert parse_fragment("", Document()) == []

    def test_canonical_equality(self):
        a = parse_document('<r b="2" a="1"><x/></r>')
        b = parse_document('<r a="1" b="2"><x/></r>')
        assert canonical(a) == canonical(b)
