"""Unit tests for the lock-based CC baseline (repro.baselines.lock_manager)."""

import pytest

from repro.baselines.lock_manager import (
    LockConflict,
    LockManager,
    LockMode,
    compatible,
)
from repro.xmlstore.parser import parse_document


@pytest.fixture
def doc():
    return parse_document("<r><a><b/></a><c/></r>")


class TestCompatibility:
    def test_shared_coexists(self):
        assert compatible(LockMode.S, LockMode.S)
        assert compatible(LockMode.IS, LockMode.S)
        assert compatible(LockMode.IS, LockMode.IX)

    def test_exclusive_excludes_all(self):
        for mode in LockMode:
            assert not compatible(LockMode.X, mode)
            assert not compatible(mode, LockMode.X)

    def test_s_vs_ix(self):
        assert not compatible(LockMode.S, LockMode.IX)


class TestAcquire:
    def test_grant_and_count(self, doc):
        manager = LockManager()
        manager.acquire("T1", doc.root.node_id, LockMode.S)
        assert manager.acquisitions == 1
        assert manager.holders_of(doc.root.node_id) == {"T1": LockMode.S}

    def test_conflict_raises(self, doc):
        manager = LockManager()
        manager.acquire("T1", doc.root.node_id, LockMode.X)
        with pytest.raises(LockConflict) as exc:
            manager.acquire("T2", doc.root.node_id, LockMode.S)
        assert exc.value.holder == "T1"
        assert manager.conflicts == 1

    def test_reentrant(self, doc):
        manager = LockManager()
        manager.acquire("T1", doc.root.node_id, LockMode.S)
        manager.acquire("T1", doc.root.node_id, LockMode.S)
        assert manager.acquisitions == 1

    def test_upgrade_in_place(self, doc):
        manager = LockManager()
        manager.acquire("T1", doc.root.node_id, LockMode.S)
        manager.acquire("T1", doc.root.node_id, LockMode.X)
        assert manager.holders_of(doc.root.node_id)["T1"] is LockMode.X

    def test_upgrade_blocked_by_other_reader(self, doc):
        manager = LockManager()
        manager.acquire("T1", doc.root.node_id, LockMode.S)
        manager.acquire("T2", doc.root.node_id, LockMode.S)
        with pytest.raises(LockConflict):
            manager.acquire("T1", doc.root.node_id, LockMode.X)

    def test_release_all(self, doc):
        manager = LockManager()
        manager.acquire("T1", doc.root.node_id, LockMode.X)
        assert manager.release_all("T1") == 1
        manager.acquire("T2", doc.root.node_id, LockMode.X)  # now free


class TestSubtreeLocks:
    def test_read_takes_intentions_up_the_path(self, doc):
        manager = LockManager()
        b = doc.root.first_child("a").first_child("b")
        manager.lock_subtree("T1", b, LockMode.S)
        assert manager.holders_of(doc.root.node_id)["T1"] is LockMode.IS
        assert manager.holders_of(b.parent.node_id)["T1"] is LockMode.IS
        assert manager.holders_of(b.node_id)["T1"] is LockMode.S

    def test_write_takes_ix_up_the_path(self, doc):
        manager = LockManager()
        b = doc.root.first_child("a").first_child("b")
        manager.lock_for_update("T1", [b])
        assert manager.holders_of(doc.root.node_id)["T1"] is LockMode.IX

    def test_readers_of_disjoint_subtrees_coexist(self, doc):
        manager = LockManager()
        a = doc.root.first_child("a")
        c = doc.root.first_child("c")
        manager.lock_for_read("T1", [a], active=False)
        manager.lock_for_read("T2", [c], active=False)

    def test_active_readers_of_same_subtree_conflict(self, doc):
        """The paper's §2 argument: active documents force X on reads."""
        manager = LockManager()
        a = doc.root.first_child("a")
        manager.lock_for_read("T1", [a], active=True)
        with pytest.raises(LockConflict):
            manager.lock_for_read("T2", [a], active=True)

    def test_passive_readers_of_same_subtree_coexist(self, doc):
        manager = LockManager()
        a = doc.root.first_child("a")
        manager.lock_for_read("T1", [a], active=False)
        manager.lock_for_read("T2", [a], active=False)

    def test_writer_blocks_reader_via_intentions(self, doc):
        manager = LockManager()
        a = doc.root.first_child("a")
        manager.lock_for_update("T1", [a])
        with pytest.raises(LockConflict):
            # S on the root conflicts with T1's IX there.
            manager.lock_for_read("T2", [doc.root], active=False)

    def test_held_by(self, doc):
        manager = LockManager()
        b = doc.root.first_child("a").first_child("b")
        manager.lock_subtree("T1", b, LockMode.S)
        assert manager.held_by("T1") == 3
