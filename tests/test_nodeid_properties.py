"""Property tests for NodeId: parse/repr round-trip, eq/hash laws.

NodeIds are the system's addressability primitive (§3.1: "delete the
node having the corresponding ID") and are used as dict keys in the
node map, the structural index postings and the operation log — so the
string form must round-trip exactly and equality must agree with hash.
"""

import pytest
from hypothesis import given, strategies as st

from repro.xmlstore.nodes import NodeId

serials = st.integers(min_value=0, max_value=10**9)


@given(serials, serials)
def test_repr_parse_round_trip(doc_serial, node_serial):
    node_id = NodeId(doc_serial, node_serial)
    assert NodeId.parse(repr(node_id)) == node_id


@given(serials, serials)
def test_eq_hash_consistency(doc_serial, node_serial):
    a = NodeId(doc_serial, node_serial)
    b = NodeId(doc_serial, node_serial)
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


@given(serials, serials, serials, serials)
def test_distinct_pairs_are_unequal(d1, n1, d2, n2):
    a, b = NodeId(d1, n1), NodeId(d2, n2)
    assert (a == b) == ((d1, n1) == (d2, n2))


@given(serials, serials)
def test_not_equal_to_other_types(doc_serial, node_serial):
    node_id = NodeId(doc_serial, node_serial)
    assert node_id != repr(node_id)
    assert node_id != (doc_serial, node_serial)


@pytest.mark.parametrize("text", [
    "", "d1", "n1", "d1n2", "d1.m2", "x1.n2", "d.n", "d1.n2.n3",
    "d-1.n2x", "dd1.n2", "1.2",
])
def test_malformed_rejected(text):
    with pytest.raises(ValueError):
        NodeId.parse(text)


@given(serials, serials)
def test_parse_is_canonical(doc_serial, node_serial):
    # repr is the only accepted spelling: whitespace variants fail.
    node_id = NodeId(doc_serial, node_serial)
    with pytest.raises(ValueError):
        NodeId.parse(f" {node_id!r}")
