"""Integration tests for sibling data streams (§3.3(d))."""

import pytest

from repro.p2p.streams import open_stream
from repro.sim.scenarios import build_fig2, run_root_transaction


def fig2_with_stream(chaining=True, interval=0.1):
    """Fig. 2 with AP3 streaming data to its sibling AP4."""
    scenario = build_fig2(chaining=chaining)
    txn, _ = run_root_transaction(scenario)
    stream = open_stream(
        scenario.network,
        txn.txn_id,
        producer=scenario.peer("AP3"),
        consumer=scenario.peer("AP4"),
        interval=interval,
    )
    return scenario, txn, stream


class TestHealthyStream:
    def test_data_flows(self):
        scenario, txn, stream = fig2_with_stream()
        scenario.network.events.run_until(1.05)
        assert len(stream.received) >= 8
        assert not stream.silence_reported

    def test_sequence_monotone(self):
        scenario, txn, stream = fig2_with_stream()
        scenario.network.events.run_until(0.55)
        sequences = [d.sequence for d in stream.received]
        assert sequences == sorted(sequences)

    def test_stop_ends_flow(self):
        scenario, txn, stream = fig2_with_stream()
        scenario.network.events.run_until(0.35)
        count = len(stream.received)
        stream.stop()
        scenario.network.events.run_until(2.0)
        assert len(stream.received) == count


class TestSilenceDetection:
    def test_producer_death_detected(self):
        scenario, txn, stream = fig2_with_stream()
        scenario.network.events.run_until(0.5)
        scenario.network.disconnect("AP3")
        scenario.network.events.run_until(3.0)
        assert stream.silence_reported
        assert scenario.metrics.get("stream_silences") == 1

    def test_detection_triggers_chain_notices(self):
        """The silent sibling's parent (AP2) and child (AP6) learn of the
        death through AP4's chain — the §3.3(d) protocol."""
        scenario, txn, stream = fig2_with_stream()
        scenario.network.events.run_until(0.5)
        scenario.network.disconnect("AP3")
        scenario.network.events.run_until(3.0)
        assert txn.txn_id in scenario.peer("AP2").known_doomed
        assert txn.txn_id in scenario.peer("AP6").known_doomed

    def test_naive_consumer_cannot_notify(self):
        scenario, txn, stream = fig2_with_stream(chaining=False)
        scenario.network.events.run_until(0.5)
        scenario.network.disconnect("AP3")
        scenario.network.events.run_until(3.0)
        assert stream.silence_reported
        assert txn.txn_id not in scenario.peer("AP6").known_doomed

    def test_detection_latency_bounded(self):
        scenario, txn, stream = fig2_with_stream(interval=0.1)
        scenario.network.events.run_until(0.5)
        scenario.network.disconnect("AP3")
        scenario.network.events.run_until(3.0)
        latency = scenario.metrics.detection_latency("AP3")
        # one interval of missing data + the grace factor, roughly
        assert latency < 0.5

    def test_dead_consumer_stops_checking(self):
        scenario, txn, stream = fig2_with_stream()
        scenario.network.events.run_until(0.3)
        scenario.network.disconnect("AP4")
        scenario.network.disconnect("AP3")
        scenario.network.events.run_until(3.0)
        assert not stream.silence_reported
