"""Property-based tests for the optimistic validator (repro.txn.occ)."""

from hypothesis import given, settings, strategies as st

from repro.txn.occ import OptimisticValidator, ValidationConflict
from repro.xmlstore.nodes import NodeId

_node_ids = st.integers(0, 20).map(lambda n: NodeId(1, n))
_id_sets = st.frozensets(_node_ids, max_size=8)


@given(
    sets=st.lists(
        st.tuples(_id_sets, _id_sets), min_size=2, max_size=8
    )
)
@settings(max_examples=60, deadline=None)
def test_concurrent_commits_are_conflict_serializable(sets):
    """All transactions begin before any commits (maximal overlap).

    Then the committed set must be conflict-free in commit order: for
    any two committed transactions Ti (earlier) and Tj (later),
    writes(Ti) ∩ reads(Tj) must be empty — precisely what backward
    validation promises.
    """
    validator = OptimisticValidator()
    footprints = {}
    for index, (reads, writes) in enumerate(sets):
        txn_id = f"T{index}"
        validator.begin(txn_id)
        validator.track_reads(txn_id, reads)
        validator.track_writes(txn_id, writes)
        footprints[txn_id] = (set(reads) | set(writes), set(writes))
    committed = []
    for index in range(len(sets)):
        txn_id = f"T{index}"
        try:
            validator.validate_and_commit(txn_id)
            committed.append(txn_id)
        except ValidationConflict:
            pass
    for i, earlier in enumerate(committed):
        for later in committed[i + 1 :]:
            later_reads = footprints[later][0]
            earlier_writes = footprints[earlier][1]
            assert not (later_reads & earlier_writes), (
                f"{later} read what {earlier} wrote, yet both committed"
            )


@given(
    sets=st.lists(st.tuples(_id_sets, _id_sets), min_size=1, max_size=8)
)
@settings(max_examples=40, deadline=None)
def test_serial_execution_never_conflicts(sets):
    """Transactions that run one-after-another always commit: backward
    validation only looks at commits after the start tick."""
    validator = OptimisticValidator()
    for index, (reads, writes) in enumerate(sets):
        txn_id = f"T{index}"
        validator.begin(txn_id)
        validator.track_reads(txn_id, reads)
        validator.track_writes(txn_id, writes)
        validator.validate_and_commit(txn_id)  # must never raise
    assert validator.conflicts == 0


@given(
    reads=_id_sets, writes=_id_sets, other_writes=_id_sets
)
@settings(max_examples=60, deadline=None)
def test_pairwise_conflict_iff_overlap(reads, writes, other_writes):
    """Two maximally-overlapping transactions: the second committer
    aborts exactly when its reads (incl. its writes) overlap the first
    committer's writes."""
    validator = OptimisticValidator()
    validator.begin("first")
    validator.begin("second")
    validator.track_writes("first", other_writes)
    validator.track_reads("second", reads)
    validator.track_writes("second", writes)
    validator.validate_and_commit("first")
    expected_conflict = bool((set(reads) | set(writes)) & set(other_writes))
    if expected_conflict:
        try:
            validator.validate_and_commit("second")
            raised = False
        except ValidationConflict:
            raised = True
        assert raised
    else:
        validator.validate_and_commit("second")
