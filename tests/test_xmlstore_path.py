"""Unit tests for path expressions (repro.xmlstore.path)."""

import pytest

from repro.errors import QuerySyntaxError
from repro.xmlstore.parser import parse_document
from repro.xmlstore.path import PathExpr, Step, TraversalMeter, parse_path

DOC = parse_document(
    """
<ATPList date="18042005">
  <player rank="1">
    <name><firstname>Roger</firstname><lastname>Federer</lastname></name>
    <citizenship>Swiss</citizenship>
    <points>475</points>
  </player>
  <player rank="2">
    <name><firstname>Rafael</firstname><lastname>Nadal</lastname></name>
    <citizenship>Spanish</citizenship>
  </player>
</ATPList>
""",
    name="ATPList",
)


class TestParsePath:
    def test_simple_child_chain(self):
        path = parse_path("name/lastname")
        assert [s.axis for s in path.steps] == ["child", "child"]

    def test_descendant(self):
        path = parse_path("ATPList//player")
        assert path.steps[1].axis == "descendant"

    def test_leading_descendant(self):
        path = parse_path("//player")
        assert path.steps[0].axis == "descendant"

    def test_parent_step(self):
        path = parse_path("citizenship/..")
        assert path.steps[-1].axis == "parent"

    def test_wildcard(self):
        assert parse_path("*").steps[0].name is None

    def test_text_step(self):
        path = parse_path("name/text()")
        assert path.returns_text

    def test_prefixed_name(self):
        path = parse_path("axml:sc")
        assert path.steps[0].name.prefix == "axml"

    @pytest.mark.parametrize("bad", ["", "/", "a/", "a//", "//..", "a/<>/b", "9bad"])
    def test_rejects(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_path(bad)

    def test_str_roundtrip(self):
        for text in ["a/b", "ATPList//player", "a/..", "//x/y", "*/b"]:
            assert str(parse_path(text)) == text


class TestEvaluate:
    def test_absolute_root_match(self):
        assert len(parse_path("ATPList//player").evaluate(DOC)) == 2

    def test_absolute_root_mismatch(self):
        assert parse_path("Other//player").evaluate(DOC) == []

    def test_descendant_from_document(self):
        assert len(parse_path("//lastname").evaluate(DOC)) == 2

    def test_child_chain_from_element(self):
        player = parse_path("//player").evaluate(DOC)[0]
        nodes = parse_path("name/lastname").evaluate(player)
        assert [n.text_content() for n in nodes] == ["Federer"]

    def test_parent_step(self):
        player = parse_path("//player").evaluate(DOC)[0]
        nodes = parse_path("citizenship/..").evaluate(player)
        assert nodes == [player]

    def test_parent_of_root_is_empty(self):
        assert parse_path("..").evaluate(DOC.root) == []

    def test_wildcard_children(self):
        player = parse_path("//player").evaluate(DOC)[0]
        assert len(parse_path("*").evaluate(player)) == 3

    def test_dedupe(self):
        # //name/.. can reach the same player via multiple routes.
        nodes = parse_path("//lastname/../..").evaluate(DOC)
        assert len(nodes) == 2

    def test_sequence_context(self):
        players = [n for n in parse_path("//player").evaluate(DOC)]
        nodes = parse_path("citizenship").evaluate(players)
        assert len(nodes) == 2

    def test_empty_document(self):
        from repro.xmlstore.nodes import Document

        assert parse_path("//x").evaluate(Document()) == []

    def test_parent_path_helper(self):
        path = parse_path("p/citizenship").parent_path()
        assert str(path) == "p/citizenship/.."

    def test_child_names(self):
        assert parse_path("p/name/lastname").child_names() == ["p", "name", "lastname"]


class TestTraversalMeter:
    def test_counts_traversals(self):
        meter = TraversalMeter()
        parse_path("//player").evaluate(DOC, meter)
        assert meter.nodes_traversed > 0

    def test_descendant_costs_more_than_child(self):
        deep, shallow = TraversalMeter(), TraversalMeter()
        parse_path("//lastname").evaluate(DOC, deep)
        player = parse_path("//player").evaluate(DOC)[0]
        parse_path("citizenship").evaluate(player, shallow)
        assert deep.nodes_traversed > shallow.nodes_traversed

    def test_reset(self):
        meter = TraversalMeter()
        meter.touch(5)
        meter.reset()
        assert meter.nodes_traversed == 0


class TestAxmlTransparency:
    AXML = parse_document(
        """
<r><p>
  <axml:sc mode="replace" methodName="m">
    <axml:params><axml:param name="n"><axml:value>v</axml:value></axml:param></axml:params>
    <points>475</points>
    <axml:catch faultName="A"><note/></axml:catch>
  </axml:sc>
</p></r>
"""
    )

    def test_child_sees_through_sc(self):
        p = parse_path("//p").evaluate(self.AXML)[0]
        nodes = parse_path("points").evaluate(p)
        assert [n.text_content() for n in nodes] == ["475"]

    def test_params_not_content(self):
        assert parse_path("//axml:value").evaluate(self.AXML) == []

    def test_catch_body_not_content(self):
        assert parse_path("//note").evaluate(self.AXML) == []

    def test_explicit_sc_addressable(self):
        assert len(parse_path("//axml:sc").evaluate(self.AXML)) == 1
        p = parse_path("//p").evaluate(self.AXML)[0]
        assert len(parse_path("axml:sc").evaluate(p)) == 1

    def test_nested_sc_transparent(self):
        doc = parse_document(
            "<r><axml:sc methodName='a'><axml:sc methodName='b'>"
            "<x>1</x></axml:sc></axml:sc></r>"
        )
        nodes = parse_path("x").evaluate(doc.root)
        assert [n.text_content() for n in nodes] == ["1"]
