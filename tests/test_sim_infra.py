"""Unit tests for the simulation infrastructure: rng, metrics, workload,
harness, extended chain relations, replication, peer-independent ledger."""

import pytest

from repro.errors import P2PError
from repro.p2p.chain import PeerChain
from repro.sim.harness import ExperimentTable, mean, ratio, sweep
from repro.sim.metrics import MetricsCollector
from repro.sim.rng import SeededRng
from repro.sim.workload import (
    OperationMix,
    generate_catalogue,
    generate_invocation_tree,
    generate_operation,
    generate_participant_sets,
    generate_transaction,
    tree_peers,
)


class TestSeededRng:
    def test_deterministic(self):
        a, b = SeededRng(42), SeededRng(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]
        assert a.randint(0, 100) == b.randint(0, 100)

    def test_different_seeds_differ(self):
        assert SeededRng(1).random() != SeededRng(2).random()

    def test_coin_extremes(self):
        rng = SeededRng(0)
        assert not any(rng.coin(0.0) for _ in range(20))
        assert all(rng.coin(1.0) for _ in range(20))

    def test_fork_independent(self):
        rng = SeededRng(7)
        child = rng.fork()
        assert child.random() != SeededRng(7).random()

    def test_sample_and_choice(self):
        rng = SeededRng(3)
        items = list(range(10))
        sample = rng.sample(items, 3)
        assert len(sample) == 3 and len(set(sample)) == 3
        assert rng.choice(items) in items


class TestMetrics:
    def test_counters(self):
        metrics = MetricsCollector()
        metrics.incr("x")
        metrics.incr("x", 2)
        assert metrics.get("x") == 3
        assert metrics.get("missing") == 0

    def test_message_recording(self):
        metrics = MetricsCollector()
        metrics.record_message("ping")
        metrics.record_message("ping")
        assert metrics.get("messages") == 2
        assert metrics.get("messages.ping") == 2

    def test_detection_latency(self):
        metrics = MetricsCollector()
        metrics.record_detection("P", "Q", 1.0, 1.5)
        metrics.record_detection("P", "R", 1.0, 1.2)
        assert metrics.detection_latency("P") == pytest.approx(0.2)
        assert metrics.detection_latency("ghost") is None

    def test_outcome_counts(self):
        metrics = MetricsCollector()
        metrics.record_txn_outcome("T1", "committed")
        metrics.record_txn_outcome("T2", "aborted")
        metrics.record_txn_outcome("T3", "committed")
        assert metrics.outcome_counts() == {"committed": 2, "aborted": 1}

    def test_snapshot_is_copy(self):
        metrics = MetricsCollector()
        metrics.incr("x")
        snap = metrics.snapshot()
        metrics.incr("x")
        assert snap["x"] == 1


class TestWorkload:
    def test_catalogue_deterministic(self):
        from repro.xmlstore.serializer import canonical

        a = generate_catalogue(SeededRng(5), 10, name="C")
        b = generate_catalogue(SeededRng(5), 10, name="C")
        assert canonical(a.document) == canonical(b.document)

    def test_catalogue_has_skus(self):
        doc = generate_catalogue(SeededRng(5), 4, name="C")
        skus = [
            e.text_content()
            for e in doc.document.iter_elements()
            if e.name.local == "sku"
        ]
        assert skus == ["0", "1", "2", "3"]

    def test_call_density(self):
        doc = generate_catalogue(SeededRng(5), 30, name="C", call_density=1.0)
        assert len(doc.service_calls()) == 30
        doc0 = generate_catalogue(SeededRng(5), 30, name="C", call_density=0.0)
        assert len(doc0.service_calls()) == 0

    def test_mix_extremes(self):
        from repro.query.ast import ActionType

        rng = SeededRng(1)
        doc = generate_catalogue(rng, 5, name="C")
        only_q = OperationMix(0, 0, 0, 1)
        for _ in range(10):
            assert generate_operation(rng, doc, only_q).action_type is ActionType.QUERY

    def test_selective_targets_one_item(self):
        from repro.query.update import apply_action

        rng = SeededRng(2)
        doc = generate_catalogue(rng, 20, name="C")
        action = generate_operation(rng, doc, OperationMix(0, 1, 0, 0), selective=True)
        result = apply_action(doc.document, action)
        assert len(result.records) <= 1

    def test_generate_transaction_length(self):
        rng = SeededRng(3)
        doc = generate_catalogue(rng, 5, name="C")
        assert len(generate_transaction(rng, doc, 7)) == 7

    def test_invocation_tree_valid(self):
        rng = SeededRng(4)
        topology = generate_invocation_tree(rng, depth=3, fanout=3)
        peers = tree_peers(topology)
        assert peers[0] == "AP1"
        assert len(peers) == len(set(peers))
        # every child's parent appears in the topology keys or as a leaf
        for parent, children in topology.items():
            assert parent in peers
            for child, method in children:
                assert child in peers
                assert method == f"S{child[2:]}"

    def test_participant_sets_bounds(self):
        rng = SeededRng(6)
        sets = generate_participant_sets(rng, [f"P{i}" for i in range(10)], 20, 2, 5)
        assert len(sets) == 20
        assert all(2 <= len(s) <= 5 for s in sets)


class TestHarness:
    def test_table_render(self):
        table = ExperimentTable("T", ["a", "b"])
        table.add_row(a=1, b=2.5)
        table.add_row(a="x", b=None)
        table.add_note("n")
        text = table.render()
        assert "== T ==" in text
        assert "2.5" in text
        assert "-" in text  # None renders as a dash
        assert "note: n" in text

    def test_non_finite_rows_rejected(self):
        table = ExperimentTable("T", ["a"])
        with pytest.raises(ValueError):
            table.add_row(a=float("inf"))
        with pytest.raises(ValueError):
            table.add_row(a=float("nan"))
        assert table.rows == []

    def test_unknown_column_rejected(self):
        table = ExperimentTable("T", ["a"])
        with pytest.raises(ValueError):
            table.add_row(zzz=1)

    def test_column_access(self):
        table = ExperimentTable("T", ["a"])
        table.add_row(a=1)
        table.add_row(a=2)
        assert table.column("a") == [1, 2]

    def test_sweep(self):
        table = sweep("S", ["p", "v"], [1, 2, 3], lambda p: {"p": p, "v": p * p})
        assert table.column("v") == [1, 4, 9]

    def test_ratio(self):
        assert ratio(4, 2) == 2
        assert ratio(0, 0) == 1.0
        # x/0 is undefined, not infinite: None keeps JSON exports strict.
        assert ratio(3, 0) is None

    def test_mean(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0.0


class TestExtendedChain:
    def chain(self):
        chain = PeerChain("R")
        chain.add_invocation("R", "A")
        chain.add_invocation("R", "B")
        chain.add_invocation("A", "A1")
        chain.add_invocation("A", "A2")
        chain.add_invocation("B", "B1")
        return chain

    def test_uncles(self):
        chain = self.chain()
        assert chain.uncles_of("A1") == ["B"]
        assert chain.uncles_of("A") == []
        assert chain.uncles_of("R") == []

    def test_cousins(self):
        chain = self.chain()
        assert chain.cousins_of("A1") == ["B1"]
        assert chain.cousins_of("B1") == ["A1", "A2"]

    def test_relatives_immediate(self):
        chain = self.chain()
        assert set(chain.relatives_of("A", "immediate")) == {"R", "A1", "A2", "B"}

    def test_relatives_extended(self):
        chain = self.chain()
        relatives = set(chain.relatives_of("A1", "extended"))
        assert relatives == {"A", "A2", "R", "B", "B1"}

    def test_bad_scope(self):
        with pytest.raises(P2PError):
            self.chain().relatives_of("A", "galactic")


class TestReplication:
    def test_replicate_document_preserves_ids(self):
        from repro.axml.document import AXMLDocument
        from repro.p2p.network import SimNetwork
        from repro.p2p.peer import AXMLPeer
        from repro.p2p.replication import ReplicationManager

        network = SimNetwork()
        a = AXMLPeer("A", network)
        b = AXMLPeer("B", network)
        replication = ReplicationManager(network)
        doc = a.host_document(AXMLDocument.from_xml("<D><x>1</x></D>", name="D"))
        replication.register_primary("D", "A")
        replica = replication.replicate_document("D", "B")
        x_id = doc.document.root.child_elements()[0].node_id
        assert replica.document.has_node(x_id)
        assert replication.holders("D") == ["A", "B"]

    def test_alive_holder_skips_dead(self):
        from repro.axml.document import AXMLDocument
        from repro.p2p.network import SimNetwork
        from repro.p2p.peer import AXMLPeer
        from repro.p2p.replication import ReplicationManager

        network = SimNetwork()
        a = AXMLPeer("A", network)
        b = AXMLPeer("B", network)
        replication = ReplicationManager(network)
        a.host_document(AXMLDocument.from_xml("<D/>", name="D"))
        replication.register_primary("D", "A")
        replication.replicate_document("D", "B")
        network.disconnect("A")
        assert replication.alive_holder("D") == "B"
        network.disconnect("B")
        assert replication.alive_holder("D") is None

    def test_replicate_missing_document(self):
        from repro.p2p.network import SimNetwork
        from repro.p2p.replication import ReplicationManager

        with pytest.raises(P2PError):
            ReplicationManager(SimNetwork()).replicate_document("ghost", "B")


class TestPeerIndependentLedger:
    def test_ledger_roundtrip(self):
        from repro.txn.peer_independent import CompensationLedger
        from repro.txn.compensation import CompensationPlan

        ledger = CompensationLedger("T1")
        plan = CompensationPlan("DocA")
        ledger.add("P1", plan.to_xml())
        ledger.add("P2", CompensationPlan("DocB").to_xml())
        ledger.add("P1", CompensationPlan("DocA").to_xml())
        assert len(ledger) == 3
        assert ledger.providers() == ["P1", "P2"]
        assert ledger.documents() == ["DocA", "DocB"]

    def test_dispatch_falls_back_to_replica(self):
        from repro.axml.document import AXMLDocument
        from repro.p2p.network import SimNetwork
        from repro.p2p.peer import AXMLPeer
        from repro.p2p.replication import ReplicationManager
        from repro.txn.compensation import CompensationPlan
        from repro.txn.peer_independent import CompensationLedger, dispatch_ledger

        network = SimNetwork()
        origin = AXMLPeer("O", network)
        provider = AXMLPeer("P", network)
        replica_holder = AXMLPeer("R", network)
        replication = ReplicationManager(network)
        provider.host_document(AXMLDocument.from_xml("<D><x/></D>", name="D"))
        replication.register_primary("D", "P")
        replication.replicate_document("D", "R")
        ledger = CompensationLedger("T1")
        ledger.add("P", CompensationPlan("D").to_xml())
        network.disconnect("P")
        outcome = dispatch_ledger(network, "O", ledger)
        assert outcome.complete
        assert outcome.via_replica == 1

    def test_dispatch_failure_counted(self):
        from repro.p2p.network import SimNetwork
        from repro.p2p.peer import AXMLPeer
        from repro.txn.compensation import CompensationPlan
        from repro.txn.peer_independent import CompensationLedger, dispatch_ledger

        network = SimNetwork()
        AXMLPeer("O", network)
        AXMLPeer("P", network)
        ledger = CompensationLedger("T1")
        ledger.add("P", CompensationPlan("D").to_xml())
        network.disconnect("P")
        outcome = dispatch_ledger(network, "O", ledger)
        assert not outcome.complete
        assert outcome.failed == 1
