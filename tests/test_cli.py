"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_atplist_defaults(self):
        args = build_parser().parse_args(["atplist"])
        assert args.query == "A"
        assert not args.abort

    def test_fig1_options(self):
        args = build_parser().parse_args(
            ["fig1", "--fault", "AP5:S5", "--handler", "AP3:S5", "--no-chaining"]
        )
        assert args.fault == "AP5:S5"
        assert args.no_chaining

    def test_report_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.scenario == "fig1"
        assert args.json_out is None


class TestCommands:
    def test_atplist_commit(self, capsys):
        assert main(["atplist", "--query", "A"]) == 0
        out = capsys.readouterr().out
        assert "getGrandSlamsWonbyYear" in out
        assert "2005" in out

    def test_atplist_abort(self, capsys):
        assert main(["atplist", "--query", "B", "--abort"]) == 0
        out = capsys.readouterr().out
        assert "restored by dynamic compensation" in out
        assert "<points>475</points>" in out

    def test_fig1_happy(self, capsys):
        assert main(["fig1"]) == 0
        assert 'by="AP6"' in capsys.readouterr().out

    def test_fig1_fault_aborts(self, capsys):
        assert main(["fig1", "--fault", "AP5:S5"]) == 1
        out = capsys.readouterr().out
        assert "aborted" in out
        assert "<entry" not in out

    def test_fig1_handler_recovers(self, capsys):
        assert main(["fig1", "--fault", "AP5:S5", "--handler", "AP3:S5"]) == 0
        assert "recovered/committed" in capsys.readouterr().out

    def test_fig1_bad_fault_spec(self):
        with pytest.raises(SystemExit):
            main(["fig1", "--fault", "nonsense"])

    @pytest.mark.parametrize("case", ["b", "c", "d"])
    def test_fig2_cases(self, capsys, case):
        assert main(["fig2", "--case", case]) == 0
        assert f"case ({case})" in capsys.readouterr().out

    def test_fig2_naive(self, capsys):
        assert main(["fig2", "--case", "b", "--no-chaining"]) == 0
        assert "[naive]" in capsys.readouterr().out

    def test_report_fig1_fault(self, capsys):
        assert main(["report", "--fault", "AP5:S5"]) == 0
        out = capsys.readouterr().out
        assert "-- transaction outcomes --" in out
        assert "-- message breakdown --" in out
        assert "rpc_latency" in out
        assert "-- slowest spans --" in out
        assert "aborted" in out

    def test_report_fig2(self, capsys):
        assert main(["report", "--scenario", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "detection latency (earliest):" in out

    def test_report_json_artifact(self, capsys, tmp_path):
        path = tmp_path / "run.json"
        assert main(
            ["report", "--scenario", "fig2", "--json-out", str(path)]
        ) == 0
        text = path.read_text()
        assert "Infinity" not in text and "NaN" not in text
        data = json.loads(text)
        assert {"scenario", "metrics", "spans"} <= set(data)
        assert data["metrics"]["histograms"]["rpc_latency"]["p50"] is not None
        assert data["spans"]["summary"]["total"] > 0

    def test_spheres(self, capsys):
        assert main(["spheres", "--super-fraction", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "guaranteed (plain):                    1.000" in out
