"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_atplist_defaults(self):
        args = build_parser().parse_args(["atplist"])
        assert args.query == "A"
        assert not args.abort

    def test_fig1_options(self):
        args = build_parser().parse_args(
            ["fig1", "--fault", "AP5:S5", "--handler", "AP3:S5", "--no-chaining"]
        )
        assert args.fault == "AP5:S5"
        assert args.no_chaining


class TestCommands:
    def test_atplist_commit(self, capsys):
        assert main(["atplist", "--query", "A"]) == 0
        out = capsys.readouterr().out
        assert "getGrandSlamsWonbyYear" in out
        assert "2005" in out

    def test_atplist_abort(self, capsys):
        assert main(["atplist", "--query", "B", "--abort"]) == 0
        out = capsys.readouterr().out
        assert "restored by dynamic compensation" in out
        assert "<points>475</points>" in out

    def test_fig1_happy(self, capsys):
        assert main(["fig1"]) == 0
        assert 'by="AP6"' in capsys.readouterr().out

    def test_fig1_fault_aborts(self, capsys):
        assert main(["fig1", "--fault", "AP5:S5"]) == 1
        out = capsys.readouterr().out
        assert "aborted" in out
        assert "<entry" not in out

    def test_fig1_handler_recovers(self, capsys):
        assert main(["fig1", "--fault", "AP5:S5", "--handler", "AP3:S5"]) == 0
        assert "recovered/committed" in capsys.readouterr().out

    def test_fig1_bad_fault_spec(self):
        with pytest.raises(SystemExit):
            main(["fig1", "--fault", "nonsense"])

    @pytest.mark.parametrize("case", ["b", "c", "d"])
    def test_fig2_cases(self, capsys, case):
        assert main(["fig2", "--case", case]) == 0
        assert f"case ({case})" in capsys.readouterr().out

    def test_fig2_naive(self, capsys):
        assert main(["fig2", "--case", "b", "--no-chaining"]) == 0
        assert "[naive]" in capsys.readouterr().out

    def test_spheres(self, capsys):
        assert main(["spheres", "--super-fraction", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "guaranteed (plain):                    1.000" in out
