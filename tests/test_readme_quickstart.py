"""The README quickstart snippet and the package doctest must keep working."""

import doctest

import repro


def test_package_doctest():
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0


def test_readme_quickstart_snippet():
    from repro.api import Cluster

    cluster = Cluster()
    cluster.add_peer("AP1")
    doc = cluster.host_document(
        "AP1", "<Shop><item><price>45</price></item></Shop>", name="Shop")

    with cluster.session("AP1").transaction() as txn:
        txn.submit(
            '<action type="replace"><data><price>39</price></data>'
            '<location>Select i/price from i in Shop//item;</location></action>')
    assert "39" in doc.to_xml()


def test_pre_facade_peer_api_still_works():
    from repro import AXMLPeer, SimNetwork, AXMLDocument

    network = SimNetwork()
    peer = AXMLPeer("AP1", network)
    doc = peer.host_document(AXMLDocument.from_xml(
        "<Shop><item><price>45</price></item></Shop>", name="Shop"))

    txn = peer.begin_transaction()
    peer.submit(txn.txn_id,
        '<action type="replace"><data><price>39</price></data>'
        '<location>Select i/price from i in Shop//item;</location></action>')

    peer.abort(txn.txn_id)
    assert "45" in doc.to_xml()
