"""Unit tests for Select evaluation (repro.query.evaluate)."""

import pytest

from repro.query.evaluate import evaluate_select
from repro.query.parser import parse_select
from repro.xmlstore.parser import parse_document
from repro.xmlstore.path import TraversalMeter


@pytest.fixture
def doc():
    return parse_document(
        """
<ATPList>
  <player rank="1">
    <name><lastname>Federer</lastname></name>
    <citizenship>Swiss</citizenship>
    <points>475</points>
  </player>
  <player rank="2">
    <name><lastname>Nadal</lastname></name>
    <citizenship>Spanish</citizenship>
    <points>390</points>
  </player>
  <player rank="3">
    <name><lastname>Roddick</lastname></name>
    <citizenship>American</citizenship>
    <points>370</points>
  </player>
</ATPList>
""",
        name="ATPList",
    )


class TestBasicEvaluation:
    def test_equality_filter(self, doc):
        q = parse_select(
            "Select p/citizenship from p in ATPList//player "
            "where p/name/lastname = Federer;"
        )
        assert evaluate_select(q, doc).texts() == ["Swiss"]

    def test_no_filter_returns_all(self, doc):
        q = parse_select("Select p/citizenship from p in ATPList//player;")
        assert evaluate_select(q, doc).texts() == ["Swiss", "Spanish", "American"]

    def test_no_match(self, doc):
        q = parse_select(
            "Select p from p in ATPList//player where p/name/lastname = Borg;"
        )
        result = evaluate_select(q, doc)
        assert result.is_empty()
        assert len(result) == 0

    def test_bare_variable_selects_binding(self, doc):
        q = parse_select(
            "Select p from p in ATPList//player where p/citizenship = Swiss;"
        )
        nodes = evaluate_select(q, doc).all_nodes()
        assert len(nodes) == 1
        assert nodes[0].name.local == "player"

    def test_multiple_select_paths(self, doc):
        q = parse_select(
            "Select p/citizenship, p/points from p in ATPList//player "
            "where p/name/lastname = Nadal;"
        )
        assert evaluate_select(q, doc).texts() == ["Spanish", "390"]

    def test_binding_carries_context(self, doc):
        q = parse_select("Select p/points from p in ATPList//player;")
        result = evaluate_select(q, doc)
        assert [b.context.attributes["rank"] for b in result.bindings] == ["1", "2", "3"]


class TestComparisons:
    def test_numeric_gt(self, doc):
        q = parse_select(
            "Select p/name/lastname from p in ATPList//player where p/points > 380;"
        )
        assert evaluate_select(q, doc).texts() == ["Federer", "Nadal"]

    def test_numeric_lte(self, doc):
        q = parse_select(
            "Select p/name/lastname from p in ATPList//player where p/points <= 370;"
        )
        assert evaluate_select(q, doc).texts() == ["Roddick"]

    def test_not_equal(self, doc):
        q = parse_select(
            "Select p/name/lastname from p in ATPList//player "
            "where p/citizenship != Swiss;"
        )
        assert evaluate_select(q, doc).texts() == ["Nadal", "Roddick"]

    def test_string_ordering(self, doc):
        q = parse_select(
            "Select p/name/lastname from p in ATPList//player "
            "where p/citizenship < Spanish;"
        )
        assert evaluate_select(q, doc).texts() == ["Roddick"]  # American < Spanish

    def test_and(self, doc):
        q = parse_select(
            "Select p/name/lastname from p in ATPList//player "
            "where p/points > 380 and p/citizenship = Swiss;"
        )
        assert evaluate_select(q, doc).texts() == ["Federer"]

    def test_or(self, doc):
        q = parse_select(
            "Select p/name/lastname from p in ATPList//player "
            "where p/citizenship = Swiss or p/citizenship = Spanish;"
        )
        assert evaluate_select(q, doc).texts() == ["Federer", "Nadal"]

    def test_and_or_combined(self, doc):
        q = parse_select(
            "Select p/name/lastname from p in ATPList//player "
            "where p/points > 400 and p/citizenship = Swiss or p/points < 375;"
        )
        assert evaluate_select(q, doc).texts() == ["Federer", "Roddick"]


class TestIdSource:
    def test_resolves(self, doc):
        player = doc.root.child_elements()[1]
        q = parse_select(f"Select n/citizenship from n in id({player.node_id!r}@ATPList);")
        assert evaluate_select(q, doc).texts() == ["Spanish"]

    def test_missing_id_is_empty(self, doc):
        q = parse_select("Select n from n in id(d999.n999@ATPList);")
        assert evaluate_select(q, doc).is_empty()

    def test_detached_id_is_empty(self, doc):
        player = doc.root.child_elements()[0]
        node_id = player.node_id
        player.detach()
        q = parse_select(f"Select n from n in id({node_id!r}@ATPList);")
        assert evaluate_select(q, doc).is_empty()

    def test_where_applies_to_id_source(self, doc):
        player = doc.root.child_elements()[0]
        q = parse_select(
            f"Select n from n in id({player.node_id!r}@ATPList) "
            "where n/citizenship = Spanish;"
        )
        assert evaluate_select(q, doc).is_empty()


class TestMeter:
    def test_meter_counts(self, doc):
        meter = TraversalMeter()
        q = parse_select("Select p/points from p in ATPList//player;")
        evaluate_select(q, doc, meter)
        assert meter.nodes_traversed > 3

    def test_empty_document(self):
        from repro.xmlstore.nodes import Document

        q = parse_select("Select p from p in D//x;")
        assert evaluate_select(q, Document()).is_empty()
