"""Unit and integration tests for optimistic validation (repro.txn.occ)."""

import pytest

from repro.axml.document import AXMLDocument
from repro.errors import TransactionError
from repro.query.parser import parse_action
from repro.query.update import apply_action
from repro.txn.compensation import compensating_actions_for
from repro.txn.occ import (
    OptimisticValidator,
    ValidationConflict,
    read_ids,
    written_ids,
)
from repro.xmlstore.nodes import NodeId
from repro.xmlstore.serializer import canonical


@pytest.fixture
def shop():
    return AXMLDocument.from_xml(
        "<Shop><item id='1'><price>10</price></item>"
        "<item id='2'><price>20</price></item></Shop>",
        name="Shop",
    )


def replace_price(shop, which, value):
    return apply_action(
        shop.document,
        parse_action(
            f'<action type="replace"><data><price>{value}</price></data>'
            f"<location>Select i/price from i in Shop//item "
            f"where i/price = {which};</location></action>"
        ),
    )


def query_prices(shop):
    return apply_action(
        shop.document,
        parse_action(
            '<action type="query"><location>Select i/price from i in '
            "Shop//item;</location></action>"
        ),
    ).query_result


class TestFootprints:
    def test_written_ids_cover_parents(self, shop):
        result = replace_price(shop, 10, 99)
        ids = written_ids(result.records)
        record = result.records[0]
        assert record.deleted.node_id in ids
        assert record.deleted.parent_id in ids
        assert record.inserted[0].node_id in ids

    def test_read_ids_cover_bindings_and_selections(self, shop):
        result = query_prices(shop)
        ids = read_ids(result)
        for binding in result.bindings:
            assert binding.context.node_id in ids
            for node in binding.nodes():
                assert node.node_id in ids


class TestValidator:
    def test_disjoint_transactions_commit(self, shop):
        validator = OptimisticValidator()
        validator.begin("T1")
        validator.begin("T2")
        validator.track_writes("T1", written_ids(replace_price(shop, 10, 11).records))
        validator.track_writes("T2", written_ids(replace_price(shop, 20, 21).records))
        validator.validate_and_commit("T1")
        validator.validate_and_commit("T2")
        assert validator.conflicts == 0

    def test_read_write_conflict_detected(self, shop):
        validator = OptimisticValidator()
        validator.begin("reader")
        validator.begin("writer")
        validator.track_reads("reader", read_ids(query_prices(shop)))
        validator.track_writes(
            "writer", written_ids(replace_price(shop, 10, 99).records)
        )
        validator.validate_and_commit("writer")  # first committer wins
        with pytest.raises(ValidationConflict) as exc:
            validator.validate_and_commit("reader")
        assert exc.value.conflicting_txn == "writer"
        assert validator.conflict_rate == 0.5

    def test_commit_before_start_is_invisible(self, shop):
        validator = OptimisticValidator()
        validator.begin("old")
        validator.track_writes("old", written_ids(replace_price(shop, 10, 99).records))
        validator.validate_and_commit("old")
        validator.begin("young")
        validator.track_reads("young", read_ids(query_prices(shop)))
        validator.validate_and_commit("young")  # started after old's commit

    def test_write_write_conflict(self, shop):
        validator = OptimisticValidator()
        validator.begin("T1")
        validator.begin("T2")
        shared = written_ids(replace_price(shop, 10, 50).records)
        validator.track_writes("T1", shared)
        validator.track_writes("T2", shared)
        validator.validate_and_commit("T1")
        with pytest.raises(ValidationConflict):
            validator.validate_and_commit("T2")

    def test_readonly_leaves_no_history(self):
        validator = OptimisticValidator()
        validator.begin("reader")
        validator.track_reads("reader", [NodeId(1, 1)])
        validator.validate_and_commit("reader")
        validator.begin("other")
        validator.track_reads("other", [NodeId(1, 1)])
        validator.validate_and_commit("other")

    def test_abort_drops_tracking(self):
        validator = OptimisticValidator()
        validator.begin("T1")
        validator.track_writes("T1", [NodeId(1, 1)])
        validator.abort("T1")
        validator.begin("T2")
        validator.track_reads("T2", [NodeId(1, 1)])
        validator.validate_and_commit("T2")  # T1 never committed

    def test_double_begin_rejected(self):
        validator = OptimisticValidator()
        validator.begin("T1")
        with pytest.raises(TransactionError):
            validator.begin("T1")

    def test_untracked_rejected(self):
        with pytest.raises(TransactionError):
            OptimisticValidator().track_reads("ghost", [])

    def test_history_bounded(self):
        validator = OptimisticValidator(history_limit=5)
        for i in range(20):
            validator.begin(f"T{i}")
            validator.track_writes(f"T{i}", [NodeId(1, i)])
            validator.validate_and_commit(f"T{i}")
        assert len(validator._committed) == 5


class TestOccWithCompensation:
    """The interplay the paper's conclusion asks about: a validation
    conflict aborts the loser, whose writes compensation removes."""

    def test_conflict_loser_compensates_cleanly(self, shop):
        validator = OptimisticValidator()
        pre = canonical(shop.document)
        validator.begin("loser")
        validator.begin("winner")
        loser_result = replace_price(shop, 20, 77)
        validator.track_writes("loser", written_ids(loser_result.records))
        # winner reads+writes the same doc region and commits first
        winner_result = replace_price(shop, 10, 99)
        validator.track_writes("winner", written_ids(winner_result.records))
        validator.track_reads("loser", read_ids(query_prices(shop)))
        validator.validate_and_commit("winner")
        with pytest.raises(ValidationConflict):
            validator.validate_and_commit("loser")
        validator.abort("loser")
        for comp in compensating_actions_for(loser_result, "Shop"):
            apply_action(shop.document, comp, tolerate_missing_targets=True)
        # winner's effect remains, loser's is gone
        text = canonical(shop.document)
        assert "99" in text and "77" not in text and "20" in text
        assert text != pre
