"""Unit tests for transactions, WAL, operations, manager and spheres."""

import pytest

from repro.axml.document import AXMLDocument
from repro.errors import TransactionError, TransactionStateError
from repro.query.parser import parse_action
from repro.txn.manager import TransactionManager
from repro.txn.operations import TransactionalOperation, build_compensation
from repro.txn.spheres import analyze_sphere, sphere_guarantee_rate
from repro.txn.transaction import Transaction, TransactionContext, TransactionState
from repro.txn.wal import OperationLog
from repro.xmlstore.serializer import canonical


@pytest.fixture
def axml_doc():
    return AXMLDocument.from_xml(
        "<Shop><item id='1'><price>10</price></item>"
        "<item id='2'><price>20</price></item></Shop>",
        name="Shop",
    )


class TestTransaction:
    def test_begin_unique_ids(self):
        t1, t2 = Transaction.begin("AP1"), Transaction.begin("AP1")
        assert t1.txn_id != t2.txn_id
        assert t1.origin_peer == "AP1"

    def test_context_states(self):
        ctx = TransactionContext(Transaction.begin("AP1"), "AP1")
        assert ctx.state is TransactionState.ACTIVE
        assert ctx.is_origin
        ctx.transition(TransactionState.COMPENSATING)
        ctx.transition(TransactionState.ABORTED)
        assert ctx.is_finished

    def test_illegal_transitions(self):
        ctx = TransactionContext(Transaction.begin("AP1"), "AP1")
        ctx.transition(TransactionState.COMMITTED)
        with pytest.raises(TransactionStateError):
            ctx.transition(TransactionState.ABORTED)

    def test_require_active(self):
        ctx = TransactionContext(Transaction.begin("AP1"), "AP1")
        ctx.require_active()
        ctx.transition(TransactionState.ABORTED)
        with pytest.raises(TransactionStateError):
            ctx.require_active()

    def test_participant_context(self):
        ctx = TransactionContext(
            Transaction.begin("AP1"), "AP3", parent_peer="AP1", service_name="S3"
        )
        assert not ctx.is_origin
        assert ctx.parent_peer == "AP1"

    def test_invocation_edges(self):
        ctx = TransactionContext(Transaction.begin("AP1"), "AP1")
        ctx.record_invocation("AP2", "S2")
        ctx.record_invocation("AP3", "S3")
        ctx.record_invocation("AP2", "S2b")
        assert ctx.invoked_peers() == ["AP2", "AP3"]


class TestOperationLog:
    def test_append_and_read(self):
        log = OperationLog("AP1")
        log.append("T1", "update", "D", "<action/>")
        log.append("T2", "update", "D", "<action/>")
        log.append("T1", "query", "D", "<action/>")
        assert len(log) == 3
        assert [e.seq for e in log.entries_for("T1")] == [1, 3]
        assert [e.seq for e in log.undo_entries("T1")] == [3, 1]

    def test_truncate(self):
        log = OperationLog()
        log.append("T1", "update", "D", "<a/>")
        log.append("T2", "update", "D", "<a/>")
        assert log.truncate("T1") == 1
        assert len(log) == 1
        assert log.entries_for("T1") == []

    def test_documents_touched_requires_records(self, axml_doc):
        from repro.query.update import apply_action

        log = OperationLog()
        result = apply_action(
            axml_doc.document,
            parse_action(
                '<action type="delete"><location>Select i/price from i in '
                "Shop//item;</location></action>"
            ),
        )
        log.append("T1", "update", "Shop", "<a/>", records=result.records)
        log.append("T1", "query", "Other", "<a/>")  # no records
        assert log.documents_touched("T1") == ["Shop"]

    def test_approximate_bytes_grows(self, axml_doc):
        from repro.query.update import apply_action

        log = OperationLog()
        before = log.approximate_bytes()
        result = apply_action(
            axml_doc.document,
            parse_action(
                '<action type="delete"><location>Select i/price from i in '
                "Shop//item;</location></action>"
            ),
        )
        log.append("T1", "update", "Shop", "<a/>", records=result.records)
        assert log.approximate_bytes() > before

    def test_dump(self):
        log = OperationLog()
        log.append("T1", "update", "D", "<a/>", timestamp=1.5)
        assert "T1" in log.dump()


class TestTransactionalOperation:
    def test_update_logged(self, axml_doc):
        log = OperationLog()
        op = TransactionalOperation(
            "T1",
            parse_action(
                '<action type="insert"><data><tag/></data><location>Select i from '
                "i in Shop//item;</location></action>"
            ),
        )
        outcome = op.execute(axml_doc, None, log)
        assert outcome.log_entry is not None
        assert len(outcome.change_records()) == 2  # one insert per item
        assert log.entries_for("T1")

    def test_query_without_resolver_logs_no_records(self, axml_doc):
        log = OperationLog()
        op = TransactionalOperation(
            "T1",
            parse_action(
                '<action type="query"><location>Select i/price from i in '
                "Shop//item;</location></action>"
            ),
        )
        outcome = op.execute(axml_doc, None, log)
        assert outcome.query_result.texts() == ["10", "20"]
        assert outcome.change_records() == []

    def test_bad_evaluation_mode(self):
        with pytest.raises(ValueError):
            TransactionalOperation("T1", parse_action(
                '<action type="query"><location>Select i from i in S//x;'
                "</location></action>"
            ), evaluation="psychic")

    def test_build_compensation_per_document(self, axml_doc):
        log = OperationLog()
        op = TransactionalOperation(
            "T1",
            parse_action(
                '<action type="delete"><location>Select i/price from i in '
                "Shop//item;</location></action>"
            ),
        )
        op.execute(axml_doc, None, log)
        plans = build_compensation(log, "T1")
        assert len(plans) == 1
        assert plans[0].document_name == "Shop"
        assert len(plans[0]) == 2


class TestTransactionManager:
    def _manager(self, axml_doc):
        return TransactionManager("AP1", lambda name: axml_doc)

    def test_begin_and_context(self, axml_doc):
        manager = self._manager(axml_doc)
        txn = Transaction.begin("AP1")
        ctx = manager.begin(txn)
        assert manager.context(txn.txn_id) is ctx
        assert manager.begin(txn) is ctx  # idempotent

    def test_unknown_context(self, axml_doc):
        with pytest.raises(TransactionError):
            self._manager(axml_doc).context("T999")

    def test_execute_commit_truncates(self, axml_doc):
        manager = self._manager(axml_doc)
        txn = Transaction.begin("AP1")
        manager.begin(txn)
        manager.execute(
            txn.txn_id,
            parse_action(
                '<action type="insert"><data><tag/></data><location>Select i from '
                "i in Shop//item;</location></action>"
            ),
            "Shop",
        )
        assert len(manager.log.entries_for(txn.txn_id)) == 1
        manager.commit_local(txn.txn_id)
        assert manager.log.entries_for(txn.txn_id) == []
        manager.commit_local(txn.txn_id)  # idempotent

    def test_abort_compensates(self, axml_doc):
        manager = self._manager(axml_doc)
        pre = canonical(axml_doc.document)
        txn = Transaction.begin("AP1")
        manager.begin(txn)
        manager.execute(
            txn.txn_id,
            parse_action(
                '<action type="replace"><data><price>999</price></data>'
                "<location>Select i/price from i in Shop//item;</location></action>"
            ),
            "Shop",
        )
        assert "999" in canonical(axml_doc.document)
        executed = manager.abort_local(txn.txn_id)
        assert executed > 0
        assert canonical(axml_doc.document) == pre
        assert manager.abort_local(txn.txn_id) == 0  # idempotent

    def test_fresh_context_for_retried_participant(self, axml_doc):
        manager = self._manager(axml_doc)
        txn = Transaction.begin("AP9")
        manager.begin(txn, parent_peer="AP9", service_name="S1")
        manager.abort_local(txn.txn_id)
        fresh = manager.begin(txn, parent_peer="AP9", service_name="S1")
        assert fresh.state is TransactionState.ACTIVE

    def test_origin_context_not_replaced(self, axml_doc):
        manager = self._manager(axml_doc)
        txn = Transaction.begin("AP1")
        manager.begin(txn)
        manager.abort_local(txn.txn_id)
        ctx = manager.begin(txn)
        assert ctx.is_finished  # origin abort is final

    def test_peer_independent_roundtrip(self, axml_doc):
        manager = self._manager(axml_doc)
        pre = canonical(axml_doc.document)
        txn = Transaction.begin("AP1")
        manager.begin(txn)
        outcome = manager.execute(
            txn.txn_id,
            parse_action(
                '<action type="delete"><location>Select i/price from i in '
                "Shop//item;</location></action>"
            ),
            "Shop",
        )
        plan_xml = manager.build_compensation_xml(
            txn.txn_id, outcome.change_records(), "Shop"
        )
        # Another manager (same document provider) executes it blindly.
        other = TransactionManager("AP2", lambda name: axml_doc)
        executed = other.apply_compensation_xml(plan_xml)
        assert executed == 2
        assert canonical(axml_doc.document) == pre

    def test_mark_aborted_without_compensation(self, axml_doc):
        manager = self._manager(axml_doc)
        txn = Transaction.begin("AP1")
        manager.begin(txn)
        manager.execute(
            txn.txn_id,
            parse_action(
                '<action type="insert"><data><tag/></data><location>Select i from '
                "i in Shop//item;</location></action>"
            ),
            "Shop",
        )
        manager.mark_aborted_without_compensation(txn.txn_id)
        # The garbage insert is still there: the dead-peer hazard.
        assert "tag" in canonical(axml_doc.document)

    def test_active_transactions(self, axml_doc):
        manager = self._manager(axml_doc)
        t1, t2 = Transaction.begin("AP1"), Transaction.begin("AP1")
        manager.begin(t1)
        manager.begin(t2)
        manager.commit_local(t2.txn_id)
        assert manager.active_transactions() == [t1.txn_id]


class TestSpheres:
    def test_all_super_guaranteed(self):
        analysis = analyze_sphere(["A", "B"], super_peers=["A", "B"])
        assert analysis.guaranteed
        assert "guaranteed" in analysis.explain()

    def test_ordinary_peer_at_risk(self):
        analysis = analyze_sphere(["A", "B"], super_peers=["A"])
        assert not analysis.guaranteed
        assert analysis.at_risk_peers == frozenset({"B"})
        assert "B" in analysis.explain()

    def test_replica_plus_peer_independent_is_safe(self):
        analysis = analyze_sphere(
            ["A", "B"],
            super_peers=["A"],
            replicas_on_super_peers={"B": True},
            peer_independent=True,
        )
        assert analysis.guaranteed

    def test_replica_without_peer_independent_not_safe(self):
        analysis = analyze_sphere(
            ["A", "B"],
            super_peers=["A"],
            replicas_on_super_peers={"B": True},
            peer_independent=False,
        )
        assert not analysis.guaranteed

    def test_only_modifying_peers_matter(self):
        analysis = analyze_sphere(
            ["A", "B", "C"], super_peers=["A"], modifying_peers=["A"]
        )
        assert analysis.guaranteed

    def test_guarantee_rate(self):
        transactions = [["A"], ["A", "B"], ["B"]]
        rate = sphere_guarantee_rate(transactions, super_peers=["A"])
        assert rate == pytest.approx(1 / 3)

    def test_guarantee_rate_empty(self):
        assert sphere_guarantee_rate([], super_peers=[]) == 1.0
