"""Unit tests for active-peer chains (repro.p2p.chain)."""

import pytest

from repro.errors import P2PError
from repro.p2p.chain import PeerChain

#: The paper's §3.3 example chain.
PAPER_CHAIN = "[AP1* -> AP2 -> [AP3 -> AP6] || [AP4 -> AP5]]"


def paper_chain() -> PeerChain:
    chain = PeerChain("AP1", root_super=True)
    chain.add_invocation("AP1", "AP2")
    chain.add_invocation("AP2", "AP3")
    chain.add_invocation("AP2", "AP4")
    chain.add_invocation("AP3", "AP6")
    chain.add_invocation("AP4", "AP5")
    return chain


class TestConstruction:
    def test_paper_notation(self):
        assert paper_chain().to_text() == PAPER_CHAIN

    def test_single_chain_inline(self):
        chain = PeerChain("A")
        chain.add_invocation("A", "B")
        chain.add_invocation("B", "C")
        assert chain.to_text() == "[A -> B -> C]"

    def test_unknown_parent_rejected(self):
        with pytest.raises(P2PError):
            PeerChain("A").add_invocation("ghost", "B")

    def test_peers(self):
        assert paper_chain().peers() == ["AP1", "AP2", "AP3", "AP6", "AP4", "AP5"]


class TestNavigation:
    def test_parent_of(self):
        chain = paper_chain()
        assert chain.parent_of("AP6") == "AP3"
        assert chain.parent_of("AP2") == "AP1"
        assert chain.parent_of("AP1") is None
        assert chain.parent_of("ghost") is None

    def test_children_of(self):
        chain = paper_chain()
        assert chain.children_of("AP2") == ["AP3", "AP4"]
        assert chain.children_of("AP6") == []

    def test_siblings_of(self):
        chain = paper_chain()
        assert chain.siblings_of("AP3") == ["AP4"]
        assert chain.siblings_of("AP4") == ["AP3"]
        assert chain.siblings_of("AP1") == []

    def test_descendants_of(self):
        chain = paper_chain()
        assert set(chain.descendants_of("AP2")) == {"AP3", "AP6", "AP4", "AP5"}
        assert chain.descendants_of("AP3") == ["AP6"]

    def test_ancestors_nearest_first(self):
        chain = paper_chain()
        assert chain.ancestors_of("AP6") == ["AP3", "AP2", "AP1"]

    def test_closest_super_peer(self):
        chain = paper_chain()
        assert chain.closest_super_peer("AP6") == "AP1"
        assert chain.closest_super_peer("AP2") == "AP1"
        assert chain.closest_super_peer("AP1") is None

    def test_contains(self):
        chain = paper_chain()
        assert chain.contains("AP5")
        assert not chain.contains("APX")


class TestSerialization:
    def test_roundtrip(self):
        chain = paper_chain()
        restored = PeerChain.from_text(chain.to_text())
        assert restored.to_text() == chain.to_text()
        assert restored.parent_of("AP6") == "AP3"
        assert restored.find("AP1").super_peer

    def test_roundtrip_single(self):
        assert PeerChain.from_text("[A]").to_text() == "[A]"

    def test_super_flag_roundtrip(self):
        chain = PeerChain("A", root_super=True)
        chain.add_invocation("A", "B", child_super=True)
        restored = PeerChain.from_text(chain.to_text())
        assert restored.find("B").super_peer

    def test_copy_is_independent(self):
        chain = paper_chain()
        copy = chain.copy()
        copy.add_invocation("AP6", "AP9")
        assert not chain.contains("AP9")
        assert copy.contains("AP9")

    def test_structural_copy_pins_text_roundtrip(self):
        # copy() is a direct structural clone; this pins it to the
        # historical from_text/to_text route, node for node.
        chain = paper_chain()
        structural = chain.copy()
        roundtrip = PeerChain.from_text(chain.to_text())
        assert structural.to_text() == roundtrip.to_text() == chain.to_text()
        for node in structural.root.iter():
            twin = roundtrip.find(node.peer_id)
            assert twin is not None
            assert twin.super_peer == node.super_peer
            assert [c.peer_id for c in twin.children] == [
                c.peer_id for c in node.children
            ]
            parent = None if node.parent is None else node.parent.peer_id
            twin_parent = None if twin.parent is None else twin.parent.peer_id
            assert parent == twin_parent

    @pytest.mark.parametrize(
        "bad", ["", "A", "[A -> ]", "[A -> [B] ||]", "[]", "[A] trailing"]
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(P2PError):
            PeerChain.from_text(bad)

    def test_deep_parallel_roundtrip(self):
        chain = PeerChain("R")
        chain.add_invocation("R", "A")
        chain.add_invocation("R", "B")
        chain.add_invocation("A", "A1")
        chain.add_invocation("A", "A2")
        chain.add_invocation("B", "B1")
        restored = PeerChain.from_text(chain.to_text())
        assert restored.children_of("A") == ["A1", "A2"]
        assert restored.children_of("B") == ["B1"]
