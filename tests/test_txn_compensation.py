"""Unit tests for dynamic compensation construction (repro.txn.compensation).

These lock in the paper's §3.1 semantics: insert→delete-by-id,
delete→insert-logged-snapshot, replace→reverse pair, query→compensation
of the materialization records, all constructed at run time and applied
in reverse order.
"""

import pytest

from repro.axml.document import AXMLDocument
from repro.axml.materialize import InvocationOutcome, MaterializationEngine
from repro.query.ast import ActionType
from repro.query.parser import parse_action
from repro.query.update import apply_action
from repro.txn.compensation import (
    CompensationPlan,
    compensate_records,
    compensating_actions_for,
    compensation_for_delete,
    compensation_for_insert,
    node_query,
)
from repro.xmlstore.parser import parse_document
from repro.xmlstore.serializer import canonical

ATP = (
    "<ATPList>"
    '<player rank="1"><name><lastname>Federer</lastname></name>'
    "<citizenship>Swiss</citizenship><points>475</points></player>"
    '<player rank="2"><name><lastname>Nadal</lastname></name>'
    "<citizenship>Spanish</citizenship></player>"
    "</ATPList>"
)


@pytest.fixture
def doc():
    return parse_document(ATP, name="ATPList")


def roundtrip(doc, action_xml, ordered=True):
    """Apply an action, compensate it, return (pre, post) canonical forms."""
    pre = canonical(doc)
    result = apply_action(doc, parse_action(action_xml))
    actions = compensating_actions_for(result, "ATPList", ordered)
    for action in actions:
        apply_action(doc, action, tolerate_missing_targets=True)
    return pre, canonical(doc)


class TestInsertCompensation:
    def test_constructed_action_is_delete_by_id(self, doc):
        result = apply_action(
            doc,
            parse_action(
                '<action type="insert"><data><coach>Lundgren</coach></data>'
                "<location>Select p from p in ATPList//player "
                "where p/name/lastname = Federer;</location></action>"
            ),
        )
        actions = compensating_actions_for(result, "ATPList")
        assert len(actions) == 1
        assert actions[0].action_type is ActionType.DELETE
        assert repr(result.inserted_ids[0]) in str(actions[0].location)

    def test_restores_state(self, doc):
        pre, post = roundtrip(
            doc,
            '<action type="insert"><data><coach>X</coach></data>'
            "<location>Select p from p in ATPList//player;</location></action>",
        )
        assert pre == post


class TestDeleteCompensation:
    DELETE = (
        '<action type="delete"><location>Select p/citizenship from p in '
        "ATPList//player where p/name/lastname = Federer;</location></action>"
    )

    def test_constructed_action_is_insert_of_snapshot(self, doc):
        result = apply_action(doc, parse_action(self.DELETE))
        actions = compensating_actions_for(result, "ATPList")
        assert actions[0].action_type is ActionType.INSERT
        assert "Swiss" in actions[0].data[0]
        assert actions[0].rebind

    def test_restores_state_and_order(self, doc):
        pre, post = roundtrip(doc, self.DELETE)
        assert pre == post  # citizenship back between name and points

    def test_unordered_appends(self, doc):
        pre, post = roundtrip(doc, self.DELETE, ordered=False)
        assert pre != post  # moved to the end...
        restored = parse_document(post)
        federer = restored.root.child_elements()[0]
        assert federer.child_elements()[-1].name.local == "citizenship"

    def test_restores_node_identity(self, doc):
        citizenship = doc.root.child_elements()[0].find_children("citizenship")[0]
        original_id = citizenship.node_id
        result = apply_action(doc, parse_action(self.DELETE))
        for action in compensating_actions_for(result, "ATPList"):
            apply_action(doc, action, tolerate_missing_targets=True)
        node = doc.get_node(original_id)
        assert node.is_attached()
        assert node.text_content() == "Swiss"

    def test_subtree_delete_restores_children(self, doc):
        pre, post = roundtrip(
            doc,
            '<action type="delete"><location>Select p/name from p in '
            "ATPList//player where p/name/lastname = Federer;</location></action>",
        )
        assert pre == post


class TestReplaceCompensation:
    REPLACE = (
        '<action type="replace"><data><citizenship>USA</citizenship></data>'
        "<location>Select p/citizenship from p in ATPList//player "
        "where p/name/lastname = Nadal;</location></action>"
    )

    def test_constructed_pair(self, doc):
        result = apply_action(doc, parse_action(self.REPLACE))
        actions = compensating_actions_for(result, "ATPList")
        assert [a.action_type for a in actions] == [ActionType.DELETE, ActionType.INSERT]
        assert "Spanish" in actions[1].data[0]

    def test_restores_state(self, doc):
        pre, post = roundtrip(doc, self.REPLACE)
        assert pre == post


class TestQueryCompensation:
    """The paper's headline argument: query compensation from
    materialization records (§3.1 queries A and B)."""

    AXML = (
        "<ATPList><player>"
        "<name><lastname>Federer</lastname></name>"
        "<citizenship>Swiss</citizenship>"
        "<axml:sc mode='replace' methodName='getPoints'><points>475</points></axml:sc>"
        "<axml:sc mode='merge' methodName='getGrandSlamsWonbyYear'>"
        "<grandslamswon year='2003'>A, W</grandslamswon>"
        "<grandslamswon year='2004'>A, U</grandslamswon></axml:sc>"
        "</player></ATPList>"
    )

    def _resolver(self, call, params):
        if call.method_name == "getPoints":
            return InvocationOutcome(["<points>890</points>"])
        return InvocationOutcome(["<grandslamswon year='2005'>A, F</grandslamswon>"])

    def test_query_a_merge_compensation(self):
        from repro.query.parser import parse_select

        doc = AXMLDocument.from_xml(self.AXML, name="ATPList")
        pre = canonical(doc.document)
        q = parse_select(
            "Select p/citizenship, p/grandslamswon from p in ATPList//player "
            "where p/name/lastname = Federer;"
        )
        report = MaterializationEngine(doc, self._resolver).materialize_for_query(q)
        assert report.methods() == ["getGrandSlamsWonbyYear"]
        assert "2005" in canonical(doc.document)
        actions = compensate_records(report.change_records(), "ATPList")
        # merge-mode materialization compensates to a single delete.
        assert [a.action_type for a in actions] == [ActionType.DELETE]
        for action in actions:
            apply_action(doc.document, action, tolerate_missing_targets=True)
        assert canonical(doc.document) == pre

    def test_query_b_replace_compensation(self):
        from repro.query.parser import parse_select

        doc = AXMLDocument.from_xml(self.AXML, name="ATPList")
        pre = canonical(doc.document)
        q = parse_select(
            "Select p/citizenship, p/points from p in ATPList//player "
            "where p/name/lastname = Federer;"
        )
        report = MaterializationEngine(doc, self._resolver).materialize_for_query(q)
        assert report.methods() == ["getPoints"]
        assert "890" in canonical(doc.document)
        actions = compensate_records(report.change_records(), "ATPList")
        for action in actions:
            apply_action(doc.document, action, tolerate_missing_targets=True)
        assert canonical(doc.document) == pre
        assert "475" in canonical(doc.document)


class TestRecordSequences:
    def test_reverse_order(self, doc):
        r1 = apply_action(
            doc,
            parse_action(
                '<action type="insert"><data><a/></data><location>Select p from p '
                "in ATPList//player where p/name/lastname = Federer;</location></action>"
            ),
        )
        r2 = apply_action(
            doc,
            parse_action(
                '<action type="insert"><data><b/></data><location>Select p from p '
                "in ATPList//player where p/name/lastname = Federer;</location></action>"
            ),
        )
        actions = compensate_records(list(r1.records) + list(r2.records), "ATPList")
        # b's compensation first (reverse execution order).
        assert repr(r2.inserted_ids[0]) in str(actions[0].location)
        assert repr(r1.inserted_ids[0]) in str(actions[1].location)

    def test_empty_records(self):
        assert compensate_records([], "D") == []


class TestAdjacentSiblingDeletions:
    """Reverse-order compensation keeps sibling anchors valid.

    A delete record's anchors reference siblings present at *its*
    deletion time: nodes deleted earlier are already absent (never an
    anchor) and nodes deleted later are re-inserted *before* this record
    compensates (reverse order) — so the recorded anchor is always
    attached when used, even for adjacent/overlapping deletions."""

    @pytest.mark.parametrize("order", [("b", "c"), ("c", "b"), ("b", "d"), ("d", "b")])
    def test_two_deletions_restore_exact_order(self, order):
        doc = parse_document("<D><i><a/><b/><c/><d/></i></D>", name="D")
        pre = canonical(doc)
        results = []
        for name in order:
            results.append(
                apply_action(
                    doc,
                    parse_action(
                        f'<action type="delete"><location>Select i/{name} from '
                        "i in D//i;</location></action>"
                    ),
                )
            )
        for result in reversed(results):
            for comp in compensating_actions_for(result, "D"):
                apply_action(doc, comp, tolerate_missing_targets=True)
        assert canonical(doc) == pre

    def test_delete_all_children_restores_order(self):
        doc = parse_document("<D><i><a/><b/><c/><d/></i></D>", name="D")
        pre = canonical(doc)
        results = []
        for name in ("c", "a", "d", "b"):
            results.append(
                apply_action(
                    doc,
                    parse_action(
                        f'<action type="delete"><location>Select i/{name} from '
                        "i in D//i;</location></action>"
                    ),
                )
            )
        assert doc.root.child_elements()[0].child_elements() == []
        for result in reversed(results):
            for comp in compensating_actions_for(result, "D"):
                apply_action(doc, comp, tolerate_missing_targets=True)
        assert canonical(doc) == pre


class TestCompensationPlan:
    def test_xml_roundtrip(self, doc):
        result = apply_action(
            doc,
            parse_action(
                '<action type="delete"><location>Select p/points from p in '
                "ATPList//player;</location></action>"
            ),
        )
        plan = CompensationPlan("ATPList")
        plan.extend_from_records(result.records)
        restored = CompensationPlan.from_xml(plan.to_xml())
        assert restored.document_name == "ATPList"
        assert len(restored) == len(plan)
        assert restored.to_xml() == plan.to_xml()

    def test_execute_tolerates_missing_targets(self, doc):
        plan = CompensationPlan("ATPList")
        plan.actions.append(
            parse_action(
                '<action type="delete"><location>Select n from n in '
                "id(d9.n9@ATPList);</location></action>"
            )
        )
        results = plan.execute(doc)
        assert len(results) == 1
        assert results[0].records == []

    def test_empty_plan(self):
        plan = CompensationPlan("D")
        assert plan.is_empty()
        assert len(plan) == 0

    def test_from_xml_rejects_wrong_root(self):
        with pytest.raises(Exception):
            CompensationPlan.from_xml("<notcompensation/>")


class TestNodeQuery:
    def test_shape(self, doc):
        q = node_query(doc.root.node_id, "ATPList")
        assert q.document_name == "ATPList"
        assert "id(" in str(q)
