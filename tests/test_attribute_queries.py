"""Tests for attribute steps (@name) in paths and where clauses."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query.evaluate import evaluate_select
from repro.query.parser import parse_action, parse_select
from repro.query.update import apply_action
from repro.txn.compensation import compensating_actions_for
from repro.xmlstore.parser import parse_document
from repro.xmlstore.path import parse_path
from repro.xmlstore.serializer import canonical

DOC = parse_document(
    '<ATPList date="18042005">'
    '<player rank="1" seed="top"><name>Federer</name></player>'
    '<player rank="2"><name>Nadal</name></player>'
    "</ATPList>",
    name="ATPList",
)


class TestAttributePaths:
    def test_parse_and_str(self):
        path = parse_path("p/@rank")
        assert path.attribute_name == "rank"
        assert str(path) == "p/@rank"

    def test_wildcard(self):
        assert parse_path("@*").attribute_name == "*"

    def test_attribute_values(self):
        values = parse_path("player/@rank").attribute_values(DOC.root)
        assert values == ["1", "2"]

    def test_missing_attribute_skipped(self):
        values = parse_path("player/@seed").attribute_values(DOC.root)
        assert values == ["top"]

    def test_wildcard_values(self):
        player = DOC.root.child_elements()[0]
        values = parse_path("@*").attribute_values(player)
        assert sorted(values) == ["1", "top"]

    def test_values_on_non_attribute_path_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_path("player").attribute_values(DOC.root)

    @pytest.mark.parametrize("bad", ["a/@x/b", "//@x", "a/@1bad", "@"])
    def test_rejects(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_path(bad)


class TestAttributeWhere:
    def test_equality(self):
        q = parse_select(
            "Select p/name from p in ATPList//player where p/@rank = 2;"
        )
        assert evaluate_select(q, DOC).texts() == ["Nadal"]

    def test_numeric_comparison(self):
        q = parse_select(
            "Select p/name from p in ATPList//player where p/@rank < 2;"
        )
        assert evaluate_select(q, DOC).texts() == ["Federer"]

    def test_string_attribute(self):
        q = parse_select(
            "Select p/name from p in ATPList//player where p/@seed = top;"
        )
        assert evaluate_select(q, DOC).texts() == ["Federer"]

    def test_missing_attribute_never_matches(self):
        q = parse_select(
            "Select p/name from p in ATPList//player where p/@ghost = 1;"
        )
        assert evaluate_select(q, DOC).is_empty()

    def test_combined_with_element_condition(self):
        q = parse_select(
            "Select p from p in ATPList//player "
            "where p/@rank = 1 and p/name = Federer;"
        )
        assert len(evaluate_select(q, DOC)) == 1

    def test_select_path_attribute_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_select("Select p/@rank from p in ATPList//player;")

    def test_roundtrip(self):
        text = "Select p/name from p in ATPList//player where p/@rank = 2;"
        q = parse_select(text)
        assert str(parse_select(str(q))) == str(q)


class TestAttributeTargetedUpdates:
    def test_delete_via_attribute_filter_compensates(self):
        doc = parse_document(
            '<ATPList><player rank="1"><name>F</name></player>'
            '<player rank="2"><name>N</name></player></ATPList>',
            name="ATPList",
        )
        pre = canonical(doc)
        action = parse_action(
            '<action type="delete"><location>Select p/name from p in '
            "ATPList//player where p/@rank = 1;</location></action>"
        )
        result = apply_action(doc, action)
        assert len(result.records) == 1
        for comp in compensating_actions_for(result, "ATPList"):
            apply_action(doc, comp, tolerate_missing_targets=True)
        assert canonical(doc) == pre
