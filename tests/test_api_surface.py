"""Snapshot of the public repro.api surface.

The facade is the documented entry point; this test pins its names so
an accidental rename or removal fails loudly instead of silently
breaking downstream callers."""

import repro
import repro.api as api
from repro.outcome import Outcome, OutcomeStatus


def _public_methods(cls) -> set:
    return {
        name
        for name, value in vars(cls).items()
        if not name.startswith("_") and callable(getattr(cls, name, None))
    }


def test_api_all_snapshot():
    assert api.__all__ == [
        "Cluster", "Session", "Transaction", "Outcome", "OutcomeStatus",
        "RunConfig", "SweepConfig",
        "chaos", "chaos_sweep",
        "add_run_arguments", "add_sweep_arguments", "add_output_arguments",
    ]


def test_cluster_surface_snapshot():
    expected = {
        # building
        "add_peer", "host_document", "host_service",
        # access
        "peer", "session",
        # driving
        "run_until", "run_all", "scheduler", "run_topology",
        # canonical deployments
        "atplist", "fig1", "fig2", "from_topology",
        # legacy bridge
        "wrap", "as_scenario",
    }
    assert _public_methods(api.Cluster) >= expected
    for prop in ("metrics", "spans", "clock", "events"):
        assert isinstance(vars(api.Cluster)[prop], property)


def test_session_surface_snapshot():
    methods = _public_methods(api.Session)
    assert {"transaction", "begin"} <= methods
    assert api.Session.begin is api.Session.transaction


def test_transaction_surface_snapshot():
    methods = _public_methods(api.Transaction)
    assert {"submit", "invoke", "commit", "abort"} <= methods
    # Context-manager protocol is part of the contract.
    assert hasattr(api.Transaction, "__enter__")
    assert hasattr(api.Transaction, "__exit__")


def test_unified_outcome_exported():
    assert api.Outcome is Outcome
    assert api.OutcomeStatus is OutcomeStatus
    # The legacy names stay importable as aliases of the same class.
    from repro.outcome import InvocationOutcome, InvokeResult

    assert InvocationOutcome is Outcome
    assert InvokeResult is Outcome


def test_package_exports_facade():
    assert repro.Cluster is api.Cluster
    assert repro.Session is api.Session
    assert repro.Outcome is Outcome
    for name in ("Cluster", "Session", "Outcome", "OutcomeStatus"):
        assert name in repro.__all__
