"""Edge-case tests for AXMLPeer and the error hierarchy."""

import pytest

import repro.errors as errors
from repro.axml.document import AXMLDocument
from repro.errors import (
    PeerDisconnected,
    ReproError,
    ServiceFault,
    TransactionError,
)
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.services.descriptor import ParamSpec, ServiceDescriptor
from repro.services.service import FunctionService, UpdateService
from repro.txn.recovery import FaultPolicy
from repro.txn.transaction import TransactionState


def make_pair():
    network = SimNetwork()
    a = AXMLPeer("A", network)
    b = AXMLPeer("B", network)
    b.host_document(AXMLDocument.from_xml("<D><x/></D>", name="D"))
    return network, a, b


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj in (Exception,):
                    continue
                assert issubclass(obj, ReproError), name

    def test_service_fault_carries_name(self):
        fault = ServiceFault("Boom", "details")
        assert fault.fault_name == "Boom"
        assert "details" in str(fault)

    def test_peer_disconnected_carries_peer(self):
        assert PeerDisconnected("AP3").peer_id == "AP3"

    def test_parse_error_position(self):
        err = errors.XmlParseError("bad", line=3, column=7)
        assert "line 3" in str(err)


class TestUnknownService:
    def test_surfaces_as_named_fault(self):
        network, a, b = make_pair()
        txn = a.begin_transaction()
        with pytest.raises(ServiceFault) as exc:
            a.invoke(txn.txn_id, "B", "ghost", {})
        assert exc.value.fault_name == "ServiceNotFound"
        # recovery ran: the caller's context is finished, not dangling
        assert a.manager.contexts[txn.txn_id].is_finished

    def test_handler_can_absorb_it(self):
        network, a, b = make_pair()
        a.set_fault_policy(
            "ghost", [FaultPolicy(fault_names={"ServiceNotFound"}, absorb=True)]
        )
        txn = a.begin_transaction()
        assert a.invoke(txn.txn_id, "B", "ghost", {}) == []
        a.commit(txn.txn_id)

    def test_missing_params_fault(self):
        network, a, b = make_pair()
        b.host_service(
            FunctionService(
                ServiceDescriptor("needs", kind="function", params=(ParamSpec("p"),)),
                body=lambda params: [],
            )
        )
        txn = a.begin_transaction()
        with pytest.raises(ServiceFault) as exc:
            a.invoke(txn.txn_id, "B", "needs", {})
        assert exc.value.fault_name == "ServiceError"

    def test_update_error_fault(self):
        network, a, b = make_pair()
        b.host_service(
            UpdateService(
                ServiceDescriptor("ins", kind="update", target_document="D"),
                '<action type="insert"><data><y/></data>'
                "<location>Select d from d in D//nonexistent;</location></action>",
            )
        )
        txn = a.begin_transaction()
        with pytest.raises(ServiceFault) as exc:
            a.invoke(txn.txn_id, "B", "ins", {})
        assert exc.value.fault_name == "UpdateError"


class TestPeerGuards:
    def test_commit_from_non_origin_rejected(self):
        network, a, b = make_pair()
        b.host_service(
            FunctionService(ServiceDescriptor("s", kind="function"), body=lambda p: [])
        )
        txn = a.begin_transaction()
        a.invoke(txn.txn_id, "B", "s", {})
        with pytest.raises(TransactionError):
            b.commit(txn.txn_id)

    def test_dead_peer_cannot_begin(self):
        network, a, b = make_pair()
        network.disconnect("A")
        # begin itself is local, but any submit/invoke/commit must fail
        txn = a.begin_transaction()
        with pytest.raises(PeerDisconnected):
            a.invoke(txn.txn_id, "B", "s", {})
        with pytest.raises(PeerDisconnected):
            a.commit(txn.txn_id)
        with pytest.raises(PeerDisconnected):
            a.abort(txn.txn_id)

    def test_missing_document(self):
        network, a, b = make_pair()
        with pytest.raises(ReproError):
            a.get_axml_document("nope")
        assert not a.hosts_document("nope")
        assert b.hosts_document("D")

    def test_invoke_on_finished_context_rejected(self):
        network, a, b = make_pair()
        b.host_service(
            FunctionService(ServiceDescriptor("s", kind="function"), body=lambda p: [])
        )
        txn = a.begin_transaction()
        a.commit(txn.txn_id)
        with pytest.raises(TransactionError):
            a.invoke(txn.txn_id, "B", "s", {})

    def test_abort_message_for_unknown_txn_harmless(self):
        from repro.p2p.messages import AbortMessage

        network, a, b = make_pair()
        b.on_notify(AbortMessage("T-ghost", "A"))

    def test_repr(self):
        network, a, b = make_pair()
        network.disconnect("B")
        assert "disconnected" in repr(b)
        assert "docs=1" in repr(b)


class TestParentWatch:
    def test_orphan_self_aborts(self):
        network = SimNetwork()
        a = AXMLPeer("A", network, parent_watch_interval=0.05)
        b = AXMLPeer("B", network, parent_watch_interval=0.05)
        b.host_document(AXMLDocument.from_xml("<D><x/></D>", name="D"))
        b.host_service(
            UpdateService(
                ServiceDescriptor("ins", kind="update", target_document="D"),
                '<action type="insert"><data><y/></data>'
                "<location>Select d from d in D;</location></action>",
            )
        )
        txn = a.begin_transaction()
        a.invoke(txn.txn_id, "B", "ins", {})
        assert "<y/>" in b.get_axml_document("D").to_xml()
        network.disconnect("A")
        network.events.run_until(network.clock.now + 1.0)
        # B detected the orphaned state and compensated itself.
        assert b.manager.contexts[txn.txn_id].state is TransactionState.ABORTED
        assert "<y/>" not in b.get_axml_document("D").to_xml()
        assert network.metrics.get("orphan_self_aborts") == 1

    def test_watch_stops_after_commit(self):
        network = SimNetwork()
        a = AXMLPeer("A", network, parent_watch_interval=0.05)
        b = AXMLPeer("B", network, parent_watch_interval=0.05)
        b.host_service(
            FunctionService(ServiceDescriptor("s", kind="function"), body=lambda p: [])
        )
        txn = a.begin_transaction()
        a.invoke(txn.txn_id, "B", "s", {})
        a.commit(txn.txn_id)
        pings_before = network.metrics.get("pings")
        network.events.run_until(network.clock.now + 2.0)
        assert network.metrics.get("pings") <= pings_before + 1
