"""The on-disk segmented WAL (repro.txn.durable_wal) and ScratchSpace."""

import os

import pytest

from repro.sim.kernel import ScratchSpace
from repro.txn.durable_wal import DurableWal
from repro.txn.wal import LogEntry, OperationLog, entry_from_xml, entry_to_xml


def make_entry(seq, txn_id="T1", action="<a/>"):
    return LogEntry(
        seq=seq, txn_id=txn_id, kind="update", document_name="D",
        action_xml=action, records=[], timestamp=float(seq) / 8,
    )


def segment_files(directory):
    return sorted(n for n in os.listdir(directory) if n.endswith(".seg"))


class TestEntryCodec:
    def test_single_entry_roundtrip(self):
        entry = make_entry(7, txn_id="T42", action="<x y='1'/>")
        copy = entry_from_xml(entry_to_xml(entry))
        assert copy == entry


class TestAppendAndLoad:
    def test_append_load_roundtrip(self, tmp_path):
        wal = DurableWal(str(tmp_path), peer_id="P1")
        log = OperationLog("P1")
        log.sink = wal
        log.append("T1", "update", "D", "<a/>")
        log.append("T2", "update", "D", "<b/>")
        scan = wal.load()
        assert not scan.torn
        assert [(e.seq, e.txn_id) for e in scan.entries] == [(1, "T1"), (2, "T2")]
        wal.close()

    def test_tombstone_filters_truncated_txn(self, tmp_path):
        wal = DurableWal(str(tmp_path), peer_id="P1")
        log = OperationLog("P1")
        log.sink = wal
        log.append("T1", "update", "D", "<a/>")
        log.append("T2", "update", "D", "<b/>")
        log.truncate("T1")
        scan = wal.load()
        assert [e.txn_id for e in scan.entries] == ["T2"]
        wal.close()

    def test_tombstone_only_kills_earlier_entries(self, tmp_path):
        # A transaction can abort (tombstone) and then be retried on the
        # same peer: the retry appends fresh entries for the *same* txn
        # id after the tombstone.  Those entries are live — a tombstone
        # suppresses only what precedes it in the stream, and a restart
        # must recover the retry's share.
        wal = DurableWal(str(tmp_path), peer_id="P1")
        log = OperationLog("P1")
        log.sink = wal
        log.append("T1", "update", "D", "<a/>")
        log.truncate("T1")
        retried = log.append("T1", "update", "D", "<b/>")
        scan = wal.load()
        assert [(e.seq, e.txn_id, e.action_xml) for e in scan.entries] == [
            (retried.seq, "T1", "<b/>")
        ]
        wal.close()
        reopened = DurableWal(str(tmp_path), peer_id="P1")
        assert [e.action_xml for e in reopened.load().entries] == ["<b/>"]
        reopened.close()

    def test_restart_adopts_directory(self, tmp_path):
        wal = DurableWal(str(tmp_path), peer_id="P1")
        log = OperationLog("P1")
        log.sink = wal
        log.append("T1", "update", "D", "<a/>")
        wal.close()
        reopened = DurableWal(str(tmp_path), peer_id="P1")
        restored = OperationLog.from_entries("P1", reopened.load().entries)
        assert len(restored) == 1
        restored.sink = reopened
        entry = restored.append("T2", "update", "D", "<b/>")
        assert entry.seq == 2
        assert len(reopened.load().entries) == 2
        reopened.close()

    def test_empty_directory_loads_empty(self, tmp_path):
        wal = DurableWal(str(tmp_path), peer_id="P1")
        scan = wal.load()
        assert scan.entries == [] and not scan.torn
        wal.close()

    def test_rejects_tiny_segment_cap(self, tmp_path):
        with pytest.raises(ValueError):
            DurableWal(str(tmp_path), segment_max_frames=1)


class TestTornTail:
    def _wal_with_entries(self, tmp_path, count=3):
        wal = DurableWal(str(tmp_path), peer_id="P1")
        log = OperationLog("P1")
        log.sink = wal
        for i in range(count):
            log.append("T1", "update", "D", f"<a i='{i}'/>")
        return wal

    def test_truncated_frame_detected_and_discarded(self, tmp_path):
        wal = self._wal_with_entries(tmp_path)
        wal.close()
        seg = tmp_path / segment_files(tmp_path)[-1]
        data = seg.read_bytes()
        seg.write_bytes(data[:-5])  # chop mid-frame
        wal2 = DurableWal(str(tmp_path), peer_id="P1")
        # The torn frame is gone; the durable prefix survives.
        assert [e.seq for e in wal2.load().entries] == [1, 2]
        wal2.close()

    def test_garbage_frame_header_stops_scan(self, tmp_path):
        wal = self._wal_with_entries(tmp_path, count=2)
        with open(os.path.join(str(tmp_path), segment_files(tmp_path)[-1]),
                  "ab") as fh:
            fh.write(b"XX not a frame\n")
        scan = wal.load()
        assert scan.torn
        assert [e.seq for e in scan.entries] == [1, 2]
        wal.close()

    def test_seq_regression_is_a_torn_tail(self, tmp_path):
        wal = self._wal_with_entries(tmp_path, count=2)
        # Hand-forge a stale frame whose seq goes backwards.
        wal._write_frame("E", entry_to_xml(make_entry(1, txn_id="T9")))
        scan = wal.load()
        assert scan.torn
        assert [(e.seq, e.txn_id) for e in scan.entries] == [
            (1, "T1"), (2, "T1"),
        ]
        wal.close()

    def test_reload_truncates_and_resumes_cleanly(self, tmp_path):
        wal = self._wal_with_entries(tmp_path)
        wal.close()
        seg = tmp_path / segment_files(tmp_path)[-1]
        seg.write_bytes(seg.read_bytes()[:-5])
        wal2 = DurableWal(str(tmp_path), peer_id="P1")
        log = OperationLog.from_entries("P1", wal2.load().entries)
        log.sink = wal2
        log.append("T2", "update", "D", "<b/>")
        scan = wal2.load()
        assert not scan.torn
        assert [e.seq for e in scan.entries] == [1, 2, 3]
        wal2.close()


class TestRolloverCompaction:
    def test_rollover_drops_tombstoned_frames(self, tmp_path):
        wal = DurableWal(str(tmp_path), peer_id="P1", segment_max_frames=4)
        log = OperationLog("P1")
        log.sink = wal
        log.append("T1", "update", "D", "<a/>")
        log.append("T1", "update", "D", "<b/>")
        log.append("T2", "update", "D", "<c/>")
        log.truncate("T1")  # 4th frame -> rollover
        names = segment_files(tmp_path)
        assert names == ["wal-000002.seg"]
        scan = wal.load()
        assert [e.txn_id for e in scan.entries] == ["T2"]
        wal.close()

    def test_restart_after_rollover(self, tmp_path):
        wal = DurableWal(str(tmp_path), peer_id="P1", segment_max_frames=4)
        log = OperationLog("P1")
        log.sink = wal
        for i in range(6):
            log.append(f"T{i}", "update", "D", "<a/>")
        wal.close()
        wal2 = DurableWal(str(tmp_path), peer_id="P1", segment_max_frames=4)
        assert len(wal2.load().entries) == 6
        wal2.close()

    def test_metrics_counters(self, tmp_path):
        from repro.sim.metrics import MetricsCollector

        metrics = MetricsCollector()
        wal = DurableWal(
            str(tmp_path), peer_id="P1", metrics=metrics, segment_max_frames=4
        )
        log = OperationLog("P1")
        log.sink = wal
        for _ in range(3):
            log.append("T1", "update", "D", "<a/>")
        log.truncate("T1")
        assert metrics.get("wal_appends") == 3
        assert metrics.get("wal_tombstones") == 1
        assert metrics.get("wal_compactions") == 1
        assert metrics.get("wal_bytes") > 0
        wal.close()

    def test_wal_bytes_matches_logical_accounting(self, tmp_path):
        from repro.sim.metrics import MetricsCollector
        from repro.txn.wal import entry_bytes

        metrics = MetricsCollector()
        wal = DurableWal(str(tmp_path), peer_id="P1", metrics=metrics)
        log = OperationLog("P1")
        log.sink = wal
        log.append("T1", "update", "D", "<a/>")
        log.append("T1", "update", "D", "<bb/>")
        assert metrics.get("wal_bytes") == sum(entry_bytes(e) for e in log)
        wal.close()


class TestScratchSpace:
    def test_deterministic_relative_layout(self):
        with ScratchSpace() as a, ScratchSpace() as b:
            pa = a.path("AP1", "wal")
            pb = b.path("AP1", "wal")
            assert os.path.relpath(pa, a.root) == os.path.relpath(pb, b.root)
            assert os.path.isdir(pa) and os.path.isdir(pb)

    def test_cleanup_removes_root(self):
        scratch = ScratchSpace()
        root = scratch.root
        scratch.path("x")
        scratch.cleanup()
        assert not os.path.exists(root)
