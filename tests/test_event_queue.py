"""EventQueue cancellation compaction (repro.sim.kernel).

Chaos runs cancel a timeout for every transaction that completes; the
cancelled entries must not accumulate in the heap for the rest of the
run, and compaction must never change firing order.
"""

from repro.obs.prof import PROF
from repro.sim.kernel import _COMPACT_FLOOR, Clock, EventQueue


def make_queue():
    clock = Clock()
    return clock, EventQueue(clock)


class TestCompaction:
    def test_mass_cancellation_shrinks_heap(self):
        _, queue = make_queue()
        handles = [queue.schedule(i * 0.1, lambda: None) for i in range(100)]
        for handle in handles[:80]:
            handle.cancel()
        # Tombstones can never exceed live entries for long.
        assert len(queue._heap) <= 2 * queue.pending() + _COMPACT_FLOOR
        assert queue.pending() == 20

    def test_small_queues_skip_compaction(self):
        _, queue = make_queue()
        before = PROF.get("eventq_compactions")
        handles = [queue.schedule(i * 0.1, lambda: None) for i in range(4)]
        for handle in handles:
            handle.cancel()
        assert PROF.get("eventq_compactions") == before
        assert len(queue._heap) == 4  # below the floor: left lazy

    def test_cancel_is_idempotent(self):
        _, queue = make_queue()
        handle = queue.schedule(1.0, lambda: None)
        handle.cancel()
        tombstones = queue._cancelled
        handle.cancel()
        assert queue._cancelled == tombstones
        assert handle.cancelled

    def test_firing_order_survives_compaction(self):
        _, queue = make_queue()
        fired = []
        handles = [
            queue.schedule(i * 0.01, (lambda i=i: fired.append(i)))
            for i in range(200)
        ]
        for i, handle in enumerate(handles):
            if i % 3 != 0:
                handle.cancel()
        queue.run_all()
        assert fired == [i for i in range(200) if i % 3 == 0]

    def test_pop_of_tombstone_decrements_counter(self):
        _, queue = make_queue()
        first = queue.schedule(0.0, lambda: None)
        queue.schedule(1.0, lambda: None)
        first.cancel()
        assert queue._cancelled == 1
        queue.step()  # pops the tombstone, then fires the live event
        assert queue._cancelled == 0

    def test_next_time_skips_tombstones(self):
        _, queue = make_queue()
        early = queue.schedule(0.5, lambda: None)
        queue.schedule(2.0, lambda: None)
        early.cancel()
        assert queue.next_time() == 2.0

    def test_interleaved_schedule_cancel_fire(self):
        _, queue = make_queue()
        fired = []
        for round_no in range(20):
            handles = [
                queue.schedule(
                    round_no + i * 0.01,
                    (lambda r=round_no, i=i: fired.append((r, i))),
                )
                for i in range(10)
            ]
            for handle in handles[1:]:
                handle.cancel()
        queue.run_all()
        assert fired == [(r, 0) for r in range(20)]
        assert queue.pending() == 0
