"""Unit tests for the simulated network, kernel and failure injection."""

import pytest

from repro.errors import PeerDisconnected, UnknownPeer
from repro.p2p.failure import FailureInjector, PingMonitor
from repro.p2p.messages import InvokeRequest, InvokeResult
from repro.p2p.network import SimNetwork
from repro.sim.kernel import Clock, EventQueue


class StubPeer:
    """Minimal NetworkPeer for network-level tests."""

    def __init__(self, peer_id, network, handler=None):
        self.peer_id = peer_id
        self.disconnected = False
        self.notifications = []
        self.return_failures = []
        self._handler = handler
        network.register(self)

    def handle_invoke(self, request):
        if self._handler:
            return self._handler(request)
        return InvokeResult(fragments=[f"<from>{self.peer_id}</from>"])

    def on_notify(self, message):
        self.notifications.append(message)

    def on_return_failure(self, request, result):
        self.return_failures.append((request, result))


class TestClock:
    def test_advance(self):
        clock = Clock()
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            Clock().advance(-1)

    def test_advance_to_only_forward(self):
        clock = Clock(10)
        clock.advance_to(5)
        assert clock.now == 10
        clock.advance_to(12)
        assert clock.now == 12


class TestEventQueue:
    def test_fires_in_time_order(self):
        clock = Clock()
        queue = EventQueue(clock)
        fired = []
        queue.schedule(2.0, lambda: fired.append("b"))
        queue.schedule(1.0, lambda: fired.append("a"))
        queue.run_until(5.0)
        assert fired == ["a", "b"]
        assert clock.now == 5.0

    def test_respects_deadline(self):
        queue = EventQueue(Clock())
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.schedule(10.0, lambda: fired.append(2))
        queue.run_until(5.0)
        assert fired == [1]
        assert queue.pending() == 1

    def test_cancel(self):
        queue = EventQueue(Clock())
        fired = []
        handle = queue.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        queue.run_all()
        assert fired == []

    def test_tie_break_by_insertion(self):
        queue = EventQueue(Clock())
        fired = []
        queue.schedule(1.0, lambda: fired.append("first"))
        queue.schedule(1.0, lambda: fired.append("second"))
        queue.run_all()
        assert fired == ["first", "second"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue(Clock()).schedule(-1, lambda: None)

    def test_event_storm_guard(self):
        clock = Clock()
        queue = EventQueue(clock)

        def respawn():
            queue.schedule(0.0, respawn)

        queue.schedule(0.0, respawn)
        with pytest.raises(RuntimeError):
            queue.run_until(1.0, max_events=50)


class TestRpc:
    def test_roundtrip_advances_clock(self):
        network = SimNetwork(hop_latency=0.01)
        StubPeer("A", network)
        StubPeer("B", network)
        result = network.rpc("A", "B", InvokeRequest("T1", "A", "A", "m"))
        assert result.fragments == ["<from>B</from>"]
        assert network.clock.now == pytest.approx(0.02)
        assert network.metrics.get("messages.invoke") == 1
        assert network.metrics.get("messages.result") == 1

    def test_unknown_target(self):
        network = SimNetwork()
        StubPeer("A", network)
        with pytest.raises(UnknownPeer):
            network.rpc("A", "ghost", InvokeRequest("T1", "A", "A", "m"))

    def test_dead_target_raises_and_records_detection(self):
        network = SimNetwork()
        StubPeer("A", network)
        StubPeer("B", network)
        network.disconnect("B")
        with pytest.raises(PeerDisconnected) as exc:
            network.rpc("A", "B", InvokeRequest("T1", "A", "A", "m"))
        assert exc.value.peer_id == "B"
        assert network.metrics.detections[0].detected_by == "A"

    def test_target_dies_mid_execution(self):
        network = SimNetwork()
        StubPeer("A", network)

        def die(request):
            network.disconnect("B")
            raise PeerDisconnected("B")

        StubPeer("B", network, handler=die)
        with pytest.raises(PeerDisconnected) as exc:
            network.rpc("A", "B", InvokeRequest("T1", "A", "A", "m"))
        assert exc.value.peer_id == "B"

    def test_source_dies_before_return(self):
        network = SimNetwork()
        a = StubPeer("A", network)
        b = StubPeer("B", network, handler=lambda r: (network.disconnect("A"), InvokeResult(["<r/>"]))[1])
        with pytest.raises(PeerDisconnected) as exc:
            network.rpc("A", "B", InvokeRequest("T1", "A", "A", "m"))
        assert exc.value.peer_id == "A"
        assert len(b.return_failures) == 1  # §3.3(b) hook ran on the child

    def test_deeper_death_normalized_to_target(self):
        network = SimNetwork()
        StubPeer("A", network)

        def nested_failure(request):
            network.disconnect("B")
            raise PeerDisconnected("C")  # inner peer's death unwinding

        StubPeer("B", network, handler=nested_failure)
        with pytest.raises(PeerDisconnected) as exc:
            network.rpc("A", "B", InvokeRequest("T1", "A", "A", "m"))
        assert exc.value.peer_id == "B"


class TestNotifyAndPing:
    def test_notify_delivered(self):
        network = SimNetwork()
        StubPeer("A", network)
        b = StubPeer("B", network)
        assert network.notify("A", "B", "hello")
        assert b.notifications == ["hello"]

    def test_notify_to_dead_dropped(self):
        network = SimNetwork()
        StubPeer("A", network)
        StubPeer("B", network)
        network.disconnect("B")
        assert not network.notify("A", "B", "hello")
        assert network.metrics.get("messages_dropped") == 1

    def test_dead_sender_sends_nothing(self):
        network = SimNetwork()
        StubPeer("A", network)
        b = StubPeer("B", network)
        network.disconnect("A")
        assert not network.notify("A", "B", "hello")
        assert b.notifications == []

    def test_ping(self):
        network = SimNetwork()
        StubPeer("A", network)
        StubPeer("B", network)
        assert network.ping("A", "B")
        network.disconnect("B")
        assert not network.ping("A", "B")
        assert network.metrics.get("pings") == 2

    def test_reconnect(self):
        network = SimNetwork()
        StubPeer("A", network)
        network.disconnect("A")
        assert not network.is_alive("A")
        network.reconnect("A")
        assert network.is_alive("A")


class TestFailureInjector:
    def test_fault_charges(self):
        network = SimNetwork()
        injector = FailureInjector(network)
        injector.fault_service("P", "m", "F", times=2)
        assert injector.check_fault("P", "m") == "F"
        assert injector.check_fault("P", "m") == "F"
        assert injector.check_fault("P", "m") is None

    def test_fault_forever(self):
        network = SimNetwork()
        injector = FailureInjector(network)
        injector.fault_service("P", "m", "F", times=-1)
        for _ in range(5):
            assert injector.check_fault("P", "m") == "F"

    def test_fault_points_independent(self):
        injector = FailureInjector(SimNetwork())
        injector.fault_service("P", "m", "F", point="after_execute")
        assert injector.check_fault("P", "m", "before_execute") is None
        assert injector.check_fault("P", "m", "after_execute") == "F"

    def test_bad_fault_point(self):
        with pytest.raises(ValueError):
            FailureInjector(SimNetwork()).fault_service("P", "m", "F", point="later")

    def test_disconnect_during(self):
        network = SimNetwork()
        StubPeer("P", network)
        injector = FailureInjector(network)
        injector.disconnect_during("P", "m", point="before_return")
        assert injector.check_disconnect("P", "m", "before_return")
        assert not network.is_alive("P")
        # one-shot
        network.reconnect("P")
        assert not injector.check_disconnect("P", "m", "before_return")

    def test_disconnect_peer_during_cross(self):
        network = SimNetwork()
        StubPeer("P", network)
        StubPeer("Q", network)
        injector = FailureInjector(network)
        injector.disconnect_peer_during("Q", "P", "m", point="after_local_work")
        assert not injector.check_disconnect("P", "m", "after_local_work")
        assert not network.is_alive("Q")
        assert network.is_alive("P")

    def test_disconnect_at_time(self):
        network = SimNetwork()
        StubPeer("P", network)
        injector = FailureInjector(network)
        injector.disconnect_at("P", 5.0)
        network.events.run_until(4.0)
        assert network.is_alive("P")
        network.events.run_until(6.0)
        assert not network.is_alive("P")

    def test_bad_point_rejected(self):
        with pytest.raises(ValueError):
            FailureInjector(SimNetwork()).disconnect_during("P", "m", point="sideways")


class TestPingMonitor:
    def test_detects_death(self):
        network = SimNetwork()
        StubPeer("W", network)
        StubPeer("T", network)
        deaths = []
        monitor = PingMonitor(network, "W", interval=0.1)
        monitor.watch("T", deaths.append)
        network.events.run_until(0.35)
        assert deaths == []
        network.disconnect("T")
        network.events.run_until(1.0)
        assert deaths == ["T"]
        # detection latency was recorded
        assert network.metrics.detection_latency("T") < 0.2

    def test_dead_watcher_stops(self):
        network = SimNetwork()
        StubPeer("W", network)
        StubPeer("T", network)
        deaths = []
        monitor = PingMonitor(network, "W", interval=0.1)
        monitor.watch("T", deaths.append)
        network.disconnect("W")
        network.disconnect("T")
        network.events.run_until(1.0)
        assert deaths == []

    def test_unwatch(self):
        network = SimNetwork()
        StubPeer("W", network)
        StubPeer("T", network)
        deaths = []
        monitor = PingMonitor(network, "W", interval=0.1)
        monitor.watch("T", deaths.append)
        monitor.unwatch("T")
        network.disconnect("T")
        network.events.run_until(1.0)
        assert deaths == []
