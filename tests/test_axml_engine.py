"""Unit tests for the AXML engine: service calls, documents, faults,
materialization (repro.axml)."""

import pytest

from repro.axml.document import AXMLDocument
from repro.axml.faults import parse_fault_handlers, select_handler, HookRegistry
from repro.axml.materialize import (
    InvocationOutcome,
    MaterializationEngine,
)
from repro.axml.service_call import ServiceCall, install_service_call
from repro.errors import MaterializationError, ServiceCallError
from repro.query.parser import parse_select
from repro.xmlstore.parser import parse_document

SC_DOC = """
<Doc>
  <item>
    <axml:sc mode="replace" serviceNameSpace="ns" serviceURL="axml://P2"
             methodName="getStock" frequency="5">
      <axml:params>
        <axml:param name="id"><axml:value>42</axml:value></axml:param>
      </axml:params>
      <stock>7</stock>
      <axml:catch faultName="A"><axml:retry times="3" wait="0.5"/></axml:catch>
      <axml:catchAll/>
    </axml:sc>
  </item>
</Doc>
"""


class TestServiceCall:
    def _call(self):
        doc = parse_document(SC_DOC, name="Doc")
        sc = next(e for e in doc.iter_elements() if e.name.local == "sc")
        return ServiceCall(sc)

    def test_attributes(self):
        call = self._call()
        assert call.mode == "replace"
        assert call.method_name == "getStock"
        assert call.service_url == "axml://P2"
        assert call.peer_hint == "P2"
        assert call.frequency == 5.0
        assert call.service_namespace == "ns"

    def test_params(self):
        params = self._call().params()
        assert len(params) == 1
        assert params[0].name == "id"
        assert params[0].value == "42"
        assert not params[0].is_nested

    def test_param_values(self):
        assert self._call().param_values() == {"id": "42"}

    def test_result_nodes_exclude_machinery(self):
        nodes = self._call().result_nodes()
        assert len(nodes) == 1
        assert nodes[0].name.local == "stock"

    def test_result_name_inferred(self):
        assert self._call().result_name == "stock"

    def test_result_name_declared_wins(self):
        doc = parse_document(
            "<D><axml:sc methodName='m' resultName='declared'><old/></axml:sc></D>"
        )
        sc = ServiceCall(doc.root.child_elements()[0])
        assert sc.result_name == "declared"

    def test_not_an_sc_rejected(self):
        doc = parse_document("<D><x/></D>")
        with pytest.raises(ServiceCallError):
            ServiceCall(doc.root.child_elements()[0])

    def test_missing_method_name(self):
        doc = parse_document("<D><axml:sc mode='merge'/></D>")
        call = ServiceCall(doc.root.child_elements()[0])
        with pytest.raises(ServiceCallError):
            call.method_name

    def test_bad_mode(self):
        doc = parse_document("<D><axml:sc mode='sideways' methodName='m'/></D>")
        with pytest.raises(ServiceCallError):
            ServiceCall(doc.root.child_elements()[0]).mode

    def test_install_service_call(self):
        doc = parse_document("<D><item/></D>")
        item = doc.root.child_elements()[0]
        call = install_service_call(
            item,
            "getX",
            service_url="axml://P9",
            mode="merge",
            params={"a": "1"},
            initial_result_xml=("<x>0</x>",),
            result_name="x",
            frequency=2.0,
        )
        assert call.mode == "merge"
        assert call.param_values() == {"a": "1"}
        assert call.result_name == "x"
        assert call.frequency == 2.0

    def test_nested_param_detection(self):
        doc = parse_document(
            "<D><axml:sc methodName='outer'><axml:params>"
            "<axml:param name='p'><axml:sc methodName='inner'><v>3</v></axml:sc>"
            "</axml:param></axml:params></axml:sc></D>"
        )
        call = ServiceCall(doc.root.child_elements()[0])
        params = call.params()
        assert params[0].is_nested
        assert params[0].nested_call.method_name == "inner"
        with pytest.raises(ServiceCallError):
            call.param_values()


class TestFaultHandlers:
    def _handlers(self):
        doc = parse_document(SC_DOC, name="Doc")
        sc = next(e for e in doc.iter_elements() if e.name.local == "sc")
        return parse_fault_handlers(sc)

    def test_parse(self):
        handlers = self._handlers()
        assert len(handlers) == 2
        assert handlers[0].fault_name == "A"
        assert handlers[0].retry.times == 3
        assert handlers[0].retry.wait == 0.5
        assert handlers[1].is_catch_all

    def test_select_specific_first(self):
        handlers = self._handlers()
        assert select_handler(handlers, "A").fault_name == "A"

    def test_select_catchall_fallback(self):
        handlers = self._handlers()
        assert select_handler(handlers, "Z").is_catch_all

    def test_select_none(self):
        doc = parse_document("<D><axml:sc methodName='m'/></D>")
        handlers = parse_fault_handlers(doc.root.child_elements()[0])
        assert select_handler(handlers, "A") is None

    def test_retry_with_replica(self):
        doc = parse_document(
            "<D><axml:sc methodName='m'><axml:catch faultName='F'>"
            "<axml:retry times='1' wait='0'>"
            "<axml:sc methodName='m' serviceURL='axml://replica'/>"
            "</axml:retry></axml:catch></axml:sc></D>"
        )
        handlers = parse_fault_handlers(doc.root.child_elements()[0])
        assert handlers[0].retry.uses_replica

    def test_catch_without_name_rejected(self):
        doc = parse_document("<D><axml:sc methodName='m'><axml:catch/></axml:sc></D>")
        with pytest.raises(ServiceCallError):
            parse_fault_handlers(doc.root.child_elements()[0])

    def test_hook_registry(self):
        registry = HookRegistry()
        calls = []
        registry.register("fix", lambda fault, el: calls.append(fault) or True)
        doc = parse_document("<D/>")
        assert registry.run("fix", "A", doc.root)
        assert calls == ["A"]
        assert not registry.run("missing", "A", doc.root)


class TestAXMLDocument:
    def test_discovers_calls(self):
        doc = AXMLDocument.from_xml(SC_DOC, name="Doc")
        assert [c.method_name for c in doc.service_calls()] == ["getStock"]

    def test_nested_param_call_not_listed(self):
        doc = AXMLDocument.from_xml(
            "<D><axml:sc methodName='outer'><axml:params>"
            "<axml:param name='p'><axml:sc methodName='inner'/></axml:param>"
            "</axml:params></axml:sc></D>"
        )
        assert [c.method_name for c in doc.service_calls()] == ["outer"]

    def test_calls_for_query_matches_result_name(self):
        doc = AXMLDocument.from_xml(SC_DOC, name="Doc")
        q = parse_select("Select i/stock from i in Doc//item;")
        assert [c.method_name for c in doc.calls_for_query(q)] == ["getStock"]

    def test_calls_for_query_no_match(self):
        doc = AXMLDocument.from_xml(SC_DOC, name="Doc")
        q = parse_select("Select i/price from i in Doc//item;")
        assert doc.calls_for_query(q) == []

    def test_continuous_calls(self):
        doc = AXMLDocument.from_xml(SC_DOC, name="Doc")
        assert len(doc.continuous_calls()) == 1

    def test_name_defaults_to_root(self):
        doc = AXMLDocument.from_xml("<Shop/>")
        assert doc.name == "Shop"


class TestMaterialization:
    def _doc(self):
        return AXMLDocument.from_xml(SC_DOC, name="Doc")

    def test_replace_mode(self):
        doc = self._doc()
        engine = MaterializationEngine(
            doc, lambda call, params: InvocationOutcome(["<stock>99</stock>"])
        )
        report = engine.materialize_all()
        assert report.invocation_count == 1
        call = doc.service_calls()[0]
        results = call.result_nodes()
        assert len(results) == 1
        assert results[0].text_content() == "99"
        kinds = [r.kind for r in report.change_records()]
        assert kinds == ["delete", "insert"]

    def test_merge_mode(self):
        doc = AXMLDocument.from_xml(
            "<D><axml:sc mode='merge' methodName='m'><r>1</r></axml:sc></D>"
        )
        engine = MaterializationEngine(
            doc, lambda call, params: InvocationOutcome(["<r>2</r>"])
        )
        report = engine.materialize_all()
        results = doc.service_calls()[0].result_nodes()
        assert [n.text_content() for n in results] == ["1", "2"]
        assert [r.kind for r in report.change_records()] == ["insert"]

    def test_params_passed_to_resolver(self):
        doc = self._doc()
        seen = {}

        def resolver(call, params):
            seen.update(params)
            return InvocationOutcome([])

        MaterializationEngine(doc, resolver).materialize_all()
        assert seen == {"id": "42"}

    def test_nested_param_materialized_first(self):
        doc = AXMLDocument.from_xml(
            "<D><axml:sc mode='replace' methodName='outer'><axml:params>"
            "<axml:param name='p'><axml:sc methodName='inner'/></axml:param>"
            "</axml:params><old/></axml:sc></D>"
        )
        order = []

        def resolver(call, params):
            order.append((call.method_name, dict(params)))
            if call.method_name == "inner":
                return InvocationOutcome(["<v>materialized</v>"])
            return InvocationOutcome(["<out/>"])

        MaterializationEngine(doc, resolver).materialize_all()
        assert order[0][0] == "inner"
        assert order[1] == ("outer", {"p": "materialized"})

    def test_nested_result_call_followed(self):
        doc = AXMLDocument.from_xml(
            "<D><axml:sc mode='replace' methodName='first'><old/></axml:sc></D>"
        )

        def resolver(call, params):
            if call.method_name == "first":
                return InvocationOutcome(
                    ["<axml:sc mode='replace' methodName='second'/>"]
                )
            return InvocationOutcome(["<final>done</final>"])

        report = MaterializationEngine(doc, resolver).materialize_all()
        assert report.methods() == ["first", "second"]

    def test_nested_depth_bounded(self):
        doc = AXMLDocument.from_xml(
            "<D><axml:sc mode='replace' methodName='loop'><old/></axml:sc></D>"
        )

        def resolver(call, params):
            return InvocationOutcome(["<axml:sc mode='replace' methodName='loop'/>"])

        engine = MaterializationEngine(doc, resolver, max_depth=3)
        with pytest.raises(MaterializationError):
            engine.materialize_all()

    def test_lazy_for_query(self):
        doc = AXMLDocument.from_xml(
            "<D><item>"
            "<axml:sc mode='replace' methodName='a'><alpha>1</alpha></axml:sc>"
            "<axml:sc mode='replace' methodName='b'><beta>1</beta></axml:sc>"
            "</item></D>",
            name="D",
        )
        invoked = []

        def resolver(call, params):
            invoked.append(call.method_name)
            return InvocationOutcome([f"<{call.result_name}>2</{call.result_name}>"])

        q = parse_select("Select i/beta from i in D//item;")
        MaterializationEngine(doc, resolver).materialize_for_query(q)
        assert invoked == ["b"]

    def test_materialize_one_call(self):
        doc = self._doc()
        call = doc.service_calls()[0]
        engine = MaterializationEngine(
            doc, lambda c, p: InvocationOutcome(["<stock>1</stock>"])
        )
        report = engine.materialize_call(call)
        assert report.invocation_count == 1
