"""Unit tests for continuous/periodic services (repro.axml.continuous)."""

import pytest

from repro.axml.continuous import ContinuousDriver, StreamSubscription
from repro.axml.document import AXMLDocument
from repro.axml.materialize import InvocationOutcome
from repro.errors import ServiceFault
from repro.sim.kernel import Clock, EventQueue

DOC = (
    "<Feed>"
    "<axml:sc mode='replace' methodName='getQuote' frequency='1.0'>"
    "<quote>100</quote></axml:sc>"
    "<axml:sc mode='replace' methodName='getStatic'><s>1</s></axml:sc>"
    "</Feed>"
)


def make_driver(resolver, on_tick=None):
    doc = AXMLDocument.from_xml(DOC, name="Feed")
    events = EventQueue(Clock())
    driver = ContinuousDriver(doc, resolver, events, on_tick)
    return doc, events, driver


class TestContinuousDriver:
    def test_only_frequency_calls_scheduled(self):
        doc, events, driver = make_driver(
            lambda c, p: InvocationOutcome(["<quote>1</quote>"])
        )
        assert driver.start() == 1

    def test_periodic_ticks(self):
        values = iter(range(101, 120))
        doc, events, driver = make_driver(
            lambda c, p: InvocationOutcome([f"<quote>{next(values)}</quote>"])
        )
        driver.start()
        events.run_until(3.5)
        assert driver.tick_count("getQuote") == 3
        quote = doc.service_calls()[0].result_nodes()[0]
        assert quote.text_content() == "103"

    def test_tick_records_changes(self):
        doc, events, driver = make_driver(
            lambda c, p: InvocationOutcome(["<quote>1</quote>"])
        )
        driver.start()
        events.run_until(1.0)
        assert driver.history[0].succeeded
        assert driver.history[0].records == 2  # replace = delete + insert

    def test_stop(self):
        doc, events, driver = make_driver(
            lambda c, p: InvocationOutcome(["<quote>1</quote>"])
        )
        driver.start()
        events.run_until(1.0)
        driver.stop()
        events.run_until(10.0)
        assert driver.tick_count() == 1

    def test_failed_tick_recorded_and_retried(self):
        calls = {"n": 0}

        def flaky(call, params):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ServiceFault("Unavailable")
            return InvocationOutcome(["<quote>1</quote>"])

        doc, events, driver = make_driver(flaky)
        driver.start()
        events.run_until(2.5)
        assert [r.succeeded for r in driver.history] == [False, True]

    def test_deleted_call_lapses(self):
        doc, events, driver = make_driver(
            lambda c, p: InvocationOutcome(["<quote>1</quote>"])
        )
        driver.start()
        doc.service_calls()[0].element.detach()
        events.run_until(5.0)
        assert driver.tick_count() == 0

    def test_on_tick_callback(self):
        seen = []
        doc, events, driver = make_driver(
            lambda c, p: InvocationOutcome(["<quote>1</quote>"]), on_tick=seen.append
        )
        driver.start()
        events.run_until(2.0)
        assert len(seen) == 2
        assert seen[0].time == pytest.approx(1.0)


class TestStreamSubscription:
    def test_delivery_resets_silence(self):
        sub = StreamSubscription("P", "C", interval=1.0)
        sub.deliver(1.0)
        assert not sub.check(1.5)
        sub.deliver(2.0)
        assert not sub.check(2.9)

    def test_silence_detected_after_grace(self):
        fired = []
        sub = StreamSubscription("P", "C", interval=1.0, grace=0.5,
                                 on_silence=fired.append)
        sub.deliver(1.0)
        assert not sub.check(2.4)  # within interval*(1+grace)
        assert sub.check(2.6)
        assert fired == ["P"]

    def test_callback_fires_once(self):
        fired = []
        sub = StreamSubscription("P", "C", interval=1.0, on_silence=fired.append)
        sub.deliver(0.0)
        sub.check(10.0)
        sub.check(20.0)
        assert fired == ["P"]

    def test_counts(self):
        sub = StreamSubscription("P", "C", interval=1.0)
        for t in (1.0, 2.0, 3.0):
            sub.deliver(t)
        assert sub.delivered == 3
