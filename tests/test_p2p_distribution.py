"""Integration tests for distributed document fragments (§1)."""

import pytest

from repro.axml.document import AXMLDocument
from repro.errors import P2PError, PeerDisconnected
from repro.p2p.distribution import distribute_fragment, remote_subquery
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.p2p.replication import ReplicationManager
from repro.query.parser import parse_select
from repro.xmlstore.serializer import canonical

LIB = (
    "<Lib>"
    "<books><book><title>Sagas</title><year>1987</year></book>"
    "<book><title>ARIES</title><year>1992</year></book></books>"
    "<cds><cd><name>X</name></cd></cds>"
    "</Lib>"
)


@pytest.fixture
def world():
    network = SimNetwork()
    replication = ReplicationManager(network)
    ap1 = AXMLPeer("AP1", network)
    ap2 = AXMLPeer("AP2", network)
    doc = ap1.host_document(AXMLDocument.from_xml(LIB, name="Lib"))
    replication.register_primary("Lib", "AP1")
    return network, ap1, ap2, doc


class TestDistributeFragment:
    def test_subtree_moves(self, world):
        network, ap1, ap2, doc = world
        placement = distribute_fragment(ap1, "Lib", "//books", ap2)
        assert "Sagas" not in doc.to_xml()
        fragment = ap2.get_axml_document(placement.fragment_document)
        assert "Sagas" in fragment.to_xml()
        assert fragment.document.root.name.local == "books"

    def test_placeholder_call_in_place(self, world):
        network, ap1, ap2, doc = world
        distribute_fragment(ap1, "Lib", "//books", ap2)
        calls = doc.service_calls()
        assert len(calls) == 1
        assert calls[0].result_name == "books"
        assert calls[0].peer_hint == "AP2"
        # the placeholder sits where the subtree was (first child)
        assert doc.document.root.child_elements()[0].name.local == "sc"

    def test_requires_unique_match(self, world):
        network, ap1, ap2, doc = world
        with pytest.raises(P2PError):
            distribute_fragment(ap1, "Lib", "//book", ap2)  # two matches
        with pytest.raises(P2PError):
            distribute_fragment(ap1, "Lib", "//ghost", ap2)  # none

    def test_cannot_distribute_root(self, world):
        network, ap1, ap2, doc = world
        with pytest.raises(P2PError):
            distribute_fragment(ap1, "Lib", "Lib", ap2)

    def test_registered_with_replication(self, world):
        network, ap1, ap2, doc = world
        placement = distribute_fragment(ap1, "Lib", "//books", ap2)
        assert network.replication.holders(placement.fragment_document) == ["AP2"]


class TestFragmentCopy:
    """Option (b): copy the fragment over, evaluate locally."""

    def test_lazy_copy_on_demand(self, world):
        network, ap1, ap2, doc = world
        distribute_fragment(ap1, "Lib", "//books", ap2)
        txn = ap1.begin_transaction()
        outcome = ap1.submit(
            txn.txn_id,
            '<action type="query"><location>Select b/title from b in '
            "Lib//book;</location></action>",
        )
        assert sorted(outcome.query_result.texts()) == ["ARIES", "Sagas"]
        assert "Sagas" in doc.to_xml()

    def test_unrelated_query_does_not_copy(self, world):
        network, ap1, ap2, doc = world
        distribute_fragment(ap1, "Lib", "//books", ap2)
        txn = ap1.begin_transaction()
        outcome = ap1.submit(
            txn.txn_id,
            '<action type="query"><location>Select c/name from c in Lib//cd;'
            "</location></action>",
        )
        assert outcome.query_result.texts() == ["X"]
        assert "Sagas" not in doc.to_xml()  # fragment never fetched

    def test_copy_compensated_on_abort(self, world):
        network, ap1, ap2, doc = world
        distribute_fragment(ap1, "Lib", "//books", ap2)
        pre = canonical(doc.document)
        txn = ap1.begin_transaction()
        ap1.submit(
            txn.txn_id,
            '<action type="query"><location>Select b/title from b in '
            "Lib//book;</location></action>",
        )
        ap1.abort(txn.txn_id)
        assert canonical(doc.document) == pre

    def test_fragment_host_down(self, world):
        network, ap1, ap2, doc = world
        distribute_fragment(ap1, "Lib", "//books", ap2)
        network.disconnect("AP2")
        txn = ap1.begin_transaction()
        with pytest.raises(PeerDisconnected):
            ap1.submit(
                txn.txn_id,
                '<action type="query"><location>Select b/title from b in '
                "Lib//book;</location></action>",
            )


class TestRemoteSubquery:
    """Option (a): ship the sub-query to the fragment's host."""

    def test_results_come_back(self, world):
        network, ap1, ap2, doc = world
        placement = distribute_fragment(ap1, "Lib", "//books", ap2)
        txn = ap1.begin_transaction()
        subquery = parse_select(
            f"Select b/title from b in {placement.fragment_document}//book "
            "where b/year > 1990;"
        )
        fragments = remote_subquery(ap1, txn.txn_id, placement, subquery)
        assert fragments == ["<title>ARIES</title>"]

    def test_local_document_untouched(self, world):
        network, ap1, ap2, doc = world
        placement = distribute_fragment(ap1, "Lib", "//books", ap2)
        pre = canonical(doc.document)
        txn = ap1.begin_transaction()
        subquery = parse_select(
            f"Select b from b in {placement.fragment_document}//book;"
        )
        remote_subquery(ap1, txn.txn_id, placement, subquery)
        assert canonical(doc.document) == pre
        # nothing to compensate locally
        assert ap1.manager.log.entries_for(txn.txn_id) == []

    def test_wrong_document_rejected(self, world):
        network, ap1, ap2, doc = world
        placement = distribute_fragment(ap1, "Lib", "//books", ap2)
        txn = ap1.begin_transaction()
        with pytest.raises(P2PError):
            remote_subquery(
                ap1, txn.txn_id, placement, parse_select("Select b from b in Other//x;")
            )

    def test_enlists_fragment_peer(self, world):
        network, ap1, ap2, doc = world
        placement = distribute_fragment(ap1, "Lib", "//books", ap2)
        txn = ap1.begin_transaction()
        remote_subquery(
            ap1,
            txn.txn_id,
            placement,
            parse_select(f"Select b from b in {placement.fragment_document}//book;"),
        )
        assert ap1.chains[txn.txn_id].contains("AP2")
