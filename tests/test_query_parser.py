"""Unit tests for the Select/action parsers (repro.query)."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query.ast import ActionType, BooleanCondition, Comparison, NodeRef
from repro.query.lexer import tokenize
from repro.query.parser import iter_comparisons, parse_action, parse_select


class TestLexer:
    def test_keywords_case_insensitive(self):
        kinds = [t.kind for t in tokenize("SELECT p FROM p IN D//x WHERE")]
        assert kinds == ["KEYWORD", "PATH", "KEYWORD", "PATH", "KEYWORD", "PATH", "KEYWORD"]

    def test_operators(self):
        ops = [t.value for t in tokenize("a = b != c <= d >= e < f > g <> h") if t.kind == "OP"]
        assert ops == ["=", "!=", "<=", ">=", "<", ">", "!="]

    def test_strings(self):
        tokens = tokenize("x = 'Roger Federer'")
        assert tokens[-1].kind == "STRING"
        assert tokens[-1].value == "Roger Federer"

    def test_double_quoted(self):
        assert tokenize('x = "hi"')[-1].value == "hi"

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("x = 'oops")

    def test_punctuation(self):
        kinds = [t.kind for t in tokenize("a, b;")]
        assert kinds == ["PATH", "COMMA", "PATH", "SEMI"]


class TestParseSelect:
    def test_paper_query(self):
        q = parse_select(
            "Select p/citizenship from p in ATPList//player "
            "where p/name/lastname = Federer;"
        )
        assert q.var == "p"
        assert q.document_name == "ATPList"
        assert len(q.select_paths) == 1
        assert isinstance(q.where, Comparison)
        assert q.where.literal == "Federer"

    def test_multiple_select_paths(self):
        q = parse_select("Select p/a, p/b, p/c from p in D//x;")
        assert len(q.select_paths) == 3

    def test_bare_variable_select(self):
        q = parse_select("Select p from p in D//x;")
        assert q.select_paths[0].path.steps == ()

    def test_no_where(self):
        assert parse_select("Select p from p in D//x;").where is None

    def test_optional_semicolon(self):
        assert parse_select("Select p from p in D//x").var == "p"

    def test_quoted_literal(self):
        q = parse_select("Select p from p in D//x where p/name = 'Roger Federer';")
        assert q.where.literal == "Roger Federer"

    def test_multiword_bareword_literal(self):
        q = parse_select("Select p from p in D//x where p/name = Roger Federer;")
        assert q.where.literal == "Roger Federer"

    def test_and_or_precedence(self):
        q = parse_select(
            "Select p from p in D//x where p/a = 1 and p/b = 2 or p/c = 3;"
        )
        assert isinstance(q.where, BooleanCondition)
        assert q.where.op == "or"
        assert isinstance(q.where.parts[0], BooleanCondition)
        assert q.where.parts[0].op == "and"

    def test_and_only(self):
        q = parse_select("Select p from p in D//x where p/a = 1 and p/b = 2;")
        assert q.where.op == "and"
        assert len(list(iter_comparisons(q.where))) == 2

    def test_id_source(self):
        q = parse_select("Select n from n in id(d1.n3@ATPList);")
        assert isinstance(q.source, NodeRef)
        assert q.source.node_id_text == "d1.n3"
        assert q.document_name == "ATPList"

    def test_str_roundtrip(self):
        text = "Select p/a, p/b from p in D//x where p/c = 1 and p/d != 2;"
        q = parse_select(text)
        assert str(parse_select(str(q))) == str(q)

    def test_id_source_roundtrip(self):
        q = parse_select("Select n from n in id(d1.n3@ATPList);")
        assert str(parse_select(str(q))) == str(q)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "Select",
            "Select p",
            "Select p from",
            "Select p from p",
            "Select p from p in",
            "Select p from p in D//x where",
            "Select p from p in D//x where p/a =",
            "Select p from p in D//x where p/a = 1 extra trailing, tokens",
            "from p in D//x",
            "Select p from p/q in D//x;",
            "Select p from p in id(broken);",
            "Select q/a from p in D//x;",  # variable mismatch
            "Select p from p in D//x where q/a = 1;",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_select(bad)

    def test_required_names(self):
        q = parse_select(
            "Select p/citizenship, p/points from p in ATPList//player "
            "where p/name/lastname = Federer;"
        )
        assert set(q.required_names()) == {"citizenship", "points", "name", "lastname"}


class TestParseAction:
    def test_delete_action(self):
        a = parse_action(
            '<action type="delete"><location>Select p/citizenship from p in '
            "ATPList//player where p/name/lastname = Federer;</location></action>"
        )
        assert a.action_type is ActionType.DELETE
        assert a.data == ()

    def test_insert_action(self):
        a = parse_action(
            '<action type="insert"><data><citizenship>Swiss</citizenship></data>'
            "<location>Select p from p in D//x;</location></action>"
        )
        assert a.action_type is ActionType.INSERT
        assert a.data == ("<citizenship>Swiss</citizenship>",)

    def test_replace_action(self):
        a = parse_action(
            '<action type="replace"><data><c>USA</c></data>'
            "<location>Select p/c from p in D//x;</location></action>"
        )
        assert a.action_type is ActionType.REPLACE

    def test_query_action(self):
        a = parse_action(
            '<action type="query"><location>Select p from p in D//x;'
            "</location></action>"
        )
        assert a.action_type is ActionType.QUERY
        assert not a.action_type.is_update

    def test_anchor_parsed(self):
        a = parse_action(
            '<action type="insert" anchor="after:d1.n5"><data><x/></data>'
            "<location>Select p from p in D//y;</location></action>"
        )
        assert a.anchor == ("after", "d1.n5")

    def test_rebind_parsed(self):
        a = parse_action(
            '<action type="insert" rebind="true"><data><x/></data>'
            "<location>Select p from p in D//y;</location></action>"
        )
        assert a.rebind

    def test_to_xml_roundtrip(self):
        xml = (
            '<action type="insert" anchor="before:d1.n2" rebind="true">'
            "<data><x a=\"1\">t</x></data>"
            "<location>Select p from p in D//y;</location></action>"
        )
        a = parse_action(xml)
        assert parse_action(a.to_xml()).to_xml() == a.to_xml()

    @pytest.mark.parametrize(
        "bad",
        [
            "<wrong/>",
            '<action type="explode"><location>Select p from p in D//x;</location></action>',
            '<action type="delete"></action>',  # no location
            '<action type="insert"><location>Select p from p in D//x;</location></action>',  # no data
            '<action type="insert" anchor="sideways:d1.n1"><data><x/></data>'
            "<location>Select p from p in D//x;</location></action>",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_action(bad)
