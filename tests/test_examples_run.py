"""Smoke tests: every example script runs cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "tennis_rankings.py",
    "travel_booking.py",
    "disconnection_resilience.py",
    "distributed_library.py",
    "protocol_transcripts.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_cli_module_entrypoint():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "spheres", "--super-fraction", "1.0"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stderr
    assert "guaranteed" in result.stdout
