"""Elastic sharding: ring determinism, live migration, oracle predicates.

These pin the sharding subsystem (docs/SHARDING.md): the consistent-hash
ring is a pure function of ``(seed, members, key)`` — byte-stable across
processes and ``PYTHONHASHSEED`` values; a membership change moves only
the keys the new/old arcs own; live migration defers in-flight
transactions at the quiescence barrier and flips routing atomically; and
the oracle's shard predicates catch lost, duplicated, and mis-directed
placement.
"""

import math
import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.axml.document import AXMLDocument
from repro.chaos import ChaosConfig, run_chaos
from repro.chaos.shrink import summary_text
from repro.p2p.distribution import distribute_fragment
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.p2p.replication import ReplicationManager
from repro.p2p.sharding import PlacementDirectory, ShardCoordinator, ShardRing, moved_keys
from repro.services.descriptor import ParamSpec, ServiceDescriptor
from repro.services.service import UpdateService

D1 = "<D1><items/></D1>"

ADD_ITEM = (
    '<action type="insert"><data><item>$v</item></data>'
    "<location>Select d from d in D1//items;</location></action>"
)

#: Member names for the hypothesis ring properties — distinct short ids.
MEMBER_NAMES = st.lists(
    st.text(alphabet="ABCDEFGH", min_size=2, max_size=4),
    min_size=2,
    max_size=6,
    unique=True,
)


def make_sharded_cluster(seed=42, replicas=1, **coordinator_kwargs):
    """C1 (origin) + AP1..AP3 on a ring; D1/addItem placed by the ring.

    With ``seed=42`` the ring puts D1 on AP3 (replica AP1), and a new
    member named N15 takes over as D1's primary — pinned below.
    """
    network = SimNetwork()
    replication = ReplicationManager(network)
    peers = {pid: AXMLPeer(pid, network) for pid in ("C1", "AP1", "AP2", "AP3")}
    ring = ShardRing(seed=seed, members=["AP1", "AP2", "AP3"], replicas=replicas)
    coordinator = ShardCoordinator(
        network, replication, ring, **coordinator_kwargs
    )
    owners = ring.lookup("D1")
    primary = owners[0]
    peers[primary].host_document(AXMLDocument.from_xml(D1, name="D1"))
    peers[primary].host_service(
        UpdateService(
            ServiceDescriptor(
                "addItem", kind="update", params=(ParamSpec("v"),),
                target_document="D1",
            ),
            ADD_ITEM,
        )
    )
    replication.register_primary("D1", primary)
    replication.register_service("addItem", primary)
    coordinator.register_shard("D1", "addItem")
    for replica in owners[1:]:
        replication.replicate_document("D1", replica)
        replication.replicate_service("addItem", replica)
    return network, replication, coordinator, peers


class TestShardRing:
    def test_assignment_is_pinned(self):
        # Placement is a pure function of (seed, members, key): these
        # exact values must never drift, or every sharded replay breaks.
        ring = ShardRing(seed=42, members=["AP1", "AP2", "AP3"], replicas=1)
        assert ring.lookup("D1") == ["AP3", "AP1"]
        assert ring.lookup("D2") == ["AP2", "AP3"]
        assert ring.primary("D1") == "AP3"

    def test_insertion_order_is_irrelevant(self):
        keys = [f"K{i}" for i in range(32)]
        a = ShardRing(seed=7, members=["M1", "M2", "M3"], replicas=1)
        b = ShardRing(seed=7, members=["M3", "M1", "M2"], replicas=1)
        assert a.assignment(keys) == b.assignment(keys)

    def test_assignment_is_stable_across_processes(self):
        # The whole point of crc32 hashing: PYTHONHASHSEED cannot leak
        # into placement.  Compute the same assignment under two
        # different hash seeds in fresh interpreters.
        program = (
            "import sys; sys.path.insert(0, 'src');"
            "from repro.p2p.sharding import ShardRing;"
            "ring = ShardRing(seed=42, members=['AP1','AP2','AP3'], replicas=1);"
            "print(ring.assignment(['D%d' % i for i in range(16)]))"
        )
        outputs = set()
        for hash_seed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True,
                text=True,
                cwd=".",
                env={"PYTHONHASHSEED": hash_seed, "PATH": "/usr/bin:/bin"},
            )
            assert result.returncode == 0, result.stderr
            outputs.add(result.stdout)
        assert len(outputs) == 1
        local = ShardRing(seed=42, members=["AP1", "AP2", "AP3"], replicas=1)
        assert str(local.assignment([f"D{i}" for i in range(16)])) in {
            out.strip() for out in outputs
        }

    @settings(max_examples=50, deadline=None)
    @given(members=MEMBER_NAMES, keys=st.lists(st.text(min_size=1), max_size=20))
    def test_join_moves_keys_only_to_the_new_member(self, members, keys):
        # Minimal disruption, structurally: when a member joins, any key
        # whose primary changed is now owned by exactly that member.
        ring = ShardRing(seed=3, members=members)
        before = {key: ring.primary(key) for key in keys}
        ring.add_member("NEWPEER")
        for key in keys:
            after = ring.primary(key)
            assert after == before[key] or after == "NEWPEER"

    @settings(max_examples=50, deadline=None)
    @given(members=MEMBER_NAMES, keys=st.lists(st.text(min_size=1), max_size=20))
    def test_leave_touches_only_keys_the_member_owned(self, members, keys):
        ring = ShardRing(seed=3, members=members, replicas=1)
        before = {key: ring.lookup(key) for key in keys}
        victim = sorted(members)[0]
        ring.remove_member(victim)
        for key in keys:
            if victim not in before[key]:
                assert ring.lookup(key) == before[key]

    def test_join_disruption_is_bounded(self):
        # Quantitative minimal-disruption gate: a 5th member takes over
        # at most ceil(K/N) + slack of 128 keys (measured: 11, expected
        # ~K/N = 25.6; slack covers vnode placement variance).
        keys = [f"K{i:03d}" for i in range(128)]
        ring = ShardRing(seed=9, members=["M1", "M2", "M3", "M4"])
        before = {key: ring.primary(key) for key in keys}
        ring.add_member("M5")
        moved = [key for key in keys if ring.primary(key) != before[key]]
        bound = math.ceil(128 / 5)
        assert 0 < len(moved) <= 2 * bound
        assert all(ring.primary(key) == "M5" for key in moved)

    def test_moved_keys_reports_owner_changes(self):
        before = {"A": ["M1"], "B": ["M2"], "C": ["M1", "M2"]}
        after = {"A": ["M1"], "B": ["M3"], "C": ["M2", "M1"], "D": ["M3"]}
        assert moved_keys(before, after) == ["B", "C", "D"]


class TestPlacementDirectory:
    def test_non_sharded_methods_route_to_none(self):
        network = SimNetwork()
        directory = PlacementDirectory(network)
        assert network.directory is directory
        assert directory.route_service("anything") is None

    def test_routes_to_primary_with_liveness_fallback(self):
        network, replication, coordinator, peers = make_sharded_cluster()
        directory = replication.directory
        assert directory.route_service("addItem") == "AP3"
        network.disconnect("AP3")
        assert directory.route_service("addItem") == "AP1"

    def test_flip_primary_reorders_document_and_service(self):
        network, replication, coordinator, peers = make_sharded_cluster()
        directory = replication.directory
        directory.flip_primary("D1", "AP1")
        assert directory.document_holders("D1") == ["AP1", "AP3"]
        assert directory.service_holders("addItem") == ["AP1", "AP3"]
        assert directory.route_service("addItem") == "AP1"


class TestLiveMigration:
    def test_join_migrates_the_shard_and_reroutes(self):
        network, replication, coordinator, peers = make_sharded_cluster()
        peers["N15"] = AXMLPeer("N15", network)
        coordinator.add_peer("N15")  # N15 becomes D1's ring primary
        network.events.run_all()
        assert network.metrics.get("migrations") == 1
        assert network.metrics.get("shard_joins") == 1
        assert network.metrics.get("ring_moves") >= 1
        directory = replication.directory
        assert directory.primary("D1") == "N15"
        assert "items" in peers["N15"].get_axml_document("D1").to_xml()
        # Invocations addressed at the old primary now land on N15.
        txn = peers["C1"].begin_transaction()
        peers["C1"].invoke(txn.txn_id, "AP3", "addItem", {"v": "99"})
        peers["C1"].commit(txn.txn_id)
        assert "99" in peers["N15"].get_axml_document("D1").to_xml()

    def test_migration_defers_in_flight_transactions(self):
        network, replication, coordinator, peers = make_sharded_cluster(
            max_defers=100
        )
        peers["N15"] = AXMLPeer("N15", network)
        txn = peers["C1"].begin_transaction()
        peers["C1"].invoke(txn.txn_id, "AP3", "addItem", {"v": "7"})
        coordinator.add_peer("N15")
        # The copy barrier must wait for the open transaction: commit it
        # a little later on the simulation clock.
        network.events.schedule(0.4, lambda: peers["C1"].commit(txn.txn_id))
        network.events.run_all()
        assert network.metrics.get("migration_deferred_txns") >= 1
        assert network.metrics.get("migrations") == 1
        assert replication.directory.primary("D1") == "N15"
        assert "7" in peers["N15"].get_axml_document("D1").to_xml()

    def test_parked_migration_settles_to_ring_assignment(self):
        # A transaction that never finishes exhausts the defer budget;
        # the migration parks, and settle() completes the move.
        network, replication, coordinator, peers = make_sharded_cluster(
            max_defers=2
        )
        peers["N15"] = AXMLPeer("N15", network)
        txn = peers["C1"].begin_transaction()
        peers["C1"].invoke(txn.txn_id, "AP3", "addItem", {"v": "5"})
        coordinator.add_peer("N15")
        network.events.run_all()
        assert network.metrics.get("migration_aborts") == 1
        peers["C1"].commit(txn.txn_id)
        coordinator.settle()
        directory = replication.directory
        assert directory.document_holders("D1") == coordinator.ring.lookup("D1")
        assert directory.primary("D1") == "N15"
        assert network.metrics.get("migrations") == 1

    def test_retire_refuses_to_shrink_below_replication_factor(self):
        network, replication, coordinator, peers = make_sharded_cluster()
        coordinator.retire_peer("AP1")
        assert coordinator.ring.members == ["AP2", "AP3"]
        coordinator.retire_peer("AP2")  # would leave 1 < 1 + replicas
        assert coordinator.ring.members == ["AP2", "AP3"]


class TestShardedChaos:
    CONFIG = ChaosConfig(
        seed=7,
        txns=8,
        providers=3,
        fault_rate=0.2,
        crash_rate=0.3,
        replicas=1,
        sharding=True,
        shard_spares=1,
        durability="wal",
    )

    def test_sharded_run_is_clean_and_deterministic(self):
        result = run_chaos(self.CONFIG)
        assert result.violations == []
        assert summary_text(result) == summary_text(run_chaos(self.CONFIG))

    def test_sharded_seeds_hold_the_invariant(self):
        for seed in (1, 2, 3):
            config = ChaosConfig(
                seed=seed,
                txns=6,
                providers=3,
                fault_rate=0.25,
                crash_rate=0.3,
                replicas=1,
                sharding=True,
                shard_spares=1,
                durability="wal",
            )
            result = run_chaos(config)
            assert result.violations == [], (seed, result.violations)

    def test_sharding_section_in_summary(self):
        result = run_chaos(self.CONFIG)
        sharding = result.summary["metrics"]["sharding"]
        assert sharding["shard_joins"] == 1
        assert "migrations" in sharding


class TestShardOracle:
    CONFIG = ChaosConfig(
        seed=5, txns=4, providers=3, fault_rate=0.0, replicas=1, sharding=True
    )

    def test_clean_run_has_no_shard_violations(self):
        result = run_chaos(self.CONFIG)
        assert result.violations == []

    def test_lost_shard_is_flagged(self):
        result = run_chaos(self.CONFIG)
        for peer in result.cluster.peers.values():
            peer.documents.pop("D1", None)
        kinds = {v.kind for v in result.oracle().check(result.cluster.peers)}
        assert "shard_lost" in kinds

    def test_duplicated_shard_is_flagged(self):
        result = run_chaos(self.CONFIG)
        directory = result.cluster.replication.directory
        holders = directory.document_holders("D1")
        stray = next(
            pid for pid in sorted(result.cluster.peers) if pid not in holders
        )
        source = result.cluster.peer(holders[0]).get_axml_document("D1")
        copy = source.document.clone_tree(
            preserve_ids=True, name="D1", parse_equivalent=True
        )
        result.cluster.peer(stray).host_document(AXMLDocument(copy, name="D1"))
        kinds = {v.kind for v in result.oracle().check(result.cluster.peers)}
        assert "shard_duplicated" in kinds

    def test_stale_directory_is_flagged(self):
        result = run_chaos(self.CONFIG)
        directory = result.cluster.replication.directory
        directory.document_map["D1"].reverse()
        kinds = {v.kind for v in result.oracle().check(result.cluster.peers)}
        assert "directory_stale" in kinds


class TestFragmentSerialScoping:
    LIB = "<Lib><books><book><title>Sagas</title></book></books><cds/></Lib>"

    def test_fragment_serial_is_run_scoped(self):
        # Two independent networks each start their serials at 1 — the
        # old module-global itertools.count leaked state across runs in
        # one process (breaking serial vs. parallel sweep identity).
        for _ in range(2):
            network = SimNetwork()
            replication = ReplicationManager(network)
            ap1 = AXMLPeer("AP1", network)
            ap2 = AXMLPeer("AP2", network)
            ap1.host_document(AXMLDocument.from_xml(self.LIB, name="Lib"))
            replication.register_primary("Lib", "AP1")
            placement = distribute_fragment(ap1, "Lib", "//books", ap2)
            assert placement.fragment_document == "Lib_frag1"
