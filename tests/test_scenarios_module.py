"""Unit tests for the scenario builders (repro.sim.scenarios)."""

import pytest

from repro.sim.scenarios import (
    ATPLIST_XML,
    FIG1_TOPOLOGY,
    FIG2_TOPOLOGY,
    Scenario,
    build_atplist_scenario,
    build_fig1,
    build_fig2,
    build_topology,
    run_root_transaction,
)


class TestAtplistBuilder:
    def test_document_matches_paper(self):
        scenario = build_atplist_scenario()
        doc = scenario.peer("AP1").get_axml_document("ATPList")
        xml = doc.to_xml()
        assert "Federer" in xml and "Nadal" in xml
        assert xml.count("axml:sc") >= 2
        assert "475" in xml  # previous getPoints result
        assert 'year="2003"' in xml and 'year="2004"' in xml

    def test_services_on_right_peers(self):
        scenario = build_atplist_scenario()
        assert scenario.peer("AP2").registry.has("getPoints")
        assert scenario.peer("AP3").registry.has("getGrandSlamsWonbyYear")
        assert not scenario.peer("AP1").registry.has("getPoints")

    def test_points_value_configurable(self):
        scenario = build_atplist_scenario(points_value="1234")
        peer = scenario.peer("AP1")
        txn = peer.begin_transaction()
        from repro.sim.scenarios import QUERY_B

        outcome = peer.submit(
            txn.txn_id, f'<action type="query"><location>{QUERY_B}</location></action>'
        )
        assert "1234" in outcome.query_result.texts()


class TestTopologyBuilder:
    def test_fig1_peers_and_services(self):
        scenario = build_fig1()
        assert set(scenario.peers) == {f"AP{i}" for i in range(1, 7)}
        for index in range(1, 7):
            peer = scenario.peer(f"AP{index}")
            assert peer.registry.has(f"S{index}")
            assert peer.hosts_document(f"D{index}")

    def test_fig2_super_peer(self):
        scenario = build_fig2()
        assert scenario.peer("AP1").super_peer
        assert not scenario.peer("AP2").super_peer

    def test_extra_peers_idle(self):
        scenario = build_fig2(extra_peers=("APX",))
        assert "APX" in scenario.peers
        assert len(scenario.peer("APX").registry) == 1  # its own SX service

    def test_replication_registered(self):
        scenario = build_fig1()
        assert scenario.replication.holders("D3") == ["AP3"]
        assert scenario.replication.service_holders("S3") == ["AP3"]

    def test_flags_propagate(self):
        scenario = build_topology(
            FIG2_TOPOLOGY,
            peer_independent=True,
            chaining=False,
            chain_scope="extended",
            parent_watch_interval=0.1,
        )
        peer = scenario.peer("AP2")
        assert peer.peer_independent
        assert not peer.chaining
        assert peer.chain_scope == "extended"
        assert peer.parent_watch_interval == 0.1

    def test_topology_copy_stored(self):
        scenario = build_fig1()
        assert scenario.topology == FIG1_TOPOLOGY
        scenario.topology["AP1"] = []
        assert FIG1_TOPOLOGY["AP1"]  # original untouched


class TestRunRootTransaction:
    def test_returns_error_object(self):
        scenario = build_fig1()
        scenario.injector.fault_service("AP2", "S2", "X")
        txn, error = run_root_transaction(scenario)
        assert error is not None
        assert txn.origin_peer == "AP1"

    def test_custom_root(self):
        scenario = build_fig1()
        txn, error = run_root_transaction(scenario, root="AP3")
        assert error is None
        # AP3's branch ran: AP4 and AP5/AP6 have markers
        assert '<entry by="AP4"/>' in scenario.peer("AP4").get_axml_document("D4").to_xml()

    def test_metrics_shared(self):
        scenario = build_fig1()
        run_root_transaction(scenario)
        assert scenario.metrics is scenario.network.metrics
        assert scenario.metrics.get("invocations") == 5
