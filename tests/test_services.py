"""Unit tests for the service layer (repro.services)."""

import pytest

from repro.axml.document import AXMLDocument
from repro.axml.materialize import InvocationOutcome
from repro.errors import ServiceError, ServiceFault, ServiceNotFound
from repro.services.descriptor import ParamSpec, ServiceDescriptor
from repro.services.registry import ServiceRegistry
from repro.services.service import (
    DelegatingService,
    FunctionService,
    QueryService,
    UpdateService,
    substitute,
)


class StubHost:
    """Standalone ServiceHost used by the unit tests."""

    def __init__(self, documents=None, resolver=None):
        self.documents = documents or {}
        self.resolver = resolver
        self.recorded = []
        self.invocations = []
        self.rolls = iter([0.9] * 100)

    def get_axml_document(self, name):
        return self.documents[name]

    def materialization_resolver(self):
        return self.resolver

    def invoke_remote(self, target_peer, method_name, params):
        self.invocations.append((target_peer, method_name))
        return [f"<from peer='{target_peer}'/>"]

    def record_changes(self, records, document_name, action_xml):
        self.recorded.append((document_name, len(records)))

    def random(self):
        return next(self.rolls)


@pytest.fixture
def shop_host():
    doc = AXMLDocument.from_xml(
        "<Shop><item id='1'><price>10</price></item></Shop>", name="Shop"
    )
    return StubHost(documents={"Shop": doc}), doc


class TestDescriptor:
    def test_validate_params(self):
        d = ServiceDescriptor("m", kind="function", params=(ParamSpec("a"),))
        d.validate_params({"a": "1"})
        with pytest.raises(ServiceError):
            d.validate_params({})

    def test_optional_params(self):
        d = ServiceDescriptor(
            "m", kind="function", params=(ParamSpec("a", required=False),)
        )
        d.validate_params({})

    def test_wsdl_contains_operation(self):
        d = ServiceDescriptor("getPoints", kind="query", params=(ParamSpec("name"),))
        wsdl = d.to_wsdl()
        assert "getPoints" in wsdl
        assert 'kind="query"' in wsdl


class TestSubstitute:
    def test_fills_placeholders(self):
        assert substitute("hello $name", {"name": "world"}) == "hello world"

    def test_missing_param(self):
        with pytest.raises(ServiceError):
            substitute("$missing", {})


class TestQueryService:
    def test_executes_template(self, shop_host):
        host, _ = shop_host
        service = QueryService(
            ServiceDescriptor("getPrice", kind="query", params=(ParamSpec("id"),)),
            "Select i/price from i in Shop//item where i/price > $id;",
        )
        response = service.execute({"id": "1"}, host)
        assert response.fragments == ["<price>10</price>"]
        assert response.document_name == "Shop"

    def test_materializes_lazily(self):
        doc = AXMLDocument.from_xml(
            "<Shop><item><axml:sc mode='replace' methodName='getStock'>"
            "<stock>1</stock></axml:sc></item></Shop>",
            name="Shop",
        )
        host = StubHost(
            documents={"Shop": doc},
            resolver=lambda call, params: InvocationOutcome(["<stock>5</stock>"]),
        )
        service = QueryService(
            ServiceDescriptor("getStock", kind="query"),
            "Select i/stock from i in Shop//item;",
        )
        response = service.execute({}, host)
        assert response.fragments == ["<stock>5</stock>"]
        assert len(response.records) == 2  # delete old + insert new
        assert host.recorded  # logged through the host

    def test_bad_evaluation_mode(self):
        with pytest.raises(ServiceError):
            QueryService(
                ServiceDescriptor("q", kind="query"), "Select i from i in S//x;",
                evaluation="psychic",
            )


class TestUpdateService:
    def test_applies_action(self, shop_host):
        host, doc = shop_host
        service = UpdateService(
            ServiceDescriptor("setPrice", kind="update", params=(ParamSpec("price"),)),
            '<action type="replace"><data><price>$price</price></data>'
            "<location>Select i/price from i in Shop//item;</location></action>",
        )
        response = service.execute({"price": "99"}, host)
        assert "99" in doc.to_xml()
        assert response.records[0].kind == "replace"
        assert host.recorded == [("Shop", 1)]

    def test_insert_reports_ids(self, shop_host):
        host, _ = shop_host
        service = UpdateService(
            ServiceDescriptor("addTag", kind="update"),
            '<action type="insert"><data><tag/></data>'
            "<location>Select i from i in Shop//item;</location></action>",
        )
        response = service.execute({}, host)
        assert response.fragments[0].startswith("<inserted id=")


class TestFunctionService:
    def test_body_runs(self):
        service = FunctionService(
            ServiceDescriptor("hello", kind="function"),
            body=lambda params: [f"<hi to='{params.get('who', '')}'/>"],
        )
        response = service.execute({"who": "x"}, StubHost())
        assert response.fragments == ["<hi to='x'/>"]

    def test_fault_injection(self):
        service = FunctionService(
            ServiceDescriptor("flaky", kind="function"),
            body=lambda params: ["<ok/>"],
            fault_name="Boom",
            fault_probability=1.0,
        )
        host = StubHost()
        host.rolls = iter([0.0])
        with pytest.raises(ServiceFault) as exc:
            service.execute({}, host)
        assert exc.value.fault_name == "Boom"

    def test_no_fault_when_roll_high(self):
        service = FunctionService(
            ServiceDescriptor("flaky", kind="function"),
            body=lambda params: ["<ok/>"],
            fault_name="Boom",
            fault_probability=0.5,
        )
        host = StubHost()
        host.rolls = iter([0.9])
        assert service.execute({}, host).fragments == ["<ok/>"]


class TestDelegatingService:
    def test_delegates_in_order(self, shop_host):
        host, _ = shop_host
        service = DelegatingService(
            ServiceDescriptor("combo", kind="delegating"),
            delegations=[("P2", "a"), ("P3", "b")],
        )
        response = service.execute({}, host)
        assert host.invocations == [("P2", "a"), ("P3", "b")]
        assert response.remote_invocations == [("P2", "a"), ("P3", "b")]
        assert len(response.fragments) == 2

    def test_local_work_logged_before_delegation(self, shop_host):
        host, doc = shop_host
        service = DelegatingService(
            ServiceDescriptor("combo", kind="delegating", target_document="Shop"),
            delegations=[("P2", "a")],
            local_action_template=(
                '<action type="insert"><data><mark/></data>'
                "<location>Select i from i in Shop//item;</location></action>"
            ),
        )
        service.execute({}, host)
        assert host.recorded == [("Shop", 1)]
        assert "mark" in doc.to_xml()

    def test_extra_fragments(self, shop_host):
        host, _ = shop_host
        service = DelegatingService(
            ServiceDescriptor("combo", kind="delegating"),
            delegations=[],
            extra_fragments=("<done/>",),
        )
        assert service.execute({}, host).fragments == ["<done/>"]


class TestRegistry:
    def test_register_lookup(self):
        registry = ServiceRegistry("P1")
        service = FunctionService(
            ServiceDescriptor("m", kind="function"), body=lambda p: []
        )
        registry.register(service)
        assert registry.lookup("m") is service
        assert "m" in registry
        assert len(registry) == 1

    def test_missing_service(self):
        with pytest.raises(ServiceNotFound):
            ServiceRegistry("P1").lookup("ghost")

    def test_unregister(self):
        registry = ServiceRegistry("P1")
        registry.register(
            FunctionService(ServiceDescriptor("m", kind="function"), body=lambda p: [])
        )
        registry.unregister("m")
        assert not registry.has("m")
        registry.unregister("m")  # idempotent

    def test_descriptors(self):
        registry = ServiceRegistry("P1")
        registry.register(
            FunctionService(ServiceDescriptor("a", kind="function"), body=lambda p: [])
        )
        registry.register(
            FunctionService(ServiceDescriptor("b", kind="function"), body=lambda p: [])
        )
        assert sorted(d.method_name for d in registry.descriptors()) == ["a", "b"]
