"""Tests for chain merging and the AXML storage-call extras
(resultNames, fetchOnce) added for distributed fragments."""

import pytest

from repro.axml.document import AXMLDocument
from repro.axml.materialize import InvocationOutcome, MaterializationEngine
from repro.axml.service_call import ServiceCall
from repro.p2p.chain import PeerChain
from repro.query.parser import parse_select
from repro.xmlstore.parser import parse_document


class TestChainMerge:
    def test_merge_adds_deeper_edges(self):
        mine = PeerChain.from_text("[A -> B]")
        theirs = PeerChain.from_text("[A -> B -> [C] || [D]]")
        added = mine.merge(theirs)
        assert added == 2
        assert mine.children_of("B") == ["C", "D"]

    def test_merge_idempotent(self):
        mine = PeerChain.from_text("[A -> B -> C]")
        assert mine.merge(PeerChain.from_text("[A -> B -> C]")) == 0

    def test_merge_skips_unknown_parents(self):
        mine = PeerChain.from_text("[A]")
        theirs = PeerChain.from_text("[X -> Y]")
        assert mine.merge(theirs) == 0
        assert not mine.contains("Y")

    def test_merge_preserves_super_flags(self):
        mine = PeerChain.from_text("[A -> B]")
        theirs = PeerChain.from_text("[A -> B -> C*]")
        mine.merge(theirs)
        assert mine.find("C").super_peer

    def test_merge_partial_overlap(self):
        mine = PeerChain.from_text("[A -> [B] || [C]]")
        theirs = PeerChain.from_text("[A -> B -> B1]")
        assert mine.merge(theirs) == 1
        assert mine.children_of("B") == ["B1"]
        assert mine.children_of("A") == ["B", "C"]


class TestResultNames:
    def test_singular_fallback(self):
        doc = parse_document("<D><axml:sc methodName='m'><stock>1</stock></axml:sc></D>")
        call = ServiceCall(doc.root.child_elements()[0])
        assert call.result_names == ["stock"]

    def test_declared_plural(self):
        doc = parse_document(
            "<D><axml:sc methodName='m' resultNames='a b c'/></D>"
        )
        call = ServiceCall(doc.root.child_elements()[0])
        assert call.result_names == ["a", "b", "c"]

    def test_empty_when_unknown(self):
        doc = parse_document("<D><axml:sc methodName='m'/></D>")
        call = ServiceCall(doc.root.child_elements()[0])
        assert call.result_names == []


class TestFetchOnce:
    def _doc(self, with_results: bool):
        results = "<frag>old</frag>" if with_results else ""
        return AXMLDocument.from_xml(
            f"<D><axml:sc methodName='get' mode='replace' fetchOnce='true' "
            f"resultName='frag'>{results}</axml:sc></D>",
            name="D",
        )

    def test_skipped_when_results_present(self):
        doc = self._doc(with_results=True)
        calls = []

        def resolver(call, params):
            calls.append(call.method_name)
            return InvocationOutcome(["<frag>new</frag>"])

        report = MaterializationEngine(doc, resolver).materialize_all()
        assert calls == []
        assert report.invocation_count == 0
        assert "old" in doc.to_xml()

    def test_fetched_when_empty(self):
        doc = self._doc(with_results=False)
        report = MaterializationEngine(
            doc, lambda c, p: InvocationOutcome(["<frag>new</frag>"])
        ).materialize_all()
        assert report.invocation_count == 1
        assert "new" in doc.to_xml()

    def test_ordinary_calls_always_refresh(self):
        doc = AXMLDocument.from_xml(
            "<D><axml:sc methodName='get' mode='replace'>"
            "<frag>old</frag></axml:sc></D>",
            name="D",
        )
        report = MaterializationEngine(
            doc, lambda c, p: InvocationOutcome(["<frag>new</frag>"])
        ).materialize_all()
        assert report.invocation_count == 1
        assert "new" in doc.to_xml()


class TestLazyScope:
    """Instance-level lazy materialization (the E8 refinement)."""

    DOC = (
        "<Cat>"
        "<book><axml:sc methodName='s1' resultName='stock'>"
        "<stock>1</stock></axml:sc></book>"
        "<report><axml:sc methodName='s2' resultName='stock'>"
        "<stock>2</stock></axml:sc></report>"
        "</Cat>"
    )

    def test_only_bound_items_materialize(self):
        doc = AXMLDocument.from_xml(self.DOC, name="Cat")
        q = parse_select("Select b/stock from b in Cat//book;")
        assert [c.method_name for c in doc.calls_for_query(q)] == ["s1"]

    def test_source_producing_calls_always_selected(self):
        doc = AXMLDocument.from_xml(
            "<Lib><axml:sc methodName='frag' resultNames='book title'/></Lib>",
            name="Lib",
        )
        q = parse_select("Select b/title from b in Lib//book;")
        assert [c.method_name for c in doc.calls_for_query(q)] == ["frag"]

    def test_id_source_scope(self):
        doc = AXMLDocument.from_xml(self.DOC, name="Cat")
        book = doc.document.root.child_elements()[0]
        q = parse_select(f"Select b/stock from b in id({book.node_id!r}@Cat);")
        assert [c.method_name for c in doc.calls_for_query(q)] == ["s1"]
