"""Tests for the concurrent transaction scheduler and the T1 throughput
engine: determinism, admission control, conflict-retry span shape, and
outcome accounting."""

import pytest

from repro.sim.rng import SeededRng, stable_seed
from repro.sim.scheduler import (
    ABORTED_FAILURE,
    COMMITTED,
    TransactionScheduler,
    TxnSpec,
)
from repro.sim.throughput import (
    THROUGHPUT_MIX,
    build_throughput_cluster,
    demo_conflict_retry,
    run_throughput_point,
    throughput_sweep,
)
from repro.sim.workload import (
    generate_contended_transaction,
    poisson_arrival_times,
)


def _insert_op(doc_name: str) -> str:
    return (
        '<action type="insert"><data><mark/></data>'
        f"<location>Select c from c in {doc_name};</location></action>"
    )


def _simple_cluster(seed: int = 3):
    network, peers = build_throughput_cluster(seed, peer_count=1, items=4)
    doc_name = next(iter(peers["AP1"].documents))
    return network, peers, doc_name


class TestSchedulerBasics:
    def test_validates_parameters(self):
        network, _, _ = _simple_cluster()
        with pytest.raises(ValueError):
            TransactionScheduler(network, max_inflight=0)
        with pytest.raises(ValueError):
            TransactionScheduler(network, max_attempts=0)

    def test_single_txn_commits(self):
        network, _, doc_name = _simple_cluster()
        scheduler = TransactionScheduler(network, seed=1)
        scheduler.submit(TxnSpec("t0", "AP1", (_insert_op(doc_name),)))
        results = scheduler.run()
        assert [r.status for r in results] == [COMMITTED]
        assert results[0].attempts == 1
        assert results[0].retries == 0
        assert results[0].latency > 0

    def test_fail_at_aborts_without_commit(self):
        network, peers, doc_name = _simple_cluster()
        scheduler = TransactionScheduler(network, seed=1)
        ops = (_insert_op(doc_name), _insert_op(doc_name))
        scheduler.submit(TxnSpec("bad", "AP1", ops, fail_at=1))
        results = scheduler.run()
        assert results[0].status == ABORTED_FAILURE
        assert scheduler.outcome_counts() == {ABORTED_FAILURE: 1}
        # Compensation removed the first insert again.
        doc = peers["AP1"].documents[doc_name]
        assert "<mark" not in doc.to_xml()

    def test_outcome_counters_in_metrics(self):
        network, _, doc_name = _simple_cluster()
        scheduler = TransactionScheduler(network, seed=1)
        scheduler.submit(TxnSpec("ok", "AP1", (_insert_op(doc_name),)))
        scheduler.submit(
            TxnSpec("bad", "AP1", (_insert_op(doc_name),), fail_at=0),
            at_time=1.0,
        )
        scheduler.run()
        metrics = network.metrics
        assert metrics.get("sched_committed") == 1
        assert metrics.get("sched_aborted_failure") == 1
        assert metrics.get("sched_admitted") == 2

    def test_empty_operations_commit_immediately(self):
        network, _, _ = _simple_cluster()
        scheduler = TransactionScheduler(network, seed=1)
        scheduler.submit(TxnSpec("noop", "AP1", ()))
        assert scheduler.run()[0].status == COMMITTED


class TestAdmissionControl:
    def test_inflight_never_exceeds_cap(self):
        network, _, doc_name = _simple_cluster()
        scheduler = TransactionScheduler(network, max_inflight=2, seed=1)
        for i in range(6):
            scheduler.submit(TxnSpec(f"t{i}", "AP1", (_insert_op(doc_name),)))
        scheduler.run()
        peak = network.metrics.max_value("inflight")
        assert peak is not None and peak <= 2
        assert network.metrics.get("sched_queued") == 4
        assert scheduler.backlog_depth == 0
        assert scheduler.inflight == 0

    def test_backlog_drains_fifo(self):
        network, _, doc_name = _simple_cluster()
        scheduler = TransactionScheduler(network, max_inflight=1, seed=1)
        order = []
        for i in range(4):
            scheduler.submit(
                TxnSpec(f"t{i}", "AP1", (_insert_op(doc_name),)),
                on_complete=lambda r: order.append(r.label),
            )
        scheduler.run()
        assert order == ["t0", "t1", "t2", "t3"]


class TestConflictRetry:
    def test_conflict_retried_to_commit_with_sibling_attempt_spans(self):
        # Two clients hammer one hot spot on one OCC peer: the loser's
        # first attempt conflicts at commit, backs off, and a fresh
        # attempt commits.
        network, peers = build_throughput_cluster(11, peer_count=1, items=4)
        document = next(iter(peers["AP1"].documents.values()))
        scheduler = TransactionScheduler(
            network, max_inflight=2, seed=stable_seed(11, "demo")
        )
        rng = SeededRng(stable_seed(11, "demo-workload"))
        for client in range(2):
            ops = generate_contended_transaction(
                rng, document, 3, hot_fraction=1.0, mix=THROUGHPUT_MIX
            )
            scheduler.submit(TxnSpec(f"hot{client}", "AP1", tuple(ops)))
        results = scheduler.run()

        assert all(r.status == COMMITTED for r in results)
        retried = [r for r in results if r.attempts > 1]
        assert retried, "expected at least one conflict-retried transaction"
        assert network.metrics.get("sched_retries") >= 1

        # Span shape: one detached client span per logical transaction,
        # attempt txn spans as siblings underneath it.
        spans = network.spans
        client_spans = {s.attrs["label"]: s for s in spans.by_kind("client")}
        assert set(client_spans) == {"hot0", "hot1"}
        for result in results:
            children = spans.children_of(client_spans[result.label])
            attempt_spans = [c for c in children if c.kind == "transaction"]
            assert len(attempt_spans) == result.attempts
            assert [c.attrs["attempt"] for c in attempt_spans] == [
                str(i + 1) for i in range(result.attempts)
            ]
        # Each attempt used a fresh txn id.
        for result in retried:
            assert len(set(result.txn_ids)) == result.attempts

    def test_exhausted_retries_abort_with_conflict(self):
        network, peers = build_throughput_cluster(11, peer_count=1, items=4)
        document = next(iter(peers["AP1"].documents.values()))
        scheduler = TransactionScheduler(
            network, max_inflight=2, max_attempts=1,
            seed=stable_seed(11, "demo"),
        )
        rng = SeededRng(stable_seed(11, "demo-workload"))
        for client in range(2):
            ops = generate_contended_transaction(
                rng, document, 3, hot_fraction=1.0, mix=THROUGHPUT_MIX
            )
            scheduler.submit(TxnSpec(f"hot{client}", "AP1", tuple(ops)))
        results = scheduler.run()
        counts = scheduler.outcome_counts()
        assert counts.get("aborted_conflict", 0) >= 1
        assert all(r.attempts == 1 for r in results)

    def test_demo_conflict_retry_commits_eventually(self):
        rows = demo_conflict_retry(seed=11)
        assert [r["status"] for r in rows] == ["committed", "committed"]
        assert any(r["attempts"] > 1 for r in rows)


class TestArrivals:
    def test_poisson_arrival_times_deterministic(self):
        a = poisson_arrival_times(SeededRng(5), rate=10.0, count=8, start=1.0)
        b = poisson_arrival_times(SeededRng(5), rate=10.0, count=8, start=1.0)
        assert a == b
        assert a == sorted(a)
        assert all(t > 1.0 for t in a)
        with pytest.raises(ValueError):
            poisson_arrival_times(SeededRng(5), rate=0.0, count=3)

    def test_open_loop_runs_all_specs(self):
        network, _, doc_name = _simple_cluster()
        scheduler = TransactionScheduler(network, max_inflight=2, seed=9)
        specs = [
            TxnSpec(f"t{i}", "AP1", (_insert_op(doc_name),)) for i in range(5)
        ]
        times = scheduler.submit_open_loop(specs, rate=50.0)
        assert len(times) == 5 and times == sorted(times)
        results = scheduler.run()
        assert len(results) == 5

    def test_closed_loop_runs_whole_plan(self):
        network, _, doc_name = _simple_cluster()
        scheduler = TransactionScheduler(network, max_inflight=2, seed=9)
        scheduler.run_closed_loop(
            clients=2,
            txns_per_client=3,
            make_spec=lambda c, i: TxnSpec(
                f"c{c}t{i}", "AP1", (_insert_op(doc_name),)
            ),
            think_time=0.01,
        )
        results = scheduler.run()
        assert len(results) == 6
        assert {r.label for r in results} == {
            f"c{c}t{i}" for c in range(2) for i in range(3)
        }


class TestThroughputEngine:
    def test_point_row_is_consistent(self):
        row = run_throughput_point(
            7, clients=2, hot_fraction=0.5, fail_rate=0.0,
            txns_per_client=2, items=6,
        )
        assert row["txns"] == 4
        assert row["committed"] + row["conflict"] + row["failure"] == row["txns"]
        assert row["tput"] > 0
        assert row["p50_lat"] is not None

    def test_sweep_same_seed_byte_identical(self):
        a = throughput_sweep(seed=7, smoke=True)
        b = throughput_sweep(seed=7, smoke=True)
        assert a.to_json() == b.to_json()

    def test_sweep_different_seed_differs(self):
        a = throughput_sweep(seed=7, smoke=True)
        b = throughput_sweep(seed=8, smoke=True)
        assert a.to_json() != b.to_json()

    def test_smoke_sweep_shape(self):
        table = throughput_sweep(seed=7, smoke=True)
        assert len(table.rows) == 4  # clients (1,2) x hot (0.0,0.9)
        assert table.column("clients") == [1, 1, 2, 2]
        assert all(row["committed"] <= row["txns"] for row in table.rows)
