"""Exact protocol-trace regression tests.

These pin the paper's prose walk-throughs to message sequences: if a
refactor reorders or drops a protocol message, these fail with the full
transcript.
"""

import pytest

from repro.sim.scenarios import build_fig1, build_fig2, run_root_transaction
from repro.sim.trace import TraceAttachError, TraceRecorder
from repro.txn.recovery import FaultPolicy


class TestFig1HappyTrace:
    def test_invocation_order_depth_first(self):
        scenario = build_fig1()
        recorder = TraceRecorder(scenario.network)
        txn, error = run_root_transaction(scenario)
        assert error is None
        invokes = recorder.shorthand(kinds=("invoke",))
        assert invokes == [
            "invoke:AP1->AP2:S2",
            "invoke:AP1->AP3:S3",
            "invoke:AP3->AP4:S4",
            "invoke:AP3->AP5:S5",
            "invoke:AP5->AP6:S6",
        ]

    def test_results_return_inside_out(self):
        scenario = build_fig1()
        recorder = TraceRecorder(scenario.network)
        run_root_transaction(scenario)
        results = recorder.shorthand(kinds=("result",))
        assert results == [
            "result:AP2->AP1:S2",
            "result:AP4->AP3:S4",
            "result:AP6->AP5:S6",
            "result:AP5->AP3:S5",
            "result:AP3->AP1:S3",
        ]

    def test_commit_notifies_every_participant(self):
        scenario = build_fig1()
        recorder = TraceRecorder(scenario.network)
        txn, _ = run_root_transaction(scenario)
        scenario.peer("AP1").commit(txn.txn_id)
        commits = [
            line for line in recorder.shorthand(kinds=("notify",))
            if ":commit:" in line
        ]
        assert len(commits) == 5  # AP2..AP6


class TestFig1AbortTrace:
    def test_paper_walkthrough_messages(self):
        """§3.2 steps 1–4 as an exact message sequence."""
        scenario = build_fig1()
        recorder = TraceRecorder(scenario.network)
        scenario.injector.fault_service("AP5", "S5", "Crash", point="after_execute")
        txn, error = run_root_transaction(scenario)
        assert error is not None
        aborts = [
            line for line in recorder.shorthand(kinds=("notify",))
            if ":abort:" in line
        ]
        # Step 1: AP5 -> AP6 (peer whose service it had invoked).
        # Step 4 at AP3: -> AP4; then at AP1: -> AP2.
        assert aborts == [
            f"notify:AP5->AP6:abort:{txn.txn_id}",
            f"notify:AP3->AP4:abort:{txn.txn_id}",
            f"notify:AP1->AP2:abort:{txn.txn_id}",
        ]
        faults = recorder.shorthand(kinds=("fault",))
        # The fault travels AP5 -> AP3 -> AP1 (the rpc fault propagation
        # is visible at each unwinding hop).
        assert faults == [
            "fault:AP5->AP3:S5:Crash",
            "fault:AP3->AP1:S3:Crash",
        ]

    def test_forward_recovery_trace(self):
        scenario = build_fig1()
        recorder = TraceRecorder(scenario.network)
        scenario.injector.fault_service("AP5", "S5", "Crash", times=1, point="after_execute")
        scenario.peer("AP3").set_fault_policy(
            "S5", [FaultPolicy(fault_names={"Crash"}, retry_times=1)]
        )
        txn, error = run_root_transaction(scenario)
        assert error is None
        invokes = recorder.shorthand(kinds=("invoke",))
        # S5 invoked twice (original + retry); the retry re-runs S6.
        assert invokes.count("invoke:AP3->AP5:S5") == 2
        assert invokes.count("invoke:AP5->AP6:S6") == 2
        # The abort of the failed first attempt reached AP6 exactly once.
        aborts = [l for l in recorder.shorthand(kinds=("notify",)) if ":abort:" in l]
        assert aborts == [f"notify:AP5->AP6:abort:{txn.txn_id}"]


class TestFig2DisconnectTrace:
    def test_case_b_redirect_sequence(self):
        scenario = build_fig2()
        recorder = TraceRecorder(scenario.network)
        scenario.injector.disconnect_peer_during("AP3", "AP6", "S6", "after_local_work")
        txn, _ = run_root_transaction(scenario)
        notifies = recorder.shorthand(kinds=("notify",))
        assert f"notify:AP6->AP2:disconnect_notice:{txn.txn_id}" in notifies
        assert f"notify:AP6->AP2:redirected_result:{txn.txn_id}" in notifies
        # The notice precedes the redirected payload.
        assert notifies.index(
            f"notify:AP6->AP2:disconnect_notice:{txn.txn_id}"
        ) < notifies.index(f"notify:AP6->AP2:redirected_result:{txn.txn_id}")

    def test_detach_restores_network(self):
        scenario = build_fig2()
        recorder = TraceRecorder(scenario.network)
        recorder.detach()
        run_root_transaction(scenario)
        assert len(recorder) == 0

    def test_detach_is_idempotent(self):
        scenario = build_fig2()
        recorder = TraceRecorder(scenario.network)
        recorder.detach()
        recorder.detach()  # second detach is a no-op
        assert not recorder.attached
        run_root_transaction(scenario)
        assert len(recorder) == 0

    def test_double_attach_detaches_innermost_first(self):
        scenario = build_fig2()
        outer = TraceRecorder(scenario.network)
        inner = TraceRecorder(scenario.network)
        # Both recorders see traffic while stacked.
        run_root_transaction(scenario)
        assert len(outer) > 0 and len(inner) > 0
        # Out-of-order detach would orphan the inner wrapper: refused.
        with pytest.raises(TraceAttachError):
            outer.detach()
        assert outer.attached
        inner.detach()
        outer.detach()
        assert not outer.attached and not inner.attached
        # The network is fully unwrapped again.
        before_outer, before_inner = len(outer), len(inner)
        run_root_transaction(build_fig2())
        assert len(outer) == before_outer and len(inner) == before_inner

    def test_transcript_renders(self):
        scenario = build_fig1()
        recorder = TraceRecorder(scenario.network)
        run_root_transaction(scenario)
        transcript = recorder.transcript()
        assert "AP1" in transcript and "invoke(S2)" in transcript
