"""Unit tests for the comparison baselines (repro.baselines)."""

import pytest

from repro.axml.document import AXMLDocument
from repro.axml.materialize import InvocationOutcome, MaterializationEngine
from repro.baselines.snapshot_rollback import SnapshotRollback
from repro.baselines.static_compensation import CoverageReport, StaticCompensator
from repro.baselines.two_phase_commit import TwoPhaseCoordinator, TwoPhaseOutcome
from repro.p2p.network import SimNetwork
from repro.query.parser import parse_action, parse_select
from repro.query.update import apply_action
from repro.xmlstore.parser import parse_document
from repro.xmlstore.serializer import canonical


class StubPeer:
    def __init__(self, peer_id, network):
        self.peer_id = peer_id
        self.disconnected = False
        network.register(self)

    def handle_invoke(self, request):  # pragma: no cover - unused
        raise AssertionError

    def on_notify(self, message):
        pass

    def on_return_failure(self, request, result):  # pragma: no cover
        pass


class TestStaticCompensator:
    ATP = (
        "<ATPList><player><name><lastname>Nadal</lastname></name>"
        "<citizenship>Spanish</citizenship></player></ATPList>"
    )

    def test_fresh_handler_restores_replace(self):
        doc = parse_document(self.ATP, name="ATPList")
        compensator = StaticCompensator()
        action = parse_action(
            '<action type="replace"><data><citizenship>USA</citizenship></data>'
            "<location>Select p/citizenship from p in ATPList//player;"
            "</location></action>"
        )
        handler_xml = StaticCompensator.derive_handler(action, doc)
        compensator.define("op1", handler_xml)
        pre = doc.clone(preserve_ids=True)
        apply_action(doc, action)
        report = CoverageReport()
        compensator.compensate("op1", doc, pre, report)
        assert report.covered == 1
        assert report.restored_exactly == 1

    def test_stale_handler_leaves_wrong_state(self):
        doc = parse_document(self.ATP, name="ATPList")
        compensator = StaticCompensator()
        action = parse_action(
            '<action type="replace"><data><citizenship>USA</citizenship></data>'
            "<location>Select p/citizenship from p in ATPList//player;"
            "</location></action>"
        )
        # Handler derived now (citizenship=Spanish) ...
        compensator.define("op1", StaticCompensator.derive_handler(action, doc))
        # ... but the document changes before the operation runs.
        apply_action(
            doc,
            parse_action(
                '<action type="replace"><data><citizenship>French</citizenship>'
                "</data><location>Select p/citizenship from p in ATPList//player;"
                "</location></action>"
            ),
        )
        pre = doc.clone(preserve_ids=True)  # now French
        apply_action(doc, action)  # -> USA
        report = CoverageReport()
        compensator.compensate("op1", doc, pre, report)
        # The stale handler restored Spanish, not French.
        assert report.wrong_state == 1
        assert "Spanish" in canonical(doc)

    def test_query_has_no_handler(self):
        doc = parse_document(self.ATP, name="ATPList")
        action = parse_action(
            '<action type="query"><location>Select p from p in ATPList//player;'
            "</location></action>"
        )
        assert StaticCompensator.derive_handler(action, doc) is None

    def test_uncovered_query_with_materialization_is_wrong(self):
        axml = AXMLDocument.from_xml(
            "<D><item><axml:sc mode='replace' methodName='m'>"
            "<stock>1</stock></axml:sc></item></D>",
            name="D",
        )
        pre = axml.document.clone(preserve_ids=True)
        q = parse_select("Select i/stock from i in D//item;")
        MaterializationEngine(
            axml, lambda c, p: InvocationOutcome(["<stock>2</stock>"])
        ).materialize_for_query(q)
        report = CoverageReport()
        StaticCompensator().compensate("q1", axml.document, pre, report)
        assert report.uncovered == 1
        assert report.wrong_state == 1

    def test_coverage_rates(self):
        report = CoverageReport(operations=4, covered=2, uncovered=2,
                                restored_exactly=1, wrong_state=3)
        assert report.coverage_rate == 0.5
        assert report.correctness_rate == 0.25


class TestSnapshotRollback:
    def _doc(self):
        return AXMLDocument.from_xml("<S><a>1</a><b>2</b></S>", name="S")

    def test_rollback_restores(self):
        doc = self._doc()
        pre = canonical(doc.document)
        rollback = SnapshotRollback()
        rollback.guard("T1", doc)
        apply_action(
            doc.document,
            parse_action(
                '<action type="delete"><location>Select s/a from s in S;'
                "</location></action>"
            ),
        )
        assert rollback.rollback("T1", doc)
        assert canonical(doc.document) == pre

    def test_guard_idempotent(self):
        doc = self._doc()
        rollback = SnapshotRollback()
        rollback.guard("T1", doc)
        rollback.guard("T1", doc)
        assert rollback.stats.snapshots_taken == 1

    def test_rollback_without_snapshot(self):
        assert not SnapshotRollback().rollback("T1", self._doc())

    def test_release_on_commit(self):
        doc = self._doc()
        rollback = SnapshotRollback()
        rollback.guard("T1", doc)
        assert rollback.release("T1") == 1
        assert not rollback.rollback("T1", doc)

    def test_cost_scales_with_document_size(self):
        small, big = SnapshotRollback(), SnapshotRollback()
        small.guard("T", self._doc())
        big_doc = AXMLDocument.from_xml(
            "<S>" + "<x>y</x>" * 200 + "</S>", name="S"
        )
        big.guard("T", big_doc)
        assert big.stats.approx_bytes > 10 * small.stats.approx_bytes

    def test_node_ids_survive_rollback(self):
        doc = self._doc()
        a_id = doc.document.root.child_elements()[0].node_id
        rollback = SnapshotRollback()
        rollback.guard("T1", doc)
        apply_action(
            doc.document,
            parse_action(
                '<action type="delete"><location>Select s/a from s in S;'
                "</location></action>"
            ),
        )
        rollback.rollback("T1", doc)
        assert doc.document.get_node(a_id).is_attached()


class TestTwoPhaseCommit:
    def _network(self, peers=("A", "B", "C")):
        network = SimNetwork()
        for peer_id in peers:
            StubPeer(peer_id, network)
        return network

    def test_all_alive_commits(self):
        network = self._network()
        coordinator = TwoPhaseCoordinator(network, "A")
        record = coordinator.run("T1", ["B", "C"])
        assert record.outcome is TwoPhaseOutcome.COMMITTED

    def test_no_vote_aborts(self):
        network = self._network()
        coordinator = TwoPhaseCoordinator(network, "A")
        coordinator.force_no_vote("B")
        record = coordinator.run("T1", ["B", "C"])
        assert record.outcome is TwoPhaseOutcome.ABORTED
        assert record.refused == ["B"]

    def test_dead_at_prepare_aborts(self):
        network = self._network()
        network.disconnect("C")
        record = TwoPhaseCoordinator(network, "A").run("T1", ["B", "C"])
        assert record.outcome is TwoPhaseOutcome.ABORTED
        assert record.unreachable_at_prepare == ["C"]

    def test_death_between_prepare_and_decision_blocks(self):
        network = self._network()
        coordinator = TwoPhaseCoordinator(network, "A")

        # B dies right after voting: simulate by disconnecting between
        # phases using a patched run — here we disconnect during phase 2
        # by pre-scheduling at the time phase 2 starts.
        original_is_alive = network.is_alive
        calls = {"n": 0}

        def flaky_is_alive(peer_id):
            calls["n"] += 1
            if peer_id == "B" and calls["n"] > 2:  # dead by decision time
                return False
            return original_is_alive(peer_id)

        network.is_alive = flaky_is_alive
        record = coordinator.run("T1", ["B", "C"])
        assert record.outcome is TwoPhaseOutcome.BLOCKED
        assert record.undelivered_decisions == ["B"]
        assert coordinator.blocked_rate() == 1.0
