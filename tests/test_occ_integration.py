"""Integration of optimistic validation with peers/managers."""

import pytest

from repro.axml.document import AXMLDocument
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.txn.occ import ValidationConflict
from repro.xmlstore.serializer import canonical

REPLACE = (
    '<action type="replace"><data><price>{v}</price></data>'
    "<location>Select i/price from i in Shop//item;</location></action>"
)
QUERY = (
    '<action type="query"><location>Select i/price from i in Shop//item;'
    "</location></action>"
)


@pytest.fixture
def peer():
    network = SimNetwork()
    p = AXMLPeer("AP1", network, occ=True)
    p.host_document(
        AXMLDocument.from_xml("<Shop><item><price>10</price></item></Shop>", name="Shop")
    )
    return p


class TestOccOnPeer:
    def test_serial_transactions_commit(self, peer):
        for value in (11, 12, 13):
            txn = peer.begin_transaction()
            peer.submit(txn.txn_id, REPLACE.format(v=value))
            peer.commit(txn.txn_id)
        assert "13" in peer.get_axml_document("Shop").to_xml()

    def test_stale_reader_aborts_and_compensates(self, peer):
        reader = peer.begin_transaction()
        writer = peer.begin_transaction()
        peer.submit(reader.txn_id, QUERY)           # reader reads price
        peer.submit(writer.txn_id, REPLACE.format(v=50))
        peer.submit(reader.txn_id, REPLACE.format(v=70))  # reader also writes
        peer.commit(writer.txn_id)                  # first committer wins
        with pytest.raises(ValidationConflict):
            peer.commit(reader.txn_id)
        # the loser's write was compensated away; the winner's stands
        text = peer.get_axml_document("Shop").to_xml()
        assert "50" in text and "70" not in text
        assert peer.manager.contexts[reader.txn_id].is_finished

    def test_loser_can_retry(self, peer):
        reader = peer.begin_transaction()
        writer = peer.begin_transaction()
        peer.submit(reader.txn_id, QUERY)
        peer.submit(writer.txn_id, REPLACE.format(v=50))
        peer.commit(writer.txn_id)
        with pytest.raises(ValidationConflict):
            peer.submit(reader.txn_id, REPLACE.format(v=70))
            peer.commit(reader.txn_id)
        retry = peer.begin_transaction()
        peer.submit(retry.txn_id, REPLACE.format(v=70))
        peer.commit(retry.txn_id)
        assert "70" in peer.get_axml_document("Shop").to_xml()

    def test_disjoint_writers_both_commit(self, peer):
        doc = peer.get_axml_document("Shop")
        doc.document.root.new_element("item").new_element("price").new_text("20")
        t1 = peer.begin_transaction()
        t2 = peer.begin_transaction()
        peer.submit(
            t1.txn_id,
            '<action type="replace"><data><price>11</price></data>'
            "<location>Select i/price from i in Shop//item "
            "where i/price = 10;</location></action>",
        )
        peer.submit(
            t2.txn_id,
            '<action type="replace"><data><price>21</price></data>'
            "<location>Select i/price from i in Shop//item "
            "where i/price = 20;</location></action>",
        )
        peer.commit(t1.txn_id)
        peer.commit(t2.txn_id)
        text = doc.to_xml()
        assert "11" in text and "21" in text

    def test_abort_releases_tracking(self, peer):
        txn = peer.begin_transaction()
        peer.submit(txn.txn_id, REPLACE.format(v=50))
        peer.abort(txn.txn_id)
        assert peer.manager.validator.active_transactions() == []
        fresh = peer.begin_transaction()
        peer.submit(fresh.txn_id, REPLACE.format(v=60))
        peer.commit(fresh.txn_id)

    def test_occ_off_by_default(self):
        network = SimNetwork()
        plain = AXMLPeer("P", network)
        assert plain.manager.validator is None
