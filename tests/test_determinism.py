"""Cross-process determinism of seeded runs.

Peer RNG streams used to be derived with ``seed ^ hash(peer_id)``;
``hash(str)`` is salted per process (PYTHONHASHSEED), so the "same"
seeded run produced different fault patterns in different interpreter
processes.  The regression test runs one fault-probability scenario in
two subprocesses with *different* hash seeds and asserts the protocol
traces come out identical.
"""

import os
import pathlib
import subprocess
import sys

from repro.sim.rng import SeededRng, stable_seed

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: A run whose trace depends on per-peer RNG draws: three workers host
#: flaky services (fault_probability=0.5 drawn from the hosting peer's
#: RNG); eight transactions invoke them until one faults.
SCENARIO_SCRIPT = """
from repro.axml.document import AXMLDocument
from repro.errors import ServiceFault
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.services.descriptor import ServiceDescriptor
from repro.services.service import FunctionService
from repro.sim.trace import TraceRecorder

network = SimNetwork()
origin = AXMLPeer("alpha", network, seed=11)
workers = []
for name in ("beta", "gamma", "delta"):
    peer = AXMLPeer(name, network, seed=11)
    peer.host_document(
        AXMLDocument.from_xml("<D><items/></D>", name="D_" + name)
    )
    peer.host_service(
        FunctionService(
            ServiceDescriptor("flaky_" + name, kind="function"),
            body=lambda params: ["<ok/>"],
            fault_name="Flaky",
            fault_probability=0.5,
        )
    )
    workers.append(peer)

recorder = TraceRecorder(network)
for _ in range(8):
    txn = origin.begin_transaction()
    try:
        for peer in workers:
            origin.invoke(txn.txn_id, peer.peer_id, "flaky_" + peer.peer_id, {})
    except ServiceFault:
        continue  # backward recovery already aborted the transaction
    origin.commit(txn.txn_id)

print("\\n".join(recorder.shorthand()))
"""


def _run_with_hash_seed(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-c", SCENARIO_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestStableSeed:
    def test_stable_across_calls_and_labels(self):
        assert stable_seed(42, "AP1") == stable_seed(42, "AP1")
        assert stable_seed(42, "AP1") != stable_seed(42, "AP2")
        assert stable_seed(1, "AP1") != stable_seed(2, "AP1")

    def test_fits_rng_seed_range(self):
        for label in ("AP1", "a-very-long-peer-identifier", ""):
            seed = stable_seed(2**31 - 1, label)
            assert 0 <= seed <= 0x7FFFFFFF
            SeededRng(seed)  # accepted as-is


class TestCrossProcessDeterminism:
    def test_trace_identical_under_different_hash_seeds(self):
        first = _run_with_hash_seed("0")
        second = _run_with_hash_seed("4242")
        assert first == second
        # The scenario must actually exercise RNG-dependent branches,
        # otherwise this test would pass vacuously.
        assert "fault:" in first
        assert "invoke:" in first
