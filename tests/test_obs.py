"""Unit tests for the observability layer (repro.obs)."""

import json
import math

import pytest

from repro.obs import (
    Histogram,
    Span,
    SpanCollector,
    render_report,
    run_summary,
    sanitize_for_json,
    stable_json,
    write_json_artifact,
)
from repro.sim.metrics import MetricsCollector


class TestHistogramEdges:
    def test_empty_histogram_is_all_none(self):
        h = Histogram("empty")
        assert h.count == 0
        assert h.min is None and h.max is None and h.mean is None
        assert h.percentile(50) is None
        assert h.p50 is None and h.p95 is None
        summary = h.summary()
        assert summary["p50"] is None and summary["max"] is None
        # The summary must be strict-JSON serializable as-is.
        json.loads(json.dumps(summary, allow_nan=False))

    def test_single_sample_is_every_percentile(self):
        h = Histogram()
        h.record(3.5)
        for p in (0, 1, 50, 95, 99, 100):
            assert h.percentile(p) == 3.5
        assert h.min == h.max == h.mean == 3.5

    def test_ties_collapse(self):
        h = Histogram()
        for v in (2.0, 2.0, 2.0, 2.0, 9.0):
            h.record(v)
        assert h.p50 == 2.0
        assert h.percentile(80) == 2.0
        assert h.p95 == 9.0

    def test_nearest_rank_on_1_to_100(self):
        h = Histogram()
        for v in range(1, 101):
            h.record(float(v))
        assert h.p50 == 50.0
        assert h.p95 == 95.0
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0

    def test_non_finite_rejected(self):
        h = Histogram("strict")
        with pytest.raises(ValueError):
            h.record(float("inf"))
        with pytest.raises(ValueError):
            h.record(float("nan"))
        assert h.count == 0

    def test_percentile_out_of_range_rejected(self):
        h = Histogram()
        h.record(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_record_after_percentile_invalidates_cache(self):
        h = Histogram()
        h.record(10.0)
        assert h.p50 == 10.0
        h.record(1.0)
        assert h.p50 == 1.0

    def test_merge_and_round_trip(self):
        a, b = Histogram("lat"), Histogram("lat")
        a.record(1.0)
        b.record(3.0)
        a.merge(b)
        assert a.count == 2 and a.max == 3.0
        rebuilt = Histogram.from_dict(a.to_dict())
        assert rebuilt.name == "lat"
        assert rebuilt.values == a.values
        assert rebuilt.summary() == a.summary()


class TestSpanCollector:
    def test_stack_parenting(self):
        spans = SpanCollector()
        outer = spans.start("outer", "invoke")
        inner = spans.start("inner", "rpc")
        assert inner.parent_id == outer.span_id
        assert spans.current() is inner
        spans.end(inner)
        spans.end(outer)
        assert spans.current() is None
        assert spans.children_of(outer) == [inner]

    def test_detached_spans_stay_off_stack(self):
        spans = SpanCollector()
        txn = spans.start("txn:T1", "transaction", detached=True)
        child = spans.start("invoke:S1", "invoke", parent=txn)
        assert spans.current() is child  # the detached span never stacked
        assert child.parent_id == txn.span_id
        spans.end(child)
        spans.end(txn, status="committed")
        assert txn.status == "committed"

    def test_end_is_idempotent(self):
        clock = [0.0]
        spans = SpanCollector(now=lambda: clock[0])
        span = spans.start("s", "rpc")
        clock[0] = 1.0
        spans.end(span, status="ok")
        clock[0] = 9.0
        spans.end(span, status="error")  # ignored: already finished
        assert span.status == "ok"
        assert span.duration == 1.0

    def test_context_manager_captures_exception_type(self):
        spans = SpanCollector()
        with pytest.raises(RuntimeError):
            with spans.span("boom", "service"):
                raise RuntimeError("x")
        assert spans.spans[0].status == "error:RuntimeError"
        assert spans.spans[0].finished

    def test_slowest_orders_by_duration(self):
        clock = [0.0]
        spans = SpanCollector(now=lambda: clock[0])
        for i, took in enumerate((0.3, 0.1, 0.7)):
            clock[0] = 0.0
            span = spans.start(f"s{i}", "rpc")
            clock[0] = took
            spans.end(span)
        names = [s.name for s in spans.slowest(2)]
        assert names == ["s2", "s0"]
        assert [s.name for s in spans.slowest(kind="none")] == []

    def test_summary_counts(self):
        spans = SpanCollector()
        spans.end(spans.start("a", "rpc"), status="ok")
        spans.start("b", "rpc")  # left open
        summary = spans.summary()
        assert summary["total"] == 2
        assert summary["open"] == 1
        assert summary["by_kind"] == {"rpc": 2}

    def test_json_round_trip(self):
        clock = [0.0]
        spans = SpanCollector(now=lambda: clock[0])
        parent = spans.start("p", "invoke", peer="AP1", txn_id="T1", target="AP2")
        clock[0] = 0.5
        spans.end(parent, status="fault", fault_name="Crash")
        text = spans.to_json()
        data = json.loads(text)  # must be strict JSON
        assert data["summary"]["total"] == 1
        rebuilt = SpanCollector.from_json(text)
        assert len(rebuilt) == 1
        clone = rebuilt.spans[0]
        assert clone.to_dict() == parent.to_dict()
        # New spans in the rebuilt collector keep ids unique.
        assert rebuilt.start("q", "rpc").span_id > clone.span_id

    def test_span_str_renders(self):
        span = Span(1, "s", "rpc")
        assert "running" in str(span)


class TestExport:
    def test_sanitize_replaces_non_finite(self):
        messy = {
            "inf": float("inf"),
            "nan": float("nan"),
            "nested": [1.0, {"neg": float("-inf")}],
            3: "int key",
        }
        clean = sanitize_for_json(messy)
        assert clean["inf"] is None and clean["nan"] is None
        assert clean["nested"][1]["neg"] is None
        assert clean["3"] == "int key"

    def test_stable_json_sorted_and_strict(self):
        text = stable_json({"b": 1, "a": float("inf")})
        assert text.index('"a"') < text.index('"b"')
        assert "Infinity" not in text
        assert json.loads(text) == {"a": None, "b": 1}

    def test_write_json_artifact(self, tmp_path):
        path = tmp_path / "sub" / "artifact.json"
        written = write_json_artifact(str(path), {"x": [1.0, float("nan")]})
        assert written == str(path)
        assert json.loads(path.read_text()) == {"x": [1.0, None]}
        assert path.read_text().endswith("\n")


class TestMetricsHistograms:
    def test_record_value_and_percentiles(self):
        metrics = MetricsCollector()
        for v in (0.1, 0.2, 0.3):
            metrics.record_value("rpc_latency", v)
        assert metrics.p50("rpc_latency") == 0.2
        assert metrics.p95("rpc_latency") == 0.3
        assert metrics.max_value("rpc_latency") == 0.3

    def test_unsampled_histograms_are_none(self):
        metrics = MetricsCollector()
        assert metrics.p50("nothing") is None
        assert metrics.p95("nothing") is None
        assert metrics.max_value("nothing") is None

    def test_detection_feeds_latency_histogram(self):
        metrics = MetricsCollector()
        metrics.record_detection("P", "Q", 1.0, 1.5)
        assert metrics.histogram("detection_latency").count == 1
        assert metrics.detection_latency() == pytest.approx(0.5)

    def test_metrics_json_round_trip(self):
        metrics = MetricsCollector()
        metrics.incr("messages")
        metrics.record_message("abort")
        metrics.record_value("rpc_latency", 0.01)
        metrics.record_value("rpc_latency", 0.03)
        metrics.record_detection("AP3", "AP6", 1.0, 1.01)
        metrics.record_txn_outcome("T1", "aborted")
        text = metrics.to_json()
        assert "Infinity" not in text and "NaN" not in text
        data = json.loads(text)
        assert data["histograms"]["rpc_latency"]["p50"] == 0.01
        assert data["histograms"]["rpc_latency"]["p95"] == 0.03
        rebuilt = MetricsCollector.from_json(text)
        assert rebuilt.get("messages.abort") == 1
        assert rebuilt.p95("rpc_latency") == 0.03
        # Detections round-trip without double-recording the histogram.
        assert len(rebuilt.detections) == 1
        assert rebuilt.histogram("detection_latency").count == 1
        assert rebuilt.txn_outcomes == {"T1": "aborted"}
        assert rebuilt.to_json() == text

    def test_empty_collector_exports_null_detection_latency(self):
        data = json.loads(MetricsCollector().to_json())
        assert data["detection_latency"] is None


class TestReport:
    def _populated(self):
        metrics = MetricsCollector()
        metrics.record_message("invoke")
        metrics.record_value("rpc_latency", 0.01)
        metrics.record_txn_outcome("T1", "committed")
        spans = SpanCollector()
        spans.end(spans.start("rpc:S1", "rpc", peer="AP1"))
        return metrics, spans

    def test_run_summary_shape(self):
        metrics, spans = self._populated()
        summary = run_summary(metrics, spans)
        assert summary["outcomes"] == {"committed": 1}
        assert summary["messages"] == {"invoke": 1}
        assert summary["histograms"]["rpc_latency"]["count"] == 1
        assert summary["detection_latency"] is None
        assert summary["spans"]["total"] == 1
        assert summary["slowest_spans"][0]["name"] == "rpc:S1"
        json.dumps(summary, allow_nan=False)

    def test_render_report_sections(self):
        metrics, spans = self._populated()
        text = render_report(metrics, spans, title="unit report")
        assert "== unit report ==" in text
        assert "-- transaction outcomes --" in text
        assert "-- message breakdown --" in text
        assert "rpc_latency" in text
        assert "-- slowest spans --" in text

    def test_render_report_without_spans(self):
        metrics = MetricsCollector()
        text = render_report(metrics)
        assert "-- spans --" not in text
        assert "(none)" in text
