"""The chaos harness itself: planner, network hook, scheduler InvokeOp,
settlement, shrink + repro files, sweeps and the CLI surface."""

import json

import pytest

from repro.chaos import (
    ChaosConfig,
    FaultPlan,
    FaultPlanner,
    chaos_sweep,
    load_repro_file,
    replay_repro_file,
    run_chaos,
    shrink_and_report,
    shrink_plan,
    write_repro_file,
)
from repro.cli import main
from repro.p2p.network import SimNetwork
from repro.sim.metrics import MetricsCollector
from repro.sim.scheduler import InvokeOp


def _planner(seed, fault_rate=0.5, txns=20):
    providers = [f"AP{i}" for i in range(1, 7)]
    return FaultPlanner(
        seed=seed,
        providers=providers,
        provider_methods={p: f"S{p[2:]}" for p in providers},
        txns=txns,
        fault_rate=fault_rate,
        horizon=3.0,
    )


class TestFaultPlanner:
    def test_same_seed_same_plan(self):
        assert _planner(9).plan() == _planner(9).plan()

    def test_event_count_tracks_fault_rate(self):
        assert len(_planner(1, fault_rate=0.0).plan()) == 0
        assert len(_planner(1, fault_rate=0.5, txns=20).plan()) == 10

    def test_events_target_providers_only(self):
        plan = _planner(4, fault_rate=1.0).plan()
        for event in plan.events:
            if event.peer:
                assert event.peer.startswith("AP")
            if event.trigger:
                assert event.trigger.startswith("AP")

    def test_plan_json_round_trip(self):
        plan = _planner(4, fault_rate=1.0).plan()
        hopped = FaultPlan.from_dict(
            json.loads(json.dumps(plan.to_dict()))
        )
        assert hopped == plan

    def test_without_removes_one_event(self):
        plan = _planner(4, fault_rate=1.0).plan()
        smaller = plan.without(0)
        assert len(smaller) == len(plan) - 1
        assert smaller.events == plan.events[1:]


class TestMessageHook:
    def _network_pair(self):
        import tests.test_p2p_network as netmod

        network = SimNetwork()
        netmod.StubPeer("A", network)
        receiver = netmod.StubPeer("B", network)
        return network, receiver

    def test_drop_verdict_suppresses_delivery(self):
        network, receiver = self._network_pair()
        network.set_message_hook(lambda s, t, m: "drop")
        assert network.notify("A", "B", "hello") is False
        assert receiver.notifications == []
        assert network.metrics.get("messages_chaos_dropped") == 1

    def test_delay_verdict_defers_delivery(self):
        network, receiver = self._network_pair()
        network.set_message_hook(lambda s, t, m: 0.5)
        assert network.notify("A", "B", "hello") is True
        assert receiver.notifications == []  # not yet
        network.events.run_all()
        assert receiver.notifications == ["hello"]
        assert network.metrics.get("messages_chaos_delayed") == 1

    def test_none_verdict_and_no_hook_are_identical(self):
        network, receiver = self._network_pair()
        network.set_message_hook(lambda s, t, m: None)
        assert network.notify("A", "B", "x") is True
        network.set_message_hook(None)
        assert network.notify("A", "B", "y") is True
        assert receiver.notifications == ["x", "y"]
        assert network.metrics.get("messages_chaos_dropped") == 0


class TestHarnessRuns:
    def test_clean_run_has_zero_violations(self):
        result = run_chaos(ChaosConfig(seed=2, txns=8, fault_rate=0.0))
        assert result.ok
        assert all(r.committed for r in result.results)

    def test_faulty_run_still_atomic(self):
        result = run_chaos(ChaosConfig(seed=2, txns=12, fault_rate=0.5))
        assert result.ok, result.violations
        assert len(result.plan) > 0
        assert any(not r.committed for r in result.results)

    def test_invoke_ops_leave_subtree_markers(self):
        # Every committed InvokeOp marker lands once per subtree doc —
        # checked explicitly here, not just via the oracle.
        result = run_chaos(ChaosConfig(seed=2, txns=8, fault_rate=0.0))
        committed = {r.label for r in result.results if r.committed}
        seen = set()
        from repro.chaos.oracle import scan_markers

        for peer_id, peer in result.cluster.peers.items():
            for doc_name, document in peer.documents.items():
                for label, step in scan_markers(document.to_xml()):
                    seen.add((peer_id, doc_name, label, step))
        expected = {
            (e.peer, e.document, e.label, e.step)
            for e in result.expected
            if e.label in committed
        }
        assert seen == expected

    def test_settlement_leaves_no_protocol_state(self):
        result = run_chaos(ChaosConfig(seed=6, txns=10, fault_rate=0.5))
        for peer in result.cluster.peers.values():
            assert not peer.chains
            assert len(peer.manager.log) == 0

    def test_handlers_mode_runs_clean(self):
        result = run_chaos(
            ChaosConfig(seed=4, txns=8, fault_rate=0.3, handlers=True)
        )
        assert result.ok, result.violations

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ValueError):
            ChaosConfig(mutate="nonsense")


class TestSettlementApis:
    def test_resolve_in_doubt_matches_decision(self):
        result = run_chaos(ChaosConfig(seed=2, txns=4, fault_rate=0.0))
        origin = result.cluster.peer("C1")
        txn = origin.begin_transaction()
        assert origin.resolve_in_doubt(txn.txn_id, committed=False) == "aborted"
        # Terminal states are sticky: a second resolve is a no-op.
        assert origin.resolve_in_doubt(txn.txn_id, committed=True) == "noop"
        assert origin.resolve_in_doubt("no-such-txn", committed=True) == "noop"

    def test_forget_transaction_clears_chain(self):
        result = run_chaos(ChaosConfig(seed=2, txns=4, fault_rate=0.0))
        origin = result.cluster.peer("C1")
        txn = origin.begin_transaction()
        assert txn.txn_id in origin.chains
        origin.resolve_in_doubt(txn.txn_id, committed=False)
        origin.forget_transaction(txn.txn_id)
        assert txn.txn_id not in origin.chains


class TestShrinkAndRepro:
    CONFIG = ChaosConfig(seed=7, fault_rate=0.2, mutate="skip_undo")

    def test_shrink_minimizes_and_stays_failing(self):
        failing = run_chaos(self.CONFIG)
        assert not failing.ok
        report = shrink_plan(self.CONFIG, failing.plan)
        assert len(report.result.plan) <= len(failing.plan)
        assert not report.result.ok
        assert report.runs >= 1

    def test_shrink_rejects_passing_plan(self):
        config = ChaosConfig(seed=2, txns=6, fault_rate=0.0)
        with pytest.raises(ValueError):
            shrink_plan(config, FaultPlan(()))

    def test_repro_file_round_trip(self, tmp_path):
        failing = run_chaos(self.CONFIG)
        path = tmp_path / "repro.json"
        report = shrink_and_report(self.CONFIG, failing.plan, str(path))
        raw = json.loads(path.read_text())
        assert raw["version"] == 1
        config, plan = load_repro_file(str(path))
        assert config == self.CONFIG
        assert plan == report.result.plan

        replayed = replay_repro_file(str(path))
        assert not replayed.ok
        assert [v.to_dict() for v in replayed.violations] == raw["violations"]

    def test_repro_file_version_check(self, tmp_path):
        failing = run_chaos(self.CONFIG)
        path = tmp_path / "repro.json"
        write_repro_file(str(path), failing)
        data = json.loads(path.read_text())
        data["version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError):
            load_repro_file(str(path))


class TestSweep:
    def test_sweep_counts_and_metrics(self):
        metrics = MetricsCollector()
        table, failures = chaos_sweep(
            ChaosConfig(txns=6),
            seeds=range(2),
            concurrencies=(2,),
            fault_rates=(0.0, 0.4),
            metrics=metrics,
        )
        assert failures == []
        assert metrics.get("chaos_runs") == 4
        assert metrics.get("chaos_violations") == 0
        assert len(table.rows) == 4


class TestChaosCli:
    def test_single_run_exit_zero_and_json(self, tmp_path, capsys):
        out = tmp_path / "summary.json"
        code = main([
            "chaos", "--seed", "3", "--txns", "6",
            "--fault-rate", "0.2", "--json-out", str(out),
        ])
        assert code == 0
        assert json.loads(out.read_text())["violations"] == []
        assert "0 violations" in capsys.readouterr().out

    def test_cli_summary_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for out in (a, b):
            assert main([
                "chaos", "--seed", "5", "--txns", "6", "--json-out", str(out),
            ]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_mutated_run_writes_repro_and_exits_one(self, tmp_path, capsys):
        repro = tmp_path / "repro.json"
        code = main([
            "chaos", "--seed", "7", "--mutate", "skip_undo",
            "--repro-out", str(repro),
        ])
        assert code == 1
        assert repro.exists()
        assert "shrunk schedule" in capsys.readouterr().out
        assert main(["chaos", "--replay", str(repro)]) == 1

    def test_sweep_mode(self, capsys):
        code = main([
            "chaos", "--sweep", "--seeds", "2", "--txns", "6",
            "--fault-rate", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos_runs = 4" in out
        assert "chaos_violations = 0" in out


class TestInvokeOpUnit:
    def test_params_are_canonicalized(self):
        a = InvokeOp("AP1", "S1", {"b": "2", "a": "1"})
        b = InvokeOp("AP1", "S1", (("a", "1"), ("b", "2")))
        assert a == b
        assert a.params_dict == {"a": "1", "b": "2"}
