"""Tests for log persistence and peer rejoin recovery."""

import pytest

from repro.axml.document import AXMLDocument
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.query.parser import parse_action
from repro.services.descriptor import ParamSpec, ServiceDescriptor
from repro.services.service import UpdateService
from repro.txn.operations import TransactionalOperation, build_compensation
from repro.txn.wal import OperationLog
from repro.xmlstore.serializer import canonical


def populate_log(axml):
    log = OperationLog("P1")
    actions = [
        '<action type="insert"><data><tag a="1">t</tag></data>'
        "<location>Select i from i in Shop//item;</location></action>",
        '<action type="replace"><data><price>99</price></data>'
        "<location>Select i/price from i in Shop//item;</location></action>",
        '<action type="delete"><location>Select i/stock from i in '
        "Shop//item;</location></action>",
    ]
    for xml in actions:
        TransactionalOperation("T1", parse_action(xml)).execute(axml, None, log)
    return log


@pytest.fixture
def shop():
    return AXMLDocument.from_xml(
        "<Shop><item><price>10</price><stock>3</stock></item></Shop>", name="Shop"
    )


class TestLogSerialization:
    def test_roundtrip_structure(self, shop):
        log = populate_log(shop)
        restored = OperationLog.from_text(log.to_text())
        assert restored.peer_id == "P1"
        assert len(restored) == len(log)
        for original, copy in zip(log, restored):
            assert copy.seq == original.seq
            assert copy.txn_id == original.txn_id
            assert copy.kind == original.kind
            assert copy.document_name == original.document_name
            assert copy.action_xml == original.action_xml
            assert [r.kind for r in copy.records] == [
                r.kind for r in original.records
            ]

    def test_restored_records_carry_snapshots(self, shop):
        log = populate_log(shop)
        restored = OperationLog.from_text(log.to_text())
        delete_entry = restored.entries_for("T1")[2]
        assert "stock" in delete_entry.records[0].snapshot_xml

    def test_restored_log_compensates(self, shop):
        pre = None
        fresh = AXMLDocument.from_xml(
            "<Shop><item><price>10</price><stock>3</stock></item></Shop>",
            name="Shop",
        )
        pre = canonical(fresh.document)
        # Run the ops on *fresh*, persist the log, restore, compensate.
        log = populate_log(fresh)
        restored = OperationLog.from_text(log.to_text())
        for plan in build_compensation(restored, "T1"):
            plan.execute(fresh.document)
        assert canonical(fresh.document) == pre

    def test_seq_continues_after_restore(self, shop):
        log = populate_log(shop)
        restored = OperationLog.from_text(log.to_text())
        entry = restored.append("T2", "update", "Shop", "<a/>")
        assert entry.seq == len(log) + 1

    def test_empty_log_roundtrip(self):
        log = OperationLog("P")
        restored = OperationLog.from_text(log.to_text())
        assert len(restored) == 0


class TestPeerRejoin:
    def _world(self):
        network = SimNetwork()
        origin = AXMLPeer("Origin", network)
        worker = AXMLPeer("Worker", network)
        worker.host_document(
            AXMLDocument.from_xml("<D><slots/></D>", name="D")
        )
        worker.host_service(
            UpdateService(
                ServiceDescriptor(
                    "book", kind="update", params=(ParamSpec("c"),),
                    target_document="D",
                ),
                '<action type="insert"><data><slot c="$c"/></data>'
                "<location>Select d from d in D//slots;</location></action>",
            )
        )
        return network, origin, worker

    def test_rejoin_compensates_in_flight(self):
        network, origin, worker = self._world()
        pre = canonical(worker.get_axml_document("D").document)
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "x"})
        network.disconnect("Worker")
        # worker comes back: its share was in flight, so it compensates
        compensated = worker.rejoin()
        assert compensated == 1
        assert canonical(worker.get_axml_document("D").document) == pre
        assert network.is_alive("Worker")

    def test_rejoin_after_commit_is_noop(self):
        network, origin, worker = self._world()
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "x"})
        origin.commit(txn.txn_id)
        network.disconnect("Worker")
        assert worker.rejoin() == 0
        assert "slot" in worker.get_axml_document("D").to_xml()

    def test_rejoin_from_persisted_log(self):
        network, origin, worker = self._world()
        pre = canonical(worker.get_axml_document("D").document)
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "x"})
        saved_log = worker.manager.log.to_text()  # "flushed to disk"
        network.disconnect("Worker")
        # simulate a process restart: in-memory state gone, doc + log remain
        worker.manager.contexts.clear()
        worker.manager.log = None
        compensated = worker.rejoin(restored_log_text=saved_log)
        assert compensated == 1
        assert canonical(worker.get_axml_document("D").document) == pre

    def test_rejoin_metric(self):
        network, origin, worker = self._world()
        network.disconnect("Worker")
        worker.rejoin()
        assert network.metrics.get("peer_rejoins") == 1
