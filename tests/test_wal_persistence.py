"""Tests for log persistence and peer rejoin recovery."""

import pytest

from repro.axml.document import AXMLDocument
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.query.parser import parse_action
from repro.services.descriptor import ParamSpec, ServiceDescriptor
from repro.services.service import UpdateService
from repro.txn.operations import TransactionalOperation, build_compensation
from repro.txn.wal import OperationLog
from repro.xmlstore.serializer import canonical


def populate_log(axml):
    log = OperationLog("P1")
    actions = [
        '<action type="insert"><data><tag a="1">t</tag></data>'
        "<location>Select i from i in Shop//item;</location></action>",
        '<action type="replace"><data><price>99</price></data>'
        "<location>Select i/price from i in Shop//item;</location></action>",
        '<action type="delete"><location>Select i/stock from i in '
        "Shop//item;</location></action>",
    ]
    for xml in actions:
        TransactionalOperation("T1", parse_action(xml)).execute(axml, None, log)
    return log


@pytest.fixture
def shop():
    return AXMLDocument.from_xml(
        "<Shop><item><price>10</price><stock>3</stock></item></Shop>", name="Shop"
    )


class TestLogSerialization:
    def test_roundtrip_structure(self, shop):
        log = populate_log(shop)
        restored = OperationLog.from_text(log.to_text())
        assert restored.peer_id == "P1"
        assert len(restored) == len(log)
        for original, copy in zip(log, restored):
            assert copy.seq == original.seq
            assert copy.txn_id == original.txn_id
            assert copy.kind == original.kind
            assert copy.document_name == original.document_name
            assert copy.action_xml == original.action_xml
            assert [r.kind for r in copy.records] == [
                r.kind for r in original.records
            ]

    def test_restored_records_carry_snapshots(self, shop):
        log = populate_log(shop)
        restored = OperationLog.from_text(log.to_text())
        delete_entry = restored.entries_for("T1")[2]
        assert "stock" in delete_entry.records[0].snapshot_xml

    def test_restored_log_compensates(self, shop):
        pre = None
        fresh = AXMLDocument.from_xml(
            "<Shop><item><price>10</price><stock>3</stock></item></Shop>",
            name="Shop",
        )
        pre = canonical(fresh.document)
        # Run the ops on *fresh*, persist the log, restore, compensate.
        log = populate_log(fresh)
        restored = OperationLog.from_text(log.to_text())
        for plan in build_compensation(restored, "T1"):
            plan.execute(fresh.document)
        assert canonical(fresh.document) == pre

    def test_seq_continues_after_restore(self, shop):
        log = populate_log(shop)
        restored = OperationLog.from_text(log.to_text())
        entry = restored.append("T2", "update", "Shop", "<a/>")
        assert entry.seq == len(log) + 1

    def test_empty_log_roundtrip(self):
        log = OperationLog("P")
        restored = OperationLog.from_text(log.to_text())
        assert len(restored) == 0

    def test_zero_record_entry_roundtrip(self):
        log = OperationLog("P")
        log.append("T1", "query", "Shop", "<query>Select i;</query>",
                   records=(), timestamp=1.25)
        restored = OperationLog.from_text(log.to_text())
        entry = restored.entries_for("T1")[0]
        assert entry.records == []
        assert entry.action_xml == "<query>Select i;</query>"
        assert not entry.is_compensatable

    def test_replace_of_replace_roundtrip(self, shop):
        # Nest a ReplaceRecord inside another ReplaceRecord's inserted
        # list and make sure the codec recurses on the way back in.
        from repro.query.update import ReplaceRecord

        log = populate_log(shop)
        replace_entry = log.entries_for("T1")[1]
        inner = replace_entry.records[0]
        assert inner.kind == "replace"
        nested = ReplaceRecord(inner.deleted, [inner])
        log.append("T1", "update", "Shop", "<nested/>", records=[nested])
        restored = OperationLog.from_text(log.to_text())
        copy = restored.entries_for("T1")[-1].records[0]
        assert copy.kind == "replace"
        assert copy.inserted[0].kind == "replace"
        assert copy.inserted[0].deleted.snapshot_xml == inner.deleted.snapshot_xml

    def test_timestamp_repr_roundtrip_is_exact(self):
        log = OperationLog("P")
        stamps = [0.1 + 0.2, 1.0 / 3.0, 123456.78901234567, 0.0]
        for i, stamp in enumerate(stamps):
            log.append("T1", "update", "D", f"<a i='{i}'/>", timestamp=stamp)
        restored = OperationLog.from_text(log.to_text())
        assert [e.timestamp for e in restored] == stamps

    def test_from_text_sorts_by_seq(self, shop):
        # A merged/reordered log text must still compensate in true
        # reverse execution order — from_text re-sorts by seq.
        log = populate_log(shop)
        text = log.to_text()
        from repro.xmlstore.parser import parse_document
        from repro.xmlstore.serializer import serialize

        doc = parse_document(text, name="log")
        entries = doc.root.find_children("entry")
        order = [el.attributes["seq"] for el in entries]
        assert order == ["1", "2", "3"]
        doc.root.children = list(reversed(entries))
        restored = OperationLog.from_text(serialize(doc))
        assert [e.seq for e in restored] == [1, 2, 3]
        assert [e.seq for e in restored.undo_entries("T1")] == [3, 2, 1]

    def test_from_text_rejects_duplicate_seq(self, shop):
        log = populate_log(shop)
        from repro.xmlstore.parser import parse_document
        from repro.xmlstore.serializer import serialize

        doc = parse_document(log.to_text(), name="log")
        entries = doc.root.find_children("entry")
        entries[1].attributes["seq"] = entries[0].attributes["seq"]
        with pytest.raises(ValueError, match="duplicate"):
            OperationLog.from_text(serialize(doc))

    def test_seq_continues_after_restore_and_append(self, shop):
        log = populate_log(shop)
        restored = OperationLog.from_text(log.to_text())
        first = restored.append("T2", "update", "Shop", "<a/>")
        second = restored.append("T2", "update", "Shop", "<b/>")
        assert (first.seq, second.seq) == (len(log) + 1, len(log) + 2)


class TestApproximateBytes:
    def test_nested_records_pay_flat_overhead(self, shop):
        # Every record pays the same +32, at every nesting level: a
        # replace charges itself plus the full accounting of its halves
        # (regression: nested records used to skip the overhead).
        log = populate_log(shop)
        replace_entry = log.entries_for("T1")[1]
        record = replace_entry.records[0]
        assert record.kind == "replace"
        from repro.txn.wal import _record_bytes, entry_bytes

        expected = (
            32
            + _record_bytes(record.deleted)
            + sum(_record_bytes(r) for r in record.inserted)
        )
        assert _record_bytes(record) == expected
        assert record.deleted.kind == "delete"
        assert _record_bytes(record.deleted) == 32 + len(
            record.deleted.snapshot_xml
        )
        assert entry_bytes(replace_entry) == (
            len(replace_entry.action_xml)
            + sum(_record_bytes(r) for r in replace_entry.records)
        )
        assert log.approximate_bytes("T1") == sum(
            entry_bytes(e) for e in log.entries_for("T1")
        )


class TestPeerRejoin:
    def _world(self):
        network = SimNetwork()
        origin = AXMLPeer("Origin", network)
        worker = AXMLPeer("Worker", network)
        worker.host_document(
            AXMLDocument.from_xml("<D><slots/></D>", name="D")
        )
        worker.host_service(
            UpdateService(
                ServiceDescriptor(
                    "book", kind="update", params=(ParamSpec("c"),),
                    target_document="D",
                ),
                '<action type="insert"><data><slot c="$c"/></data>'
                "<location>Select d from d in D//slots;</location></action>",
            )
        )
        return network, origin, worker

    def test_rejoin_compensates_in_flight(self):
        network, origin, worker = self._world()
        pre = canonical(worker.get_axml_document("D").document)
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "x"})
        network.disconnect("Worker")
        # worker comes back: its share was in flight, so it compensates
        compensated = worker.rejoin()
        assert compensated == 1
        assert canonical(worker.get_axml_document("D").document) == pre
        assert network.is_alive("Worker")

    def test_rejoin_after_commit_is_noop(self):
        network, origin, worker = self._world()
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "x"})
        origin.commit(txn.txn_id)
        network.disconnect("Worker")
        assert worker.rejoin() == 0
        assert "slot" in worker.get_axml_document("D").to_xml()

    def test_rejoin_from_persisted_log(self):
        network, origin, worker = self._world()
        pre = canonical(worker.get_axml_document("D").document)
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "x"})
        saved_log = worker.manager.log.to_text()  # "flushed to disk"
        network.disconnect("Worker")
        # simulate a process restart: in-memory state gone, doc + log remain
        worker.manager.contexts.clear()
        worker.manager.log = None
        compensated = worker.rejoin(restored_log_text=saved_log)
        assert compensated == 1
        assert canonical(worker.get_axml_document("D").document) == pre

    def test_rejoin_metric(self):
        network, origin, worker = self._world()
        network.disconnect("Worker")
        worker.rejoin()
        assert network.metrics.get("peer_rejoins") == 1
