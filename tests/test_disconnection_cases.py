"""Integration tests for the §3.3 disconnection cases (a)-(d),
chaining vs the naive baseline."""

import pytest

from repro.errors import PeerDisconnected
from repro.sim.scenarios import FIG2_TOPOLOGY, build_fig2, run_root_transaction
from repro.txn.disconnection import (
    run_case_a_leaf_disconnection,
    run_case_b_parent_disconnection,
    run_case_c_child_disconnection,
    run_case_d_sibling_disconnection,
)
from repro.txn.recovery import DISCONNECT_FAULT, FaultPolicy


def fig2_with_replacement(**kwargs):
    """Fig. 2 plus an idle replacement peer APX mirroring S3/D3."""
    s = build_fig2(extra_peers=("APX",), **kwargs)
    s.replication.replicate_service("S3", "APX")
    s.replication.replicate_document("D3", "APX")
    return s


class TestCaseALeaf:
    def test_backward_when_no_policy(self):
        s = build_fig2()
        txn, _ = run_root_transaction(s)  # completes; now AP6 dies
        s.network.disconnect("AP6")
        origin = s.peer("AP2")
        txn2 = origin.begin_transaction()
        report = run_case_a_leaf_disconnection(origin, txn2.txn_id, "AP6", "S6")
        assert not report.recovered
        assert report.detection_latency is not None

    def test_forward_with_replica_policy(self):
        s = build_fig2(extra_peers=("AP6R",))
        s.replication.replicate_service("S6", "AP6R")
        s.replication.replicate_document("D6", "AP6R")
        s.network.disconnect("AP6")
        parent = s.peer("AP3")
        parent.set_fault_policy(
            "S6",
            [FaultPolicy(fault_names={DISCONNECT_FAULT}, retry_times=1,
                         alternative_peer="AP6R")],
        )
        txn = parent.begin_transaction()
        report = run_case_a_leaf_disconnection(parent, txn.txn_id, "AP6", "S6")
        assert report.recovered
        assert '<entry by="AP6"/>' in s.peer("AP6R").get_axml_document("D6").to_xml()


class TestCaseBParent:
    def _run(self, chaining):
        s = fig2_with_replacement(chaining=chaining)
        s.peer("AP2").set_fault_policy(
            "S3",
            [FaultPolicy(fault_names={DISCONNECT_FAULT}, retry_times=1,
                         alternative_peer="APX")],
        )
        s.injector.disconnect_peer_during("AP3", "AP6", "S6", "after_local_work")
        txn, err = run_root_transaction(s)
        return s, txn, err

    def test_chaining_redirects_and_reuses(self):
        s, txn, err = self._run(chaining=True)
        assert err is None  # AP2 forward-recovered on APX
        assert s.metrics.get("results_redirected") == 1
        assert s.metrics.get("redirected_results_received") == 1
        assert s.metrics.get("invocations_reused") == 1
        # AP6's work survived: its entry is still there and S6 was
        # invoked exactly once.
        assert '<entry by="AP6"/>' in s.peer("AP6").get_axml_document("D6").to_xml()

    def test_naive_discards_work(self):
        s, txn, err = self._run(chaining=False)
        # Recovery still possible through the replica policy...
        assert s.metrics.get("results_redirected") == 0
        assert s.metrics.get("invocations_reused") == 0
        # ...but AP6's completed work was discarded and S6 re-executed.
        assert s.metrics.get("invocations_discarded") >= 1

    def test_chaining_loses_less_effort(self):
        chained, _, _ = self._run(chaining=True)
        naive, _, _ = self._run(chaining=False)
        assert chained.metrics.get("invocations_discarded") < naive.metrics.get(
            "invocations_discarded"
        ) or (
            chained.metrics.get("invocations_reused")
            > naive.metrics.get("invocations_reused")
        )

    def test_redirect_skips_dead_grandparent_to_super_peer(self):
        # AP2 (the grandparent) also dies: AP6 must fall through to AP1*.
        s = build_fig2()
        s.injector.disconnect_peer_during("AP3", "AP6", "S6", "after_local_work")
        s.injector.disconnect_peer_during("AP2", "AP6", "S6", "before_return")
        txn, err = run_root_transaction(s)
        assert s.metrics.get("results_redirected") == 1
        assert (txn.txn_id, "S6") in s.peer("AP1").reusable_results


class TestCaseCChild:
    def test_parent_detects_and_informs_descendants(self):
        s = build_fig2()
        txn, _ = run_root_transaction(s)
        s.network.disconnect("AP3")
        report = run_case_c_child_disconnection(s.peer("AP2"), txn.txn_id)
        assert report.recovered
        assert report.disconnected_peer == "AP3"
        assert report.descendants_informed == 1  # AP6
        assert txn.txn_id in s.peer("AP6").known_doomed

    def test_informed_descendants_stop_wasting_effort(self):
        s = build_fig2()
        txn, _ = run_root_transaction(s)
        s.peer("AP6").add_pending_work(txn.txn_id, units=10, unit_duration=0.1)
        s.network.disconnect("AP3")
        s.peer("AP6").known_doomed.discard(txn.txn_id)
        run_case_c_child_disconnection(s.peer("AP2"), txn.txn_id)
        s.network.events.run_until(s.network.clock.now + 5.0)
        # The DisconnectNotice cancelled the pending units.
        assert s.metrics.get("work_units_done") == 0

    def test_naive_descendants_keep_burning(self):
        s = build_fig2(chaining=False)
        txn, _ = run_root_transaction(s)
        s.peer("AP6").add_pending_work(txn.txn_id, units=10, unit_duration=0.1)
        s.peer("AP6").known_doomed.add(txn.txn_id)  # ground truth: doomed
        s.network.disconnect("AP3")
        run_case_c_child_disconnection(s.peer("AP2"), txn.txn_id)
        s.network.events.run_until(s.network.clock.now + 5.0)
        assert s.metrics.get("work_units_wasted") == 10

    def test_alive_children_not_flagged(self):
        s = build_fig2()
        txn, _ = run_root_transaction(s)
        report = run_case_c_child_disconnection(s.peer("AP2"), txn.txn_id)
        assert not report.recovered
        assert report.disconnected_peer == ""


class TestCaseDSibling:
    def test_sibling_notifies_parent_and_children(self):
        s = build_fig2()
        txn, _ = run_root_transaction(s)
        s.network.disconnect("AP3")
        report = run_case_d_sibling_disconnection(s.peer("AP4"), txn.txn_id, "AP3")
        # AP2 (parent of AP3) and AP6 (child of AP3) both notified.
        assert report.descendants_informed == 2
        assert txn.txn_id in s.peer("AP2").known_doomed
        assert txn.txn_id in s.peer("AP6").known_doomed

    def test_false_alarm_checked_by_ping(self):
        s = build_fig2()
        txn, _ = run_root_transaction(s)
        report = run_case_d_sibling_disconnection(s.peer("AP4"), txn.txn_id, "AP3")
        assert report.descendants_informed == 0

    def test_naive_sibling_cannot_notify(self):
        s = build_fig2(chaining=False)
        txn, _ = run_root_transaction(s)
        s.network.disconnect("AP3")
        s.peer("AP4").report_stream_timeout(txn.txn_id, "AP3")
        assert txn.txn_id not in s.peer("AP6").known_doomed


class TestDetectionLatency:
    def test_chaining_detects_before_parent_timeout(self):
        """(b): with chaining, AP6 detects AP3's death at return time —
        long before AP2 would notice by pinging."""
        s = build_fig2()
        s.injector.disconnect_peer_during("AP3", "AP6", "S6", "after_local_work")
        run_root_transaction(s)
        latency = s.metrics.detection_latency("AP3")
        assert latency is not None
        assert latency <= 2 * s.network.hop_latency
