"""WAL shipping, deterministic failover, and resync (docs/REPLICATION.md).

These pin the replication subsystem's protocol-level behaviour: frames
ship on commit and carry acked high-water marks, failover picks the
most-caught-up replica deterministically, a lagging replica catches up
by replaying its inbox, and sibling-share frames are deferred — never
dropped — while the receiver's own share is in doubt.
"""

import pytest

from repro.axml.document import AXMLDocument
from repro.chaos import ChaosConfig, run_chaos
from repro.chaos.oracle import AtomicityOracle
from repro.chaos.shrink import summary_text
from repro.p2p.chain import PeerChain
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.p2p.replication import ReplicationManager
from repro.services.descriptor import ParamSpec, ServiceDescriptor
from repro.services.service import UpdateService
from repro.txn.recovery import DISCONNECT_FAULT, FaultPolicy
from repro.txn.transaction import Transaction, TransactionState
from repro.txn.wal import LogEntry

SHOP2 = "<Shop2><item id='1'><price>10</price><stock>3</stock></item></Shop2>"

SET_PRICE = (
    '<action type="replace"><data><price>$price</price></data>'
    "<location>Select i/price from i in Shop2//item;</location></action>"
)

INSERT_FLAG = (
    '<action type="insert"><data><shipped/></data>'
    "<location>Select i from i in Shop2//item;</location></action>"
)


def make_cluster(replicas=("AP3",), ship_batch=1):
    """AP1 (origin) + AP2 (primary for Shop2/setPrice) + replica peers."""
    network = SimNetwork()
    replication = ReplicationManager(network, ship_batch=ship_batch)
    peers = {
        "AP1": AXMLPeer("AP1", network),
        "AP2": AXMLPeer("AP2", network),
    }
    peers["AP2"].host_document(AXMLDocument.from_xml(SHOP2, name="Shop2"))
    peers["AP2"].host_service(
        UpdateService(
            ServiceDescriptor(
                "setPrice", kind="update", params=(ParamSpec("price"),),
                target_document="Shop2",
            ),
            SET_PRICE,
        )
    )
    replication.register_primary("Shop2", "AP2")
    replication.register_service("setPrice", "AP2")
    for peer_id in replicas:
        peers[peer_id] = AXMLPeer(peer_id, network)
        replication.replicate_document("Shop2", peer_id)
        replication.replicate_service("setPrice", peer_id)
    return network, replication, peers


def retry_policy():
    return [FaultPolicy(fault_names={DISCONNECT_FAULT}, retry_times=1)]


class TestWalShipping:
    def test_commit_ships_committed_entries_to_replicas(self):
        network, replication, peers = make_cluster()
        txn = peers["AP1"].begin_transaction()
        peers["AP1"].invoke(txn.txn_id, "AP2", "setPrice", {"price": "88"})
        assert "88" not in peers["AP3"].get_axml_document("Shop2").to_xml()
        peers["AP1"].commit(txn.txn_id)
        assert "88" in peers["AP3"].get_axml_document("Shop2").to_xml()
        assert network.metrics.get("ship_frames") >= 1
        assert network.metrics.get("ship_bytes") > 0

    def test_ack_advances_high_water_mark(self):
        network, replication, peers = make_cluster()
        txn = peers["AP1"].begin_transaction()
        peers["AP1"].invoke(txn.txn_id, "AP2", "setPrice", {"price": "88"})
        peers["AP1"].commit(txn.txn_id)
        channel = replication._channel("AP2", "AP3")
        assert channel.shipped_seq > 0
        assert channel.acked_seq == channel.shipped_seq
        assert channel.unacked == []

    def test_ship_batch_buffers_until_full(self):
        network, replication, peers = make_cluster(ship_batch=2)
        txn = peers["AP1"].begin_transaction()
        peers["AP1"].invoke(txn.txn_id, "AP2", "setPrice", {"price": "21"})
        peers["AP1"].commit(txn.txn_id)
        # One committed entry < batch size: buffered, not on the wire.
        assert "21" not in peers["AP3"].get_axml_document("Shop2").to_xml()
        assert replication._channel("AP2", "AP3").pending
        txn2 = peers["AP1"].begin_transaction()
        peers["AP1"].invoke(txn2.txn_id, "AP2", "setPrice", {"price": "22"})
        peers["AP1"].commit(txn2.txn_id)
        # Second entry fills the batch: both frames ship together.
        assert "22" in peers["AP3"].get_axml_document("Shop2").to_xml()
        assert not replication._channel("AP2", "AP3").pending

    def test_settle_flushes_partial_batches(self):
        network, replication, peers = make_cluster(ship_batch=4)
        txn = peers["AP1"].begin_transaction()
        peers["AP1"].invoke(txn.txn_id, "AP2", "setPrice", {"price": "33"})
        peers["AP1"].commit(txn.txn_id)
        assert "33" not in peers["AP3"].get_axml_document("Shop2").to_xml()
        replication.settle()
        assert "33" in peers["AP3"].get_axml_document("Shop2").to_xml()

    def test_failed_ship_requeues_for_retry(self):
        network, replication, peers = make_cluster()
        network.disconnect("AP3")
        txn = peers["AP1"].begin_transaction()
        peers["AP1"].invoke(txn.txn_id, "AP2", "setPrice", {"price": "44"})
        peers["AP1"].commit(txn.txn_id)
        # Receiver dead: the frame must be re-queued, never dropped.
        assert network.metrics.get("ship_failures") >= 1
        assert replication._channel("AP2", "AP3").pending
        peers["AP3"].rejoin()
        replication.settle()
        assert "44" in peers["AP3"].get_axml_document("Shop2").to_xml()


class TestDeterministicFailoverSelection:
    def test_most_caught_up_replica_wins(self):
        network, replication, peers = make_cluster(replicas=("AP3", "AP4"))
        # AP4 is strictly more caught up with AP2's WAL than AP3.
        replication._channel("AP2", "AP3").applied_seq = 1
        replication._channel("AP2", "AP4").applied_seq = 5
        network.disconnect("AP2")
        assert replication.select_failover("AP2", "setPrice") == "AP4"
        assert network.metrics.get("stale_reads_prevented") == 1

    def test_tie_breaks_by_peer_id_not_registration_order(self):
        network, replication, peers = make_cluster(replicas=("AP4", "AP3"))
        network.disconnect("AP2")
        # Equal catch-up: lexicographically smallest peer id wins even
        # though AP4 was registered first.
        assert replication.select_failover("AP2", "setPrice") == "AP3"

    def test_selection_skips_dead_replicas(self):
        network, replication, peers = make_cluster(replicas=("AP3", "AP4"))
        replication._channel("AP2", "AP3").applied_seq = 9
        network.disconnect("AP2")
        network.disconnect("AP3")
        assert replication.select_failover("AP2", "setPrice") == "AP4"

    def test_promotion_moves_primary_role(self):
        network, replication, peers = make_cluster()
        network.disconnect("AP2")
        replication.select_failover("AP2", "setPrice")
        assert replication.holders("Shop2")[0] == "AP3"


class TestFailover:
    def test_invoke_fails_over_to_replica(self):
        network, replication, peers = make_cluster()
        peers["AP1"].set_fault_policy("setPrice", retry_policy())
        network.disconnect("AP2")
        txn = peers["AP1"].begin_transaction()
        fragments = peers["AP1"].invoke(
            txn.txn_id, "AP2", "setPrice", {"price": "66"}
        )
        assert fragments
        assert "66" in peers["AP3"].get_axml_document("Shop2").to_xml()
        assert network.metrics.get("failovers") == 1
        assert network.metrics.get("chains_rewritten") == 1
        peers["AP1"].commit(txn.txn_id)
        state = peers["AP3"].manager.context(txn.txn_id).state
        assert state is TransactionState.COMMITTED

    def test_double_failover(self):
        network, replication, peers = make_cluster(replicas=("AP3", "AP4"))
        peers["AP1"].set_fault_policy("setPrice", retry_policy())
        network.disconnect("AP2")
        txn = peers["AP1"].begin_transaction()
        peers["AP1"].invoke(txn.txn_id, "AP2", "setPrice", {"price": "71"})
        peers["AP1"].commit(txn.txn_id)
        assert "71" in peers["AP3"].get_axml_document("Shop2").to_xml()
        # The first failover target dies too: the next transaction must
        # fail over again, to the remaining replica.
        network.disconnect("AP3")
        txn2 = peers["AP1"].begin_transaction()
        peers["AP1"].invoke(txn2.txn_id, "AP2", "setPrice", {"price": "72"})
        peers["AP1"].commit(txn2.txn_id)
        assert "72" in peers["AP4"].get_axml_document("Shop2").to_xml()
        assert network.metrics.get("failovers") == 2
        assert replication.holders("Shop2")[0] == "AP4"

    def test_lagging_replica_mid_batch_catches_up_on_unlag(self):
        network, replication, peers = make_cluster()
        replication.lag_replica("AP3")
        txn = peers["AP1"].begin_transaction()
        peers["AP1"].invoke(txn.txn_id, "AP2", "setPrice", {"price": "51"})
        peers["AP1"].commit(txn.txn_id)
        channel = replication._channel("AP2", "AP3")
        # Delivered but unapplied: the frame waits in the inbox, unacked.
        assert channel.inbox
        assert channel.unacked
        assert "51" not in peers["AP3"].get_axml_document("Shop2").to_xml()
        replication.unlag_replica("AP3")
        assert "51" in peers["AP3"].get_axml_document("Shop2").to_xml()
        assert channel.acked_seq == channel.shipped_seq

    def test_primary_crash_between_flush_and_ack(self):
        network, replication, peers = make_cluster()
        replication.lag_replica("AP3")
        txn = peers["AP1"].begin_transaction()
        peers["AP1"].invoke(txn.txn_id, "AP2", "setPrice", {"price": "61"})
        peers["AP1"].commit(txn.txn_id)
        shipped_lag = len(replication._channel("AP2", "AP3").unacked)
        assert shipped_lag >= 1
        # The primary dies while the shipped frames are still unacked:
        # failover must replay exactly the shipped tail on the target.
        network.disconnect("AP2")
        peers["AP1"].set_fault_policy("setPrice", retry_policy())
        txn2 = peers["AP1"].begin_transaction()
        peers["AP1"].invoke(txn2.txn_id, "AP2", "setPrice", {"price": "62"})
        peers["AP1"].commit(txn2.txn_id)
        replayed = network.metrics.get("failover_replay_entries")
        assert 1 <= replayed <= shipped_lag
        xml = peers["AP3"].get_axml_document("Shop2").to_xml()
        assert "62" in xml and "61" not in xml  # 61 replayed, then replaced


class TestChainRewrite:
    def test_interior_node_substitution(self):
        chain = PeerChain("AP1")
        chain.add_invocation("AP1", "AP2")
        chain.add_invocation("AP2", "AP3")
        assert chain.substitute("AP2", "APX")
        assert not chain.contains("AP2")
        assert chain.children_of("AP1") == ["APX"]
        # The interior node's subtree re-parents onto the substitute.
        assert chain.children_of("APX") == ["AP3"]


class TestDeferredSiblingShareFrames:
    def test_frame_for_in_doubt_sibling_share_is_deferred_not_dropped(self):
        network, replication, peers = make_cluster()
        ap3 = peers["AP3"]
        # AP3 holds its own live (in-doubt) share of T1 touching Shop2.
        ap3.manager.begin(Transaction("T1", "AP1"), parent_peer="AP1")
        ap3.manager.record_service_changes("T1", "Shop2", SET_PRICE, records=[])
        # A sibling operation of the same transaction ships in from AP2.
        entry = LogEntry(
            seq=5, txn_id="T1", kind="update",
            document_name="Shop2", action_xml=INSERT_FLAG,
        )
        channel = replication._channel("AP2", "AP3")
        channel.inbox.append(entry)
        replication._apply_inbox(channel)
        # Not applied (the local decision is pending) — but not lost.
        assert "<shipped" not in ap3.get_axml_document("Shop2").to_xml()
        assert channel.inbox == [entry]
        assert network.metrics.get("ship_deferred_entries") == 1
        ap3.manager.commit_local("T1")
        replication._apply_inbox(channel)
        assert "<shipped" in ap3.get_axml_document("Shop2").to_xml()
        assert channel.inbox == []
        assert channel.applied_seq == 5


class TestResync:
    def test_resync_source_skips_stale_holders(self):
        network, replication, peers = make_cluster(replicas=("AP3", "AP4"))
        # The primary itself is stale (promoted, then crash-restarted):
        # the copy source must be the first alive NON-stale holder.
        replication._stale.add(("Shop2", "AP2"))
        assert replication._resync_source("Shop2", "AP4") == "AP3"
        assert replication._resync_source("Shop2", "AP2") == "AP3"

    def test_rejoined_holder_resynced_at_settle(self):
        network, replication, peers = make_cluster()
        peers["AP3"].crash()
        txn = peers["AP1"].begin_transaction()
        peers["AP1"].invoke(txn.txn_id, "AP2", "setPrice", {"price": "97"})
        peers["AP1"].commit(txn.txn_id)
        peers["AP3"].rejoin()
        replication.settle()
        assert "97" in peers["AP3"].get_axml_document("Shop2").to_xml()
        assert network.metrics.get("replica_resyncs") >= 1


class TestPartialBackwardRecovery:
    def test_abort_invocation_tail_keeps_earlier_share(self):
        network, replication, peers = make_cluster(replicas=())
        ap2 = peers["AP2"]
        txn = ap2.begin_transaction()
        ap2.submit(txn.txn_id, SET_PRICE.replace("$price", "42"))
        boundary = max(
            e.seq for e in ap2.manager.log.entries_for(txn.txn_id)
        )
        ap2.submit(txn.txn_id, SET_PRICE.replace("$price", "77"))
        executed = ap2.manager.abort_invocation_tail(txn.txn_id, boundary)
        assert executed >= 1
        xml = ap2.get_axml_document("Shop2").to_xml()
        assert "42" in xml and "77" not in xml
        # The context stays ACTIVE and the surviving share still commits.
        context = ap2.manager.context(txn.txn_id)
        assert context.state is TransactionState.ACTIVE
        assert [
            e.document_name for e in ap2.manager.log.entries_for(txn.txn_id)
        ] == ["Shop2"]
        ap2.commit(txn.txn_id)
        assert "42" in ap2.get_axml_document("Shop2").to_xml()


class TestOracleReplicaDiverged:
    def test_tampered_replica_is_detected(self):
        network, replication, peers = make_cluster()
        txn = peers["AP1"].begin_transaction()
        peers["AP1"].invoke(txn.txn_id, "AP2", "setPrice", {"price": "13"})
        peers["AP1"].commit(txn.txn_id)
        oracle = AtomicityOracle(outcomes={}, expected=[], txn_ids={})
        assert oracle._check_replicas(peers) == []
        # Tamper with the replica copy behind the protocol's back.
        from repro.query.parser import parse_action
        from repro.query.update import apply_action

        apply_action(
            peers["AP3"].get_axml_document("Shop2").document,
            parse_action(INSERT_FLAG),
        )
        kinds = {v.kind for v in oracle._check_replicas(peers)}
        assert kinds == {"replica_diverged"}


class TestReplicatedChaosDeterminism:
    CONFIG = dict(
        seed=5, txns=6, fault_rate=0.2, crash_rate=0.3,
        replicas=2, durability=True,
    )

    def test_zero_violations_and_byte_identical_reruns(self):
        first = run_chaos(ChaosConfig(**self.CONFIG))
        second = run_chaos(ChaosConfig(**self.CONFIG))
        assert first.violations == []
        assert summary_text(first) == summary_text(second)

    def test_replication_metrics_surface(self):
        result = run_chaos(ChaosConfig(**self.CONFIG))
        counters = result.summary["metrics"]["counters"]
        assert counters.get("ship_frames", 0) > 0
        assert counters.get("ship_bytes", 0) > 0
