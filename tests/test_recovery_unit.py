"""Unit tests for caller-side recovery policies (repro.txn.recovery)."""

import pytest

from repro.axml.faults import parse_fault_handlers
from repro.errors import PeerDisconnected, ServiceFault
from repro.txn.recovery import (
    DISCONNECT_FAULT,
    FaultPolicy,
    attempt_forward_recovery,
    fault_name_of,
    select_policy,
)
from repro.xmlstore.parser import parse_document


class TestFaultNames:
    def test_service_fault(self):
        assert fault_name_of(ServiceFault("Boom")) == "Boom"

    def test_disconnection(self):
        assert fault_name_of(PeerDisconnected("AP3")) == DISCONNECT_FAULT

    def test_other(self):
        from repro.errors import TransactionError

        assert fault_name_of(TransactionError("x")) == "TransactionError"


class TestSelectPolicy:
    def test_specific_beats_catchall(self):
        specific = FaultPolicy(fault_names={"A"})
        catchall = FaultPolicy(fault_names=None)
        assert select_policy([catchall, specific], "A") is specific

    def test_catchall_fallback(self):
        catchall = FaultPolicy(fault_names=None)
        assert select_policy([FaultPolicy(fault_names={"A"}), catchall], "Z") is catchall

    def test_none_when_no_match(self):
        assert select_policy([FaultPolicy(fault_names={"A"})], "Z") is None

    def test_empty(self):
        assert select_policy([], "A") is None


class TestFromHandler:
    def test_retry_handler(self):
        doc = parse_document(
            "<D><axml:sc methodName='m'><axml:catch faultName='F'>"
            "<axml:retry times='4' wait='2.5'>"
            "<axml:sc methodName='m' serviceURL='axml://replica'/>"
            "</axml:retry></axml:catch></axml:sc></D>"
        )
        handler = parse_fault_handlers(doc.root.child_elements()[0])[0]
        policy = FaultPolicy.from_handler(handler)
        assert policy.fault_names == {"F"}
        assert policy.retry_times == 4
        assert policy.retry_wait == 2.5
        assert policy.alternative_peer == "replica"

    def test_catchall_absorbs(self):
        doc = parse_document(
            "<D><axml:sc methodName='m'><axml:catchAll/></axml:sc></D>"
        )
        handler = parse_fault_handlers(doc.root.child_elements()[0])[0]
        policy = FaultPolicy.from_handler(handler)
        assert policy.fault_names is None
        assert policy.absorb


class _Reinvoker:
    """Scripted reinvocation target for forward-recovery unit tests."""

    def __init__(self, failures=0, alive=True):
        self.failures = failures
        self.alive = alive
        self.calls = []

    def __call__(self, peer, method, params):
        self.calls.append(peer)
        if self.failures > 0:
            self.failures -= 1
            raise ServiceFault("Again")
        return ["<ok/>"]


class TestAttemptForwardRecovery:
    def run(self, policy, reinvoker, alive=True, waits=None):
        waits = waits if waits is not None else []
        return attempt_forward_recovery(
            policy,
            "target",
            "m",
            {},
            reinvoke=reinvoker,
            wait=waits.append,
            original_target_alive=lambda: alive,
        )

    def test_absorb(self):
        decision = self.run(FaultPolicy(absorb=True), _Reinvoker())
        assert decision.handled and decision.fragments == []

    def test_hook_handled(self):
        policy = FaultPolicy(hook=lambda p: ["<h/>"])
        decision = self.run(policy, _Reinvoker())
        assert decision.handled and decision.fragments == ["<h/>"]

    def test_hook_unhandled(self):
        policy = FaultPolicy(hook=lambda p: None)
        assert not self.run(policy, _Reinvoker()).handled

    def test_retry_succeeds(self):
        reinvoker = _Reinvoker(failures=1)
        decision = self.run(FaultPolicy(retry_times=3), reinvoker)
        assert decision.handled
        assert decision.retries_used == 2
        assert reinvoker.calls == ["target", "target"]

    def test_retry_exhausted(self):
        decision = self.run(FaultPolicy(retry_times=2), _Reinvoker(failures=99))
        assert not decision.handled

    def test_retry_waits(self):
        waits = []
        self.run(FaultPolicy(retry_times=2, retry_wait=1.5), _Reinvoker(failures=99),
                 waits=waits)
        assert waits == [1.5, 1.5]

    def test_dead_target_uses_alternative(self):
        reinvoker = _Reinvoker()
        decision = self.run(
            FaultPolicy(retry_times=1, alternative_peer="replica"),
            reinvoker,
            alive=False,
        )
        assert decision.handled and decision.used_alternative
        assert reinvoker.calls == ["replica"]

    def test_dead_target_no_alternative_cannot_recover(self):
        reinvoker = _Reinvoker()
        decision = self.run(FaultPolicy(retry_times=3), reinvoker, alive=False)
        assert not decision.handled
        assert reinvoker.calls == []

    def test_second_retry_prefers_alternative(self):
        reinvoker = _Reinvoker(failures=1)
        decision = self.run(
            FaultPolicy(retry_times=2, alternative_peer="replica"), reinvoker
        )
        assert decision.handled
        assert reinvoker.calls == ["target", "replica"]

    def test_zero_retries_unhandled(self):
        assert not self.run(FaultPolicy(retry_times=0), _Reinvoker()).handled

    def test_doomed_retries_do_not_wait(self):
        # Dead target, no replica: no retry can succeed, so no retry may
        # burn wait time either (regression: each doomed retry used to
        # pay retry_wait before skipping itself).
        waits = []
        decision = self.run(
            FaultPolicy(retry_times=5, retry_wait=2.0),
            _Reinvoker(),
            alive=False,
            waits=waits,
        )
        assert not decision.handled
        assert waits == []

    def test_doomed_retries_elapse_no_virtual_time(self):
        from repro.sim.kernel import Clock

        clock = Clock()
        reinvoker = _Reinvoker()
        decision = attempt_forward_recovery(
            FaultPolicy(retry_times=3, retry_wait=1.5),
            "target",
            "m",
            {},
            reinvoke=reinvoker,
            wait=clock.advance,
            original_target_alive=lambda: False,
        )
        assert not decision.handled
        assert reinvoker.calls == []
        assert clock.now == 0.0

    def test_live_target_still_waits_each_retry(self):
        from repro.sim.kernel import Clock

        clock = Clock()
        attempt_forward_recovery(
            FaultPolicy(retry_times=2, retry_wait=1.5),
            "target",
            "m",
            {},
            reinvoke=_Reinvoker(failures=99),
            wait=clock.advance,
            original_target_alive=lambda: True,
        )
        assert clock.now == 3.0
