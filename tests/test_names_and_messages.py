"""Unit tests for QNames (repro.xmlstore.names) and message dataclasses."""

import pytest

from repro.outcome import Outcome, OutcomeStatus
from repro.p2p.messages import (
    AbortMessage,
    CommitMessage,
    CompensationRequest,
    DisconnectNotice,
    InvokeRequest,
    InvokeResult,
    PingMessage,
    RedirectedResult,
)
from repro.xmlstore.names import (
    AXML_PREFIX,
    QName,
    SC_NAME,
    is_valid_name,
)


class TestQName:
    def test_parse_plain(self):
        name = QName.parse("player")
        assert name.local == "player"
        assert name.prefix == ""
        assert name.text == "player"

    def test_parse_prefixed(self):
        name = QName.parse("axml:sc")
        assert name.prefix == AXML_PREFIX
        assert name.local == "sc"
        assert name.text == "axml:sc"
        assert name.is_axml

    def test_parse_malformed(self):
        with pytest.raises(ValueError):
            QName.parse(":broken")
        with pytest.raises(ValueError):
            QName.parse("broken:")

    def test_equality_and_hash(self):
        assert QName.parse("axml:sc") == SC_NAME
        assert hash(QName("a")) == hash(QName("a"))
        assert QName("a") != QName("a", "p")

    def test_str(self):
        assert str(QName("sc", "axml")) == "axml:sc"


class TestIsValidName:
    @pytest.mark.parametrize("good", ["a", "Ab", "_x", "a-b", "a.b", "a1", "x_9"])
    def test_valid(self, good):
        assert is_valid_name(good)

    @pytest.mark.parametrize("bad", ["", "1a", "-a", ".a", "a b", "a<b", "a&b"])
    def test_invalid(self, bad):
        assert not is_valid_name(bad)


class TestMessages:
    def test_invoke_request_defaults(self):
        request = InvokeRequest("T1", "O", "S", "m")
        assert request.params == {}
        assert request.chain_text == ""
        assert request.reused_fragments == {}

    def test_invoke_result_defaults(self):
        result = InvokeResult()
        assert list(result.fragments) == []
        assert list(result.compensations) == []
        assert result.chain_text == ""
        assert result.status is OutcomeStatus.OK

    def test_invoke_result_is_the_unified_outcome(self):
        # InvokeResult and InvocationOutcome are one frozen Outcome now.
        from repro.axml.materialize import InvocationOutcome

        assert InvokeResult is Outcome
        assert InvocationOutcome is Outcome
        assert InvokeResult.KIND == "result"

    def test_messages_carry_fields(self):
        assert AbortMessage("T1", "P", "S5").failed_method == "S5"
        assert CommitMessage("T1", "P").txn_id == "T1"
        assert CompensationRequest("T1", "<compensation/>", "P").plan_xml
        notice = DisconnectNotice("T1", "dead", "seer", 1.5)
        assert (notice.disconnected_peer, notice.detected_by) == ("dead", "seer")
        redirect = RedirectedResult("T1", "child", "dead", "S6", ["<r/>"])
        assert redirect.method_name == "S6"
        assert PingMessage("a", "b").to_peer == "b"

    def test_distinct_requests_do_not_share_mutables(self):
        a, b = InvokeRequest("T1", "O", "S", "m"), InvokeRequest("T2", "O", "S", "m")
        a.params["k"] = "v"
        assert b.params == {}

    def test_outcome_is_frozen(self):
        import dataclasses

        result = InvokeResult(["<x/>"])
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.provider_peer = "P"  # type: ignore[misc]
