"""The atomicity oracle and its mutation proofs.

The oracle is only trustworthy if it *fails* when the protocol is
broken.  Each mutation here disables one piece of the paper's atomicity
machinery — compensation replay, exactly-once application, chain
cleanup — and the test asserts the oracle flags exactly the matching
violation kind.  A final block pins determinism: the same seed produces
a byte-identical run summary.
"""

from repro.chaos import (
    AtomicityOracle,
    ChaosConfig,
    ExpectedEffect,
    FaultEvent,
    FaultPlan,
    VIOLATION_KINDS,
    run_chaos,
    summary_text,
)
from repro.chaos.oracle import scan_markers
from repro.query.parser import parse_action
from repro.query.update import apply_action

# A plan with one late service fault: the victim transaction's work at
# AP2 is done (and logged) before the fault aborts it, so compensation
# has real entries to replay — exactly what skip_undo sabotages.
_LATE_FAULT = FaultPlan(
    (FaultEvent(kind="service_fault", peer="AP2", method="S2",
                point="after_execute"),)
)


class TestMutationsTripTheOracle:
    def test_skip_undo_flags_compensation_missing(self):
        config = ChaosConfig(seed=3, txns=6, fault_rate=0.0, mutate="skip_undo")
        result = run_chaos(config, plan=_LATE_FAULT)
        kinds = {v.kind for v in result.violations}
        assert "compensation_missing" in kinds, result.violations

    def test_double_apply_flags_effect_duplicated(self):
        config = ChaosConfig(seed=3, txns=6, fault_rate=0.0, mutate="double_apply")
        result = run_chaos(config)
        kinds = {v.kind for v in result.violations}
        assert "effect_duplicated" in kinds, result.violations

    def test_stale_chain_flags_orphan_chain(self):
        config = ChaosConfig(seed=3, txns=6, fault_rate=0.0, mutate="stale_chain")
        result = run_chaos(config)
        kinds = {v.kind for v in result.violations}
        assert "orphan_chain" in kinds, result.violations

    def test_unmutated_twin_runs_are_clean(self):
        # The same schedules without the mutation pass the oracle — the
        # failures above are caused by the mutation, not the faults.
        assert run_chaos(ChaosConfig(seed=3, txns=6, fault_rate=0.0),
                         plan=_LATE_FAULT).ok
        assert run_chaos(ChaosConfig(seed=3, txns=6, fault_rate=0.0)).ok

    def test_violations_are_replayable(self):
        config = ChaosConfig(seed=3, txns=6, fault_rate=0.0, mutate="skip_undo")
        first = run_chaos(config, plan=_LATE_FAULT)
        second = run_chaos(config, plan=_LATE_FAULT)
        assert [v.to_dict() for v in first.violations] == [
            v.to_dict() for v in second.violations
        ]


class TestDeterminism:
    def test_same_seed_same_summary_bytes(self):
        config = ChaosConfig(seed=11, txns=10, fault_rate=0.3)
        assert summary_text(run_chaos(config)) == summary_text(run_chaos(config))

    def test_different_seed_different_schedule(self):
        a = run_chaos(ChaosConfig(seed=1, txns=10, fault_rate=0.5))
        b = run_chaos(ChaosConfig(seed=2, txns=10, fault_rate=0.5))
        assert a.plan.to_dict() != b.plan.to_dict()


class TestOracleUnit:
    def test_scan_markers_finds_chaos_elements(self):
        xml = (
            '<doc><items><chaos txn="T001" step="s0"/>'
            '<chaos txn="T002" step="s1"></chaos></items></doc>'
        )
        assert scan_markers(xml) == [("T001", "s0"), ("T002", "s1")]

    def test_missing_expected_effect_is_flagged(self):
        result = run_chaos(ChaosConfig(seed=5, txns=4, fault_rate=0.0))
        committed = next(r.label for r in result.results if r.committed)
        bogus = ExpectedEffect(
            peer="AP1", document="D1", label=committed, step="s999"
        )
        oracle = AtomicityOracle(
            outcomes={r.label: r.status for r in result.results},
            expected=list(result.expected) + [bogus],
            txn_ids={r.label: list(r.txn_ids) for r in result.results},
        )
        kinds = {v.kind for v in oracle.check(result.cluster.peers)}
        assert "effect_missing" in kinds

    def test_unknown_marker_is_orphan_effect(self):
        result = run_chaos(ChaosConfig(seed=5, txns=4, fault_rate=0.0))
        document = result.cluster.peer("AP1").documents["D1"].document
        apply_action(document, parse_action(
            '<action type="insert"><data>'
            '<chaos txn="GHOST" step="s0"/></data>'
            "<location>Select d from d in D1//items;</location></action>"
        ))
        kinds = {v.kind for v in result.oracle().check(result.cluster.peers)}
        assert "orphan_effect" in kinds

    def test_open_transaction_leaves_residue(self):
        result = run_chaos(ChaosConfig(seed=5, txns=4, fault_rate=0.0))
        origin = result.cluster.peer("C1")
        txn = origin.begin_transaction()
        origin.submit(
            txn.txn_id,
            '<action type="insert"><data><mark/></data>'
            "<location>Select d from d in O1//items;</location></action>",
        )
        kinds = {v.kind for v in result.oracle().check(result.cluster.peers)}
        assert "unfinished_context" in kinds
        assert "log_residue" in kinds

    def test_violation_kinds_are_documented(self):
        # docs/CHAOS.md enumerates the predicates; keep the constant in
        # sync with the set the oracle can actually emit.
        assert set(VIOLATION_KINDS) == {
            "effect_missing",
            "effect_duplicated",
            "compensation_missing",
            "orphan_effect",
            "log_residue",
            "unfinished_context",
            "outcome_mismatch",
            "orphan_chain",
            "wal_tail_inconsistent",
            "replica_diverged",
            "shard_lost",
            "shard_duplicated",
            "directory_stale",
        }
