"""Unit tests for update execution and change records (repro.query.update)."""

import pytest

from repro.errors import UpdateError
from repro.query.parser import parse_action
from repro.query.update import apply_action
from repro.xmlstore.parser import parse_document
from repro.xmlstore.serializer import canonical


@pytest.fixture
def doc():
    return parse_document(
        "<ATPList>"
        '<player rank="1"><name><lastname>Federer</lastname></name>'
        "<citizenship>Swiss</citizenship></player>"
        '<player rank="2"><name><lastname>Nadal</lastname></name>'
        "<citizenship>Spanish</citizenship></player>"
        "</ATPList>",
        name="ATPList",
    )


def act(xml):
    return parse_action(xml)


class TestDelete:
    def test_paper_delete(self, doc):
        result = apply_action(
            doc,
            act(
                '<action type="delete"><location>Select p/citizenship from p in '
                "ATPList//player where p/name/lastname = Federer;</location></action>"
            ),
        )
        assert len(result.records) == 1
        record = result.records[0]
        assert record.kind == "delete"
        assert "<citizenship" in record.snapshot_xml
        assert "Swiss" in record.snapshot_xml
        assert "citizenship" not in canonical(doc).split("Nadal")[0]

    def test_delete_records_anchors(self, doc):
        result = apply_action(
            doc,
            act(
                '<action type="delete"><location>Select p/citizenship from p in '
                "ATPList//player where p/name/lastname = Federer;</location></action>"
            ),
        )
        record = result.records[0]
        assert record.before_id is not None  # <name> precedes citizenship
        assert record.after_id is None

    def test_delete_of_nothing_is_noop(self, doc):
        result = apply_action(
            doc,
            act(
                '<action type="delete"><location>Select p/ghost from p in '
                "ATPList//player;</location></action>"
            ),
        )
        assert result.records == []

    def test_delete_multiple_targets(self, doc):
        result = apply_action(
            doc,
            act(
                '<action type="delete"><location>Select p/citizenship from p in '
                "ATPList//player;</location></action>"
            ),
        )
        assert len(result.records) == 2

    def test_delete_root_rejected(self, doc):
        with pytest.raises(UpdateError):
            apply_action(
                doc,
                act(
                    '<action type="delete"><location>Select d from d in ATPList;'
                    "</location></action>"
                ),
            )

    def test_nodes_affected_positive(self, doc):
        result = apply_action(
            doc,
            act(
                '<action type="delete"><location>Select p/name from p in '
                "ATPList//player where p/name/lastname = Federer;</location></action>"
            ),
        )
        assert result.nodes_affected >= 3  # name + lastname + text


class TestInsert:
    INSERT = (
        '<action type="insert"><data><points>475</points></data>'
        "<location>Select p from p in ATPList//player "
        "where p/name/lastname = Federer;</location></action>"
    )

    def test_insert_returns_id(self, doc):
        result = apply_action(doc, act(self.INSERT))
        assert len(result.inserted_ids) == 1
        node = doc.get_node(result.inserted_ids[0])
        assert node.text_content() == "475"

    def test_insert_appends_to_target(self, doc):
        apply_action(doc, act(self.INSERT))
        federer = doc.root.child_elements()[0]
        assert federer.child_elements()[-1].name.local == "points"

    def test_insert_no_target_raises(self, doc):
        bad = self.INSERT.replace("Federer", "Borg")
        with pytest.raises(UpdateError):
            apply_action(doc, act(bad))

    def test_insert_no_target_tolerated(self, doc):
        bad = self.INSERT.replace("Federer", "Borg")
        result = apply_action(doc, act(bad), tolerate_missing_targets=True)
        assert result.records == []

    def test_insert_multiple_fragments(self, doc):
        a = act(
            '<action type="insert"><data><x/></data><data><y/></data>'
            "<location>Select p from p in ATPList//player "
            "where p/name/lastname = Nadal;</location></action>"
        )
        result = apply_action(doc, a)
        assert len(result.inserted_ids) == 2

    def test_insert_anchor_before(self, doc):
        federer = doc.root.child_elements()[0]
        citizenship = federer.find_children("citizenship")[0]
        a = act(
            f'<action type="insert" anchor="before:{citizenship.node_id!r}">'
            "<data><points>475</points></data>"
            "<location>Select p from p in ATPList//player "
            "where p/name/lastname = Federer;</location></action>"
        )
        apply_action(doc, a)
        names = [c.name.local for c in federer.child_elements()]
        assert names == ["name", "points", "citizenship"]

    def test_insert_anchor_gone_degrades_to_append(self, doc):
        a = act(
            '<action type="insert" anchor="after:d999.n999">'
            "<data><points>475</points></data>"
            "<location>Select p from p in ATPList//player "
            "where p/name/lastname = Federer;</location></action>"
        )
        apply_action(doc, a)
        federer = doc.root.child_elements()[0]
        assert federer.child_elements()[-1].name.local == "points"

    def test_multi_element_data_splits_into_fragments(self, doc):
        # <data> with two elements parses as two single-element fragments.
        a = act(
            '<action type="insert"><data><x/><y/></data>'
            "<location>Select p from p in ATPList//player "
            "where p/name/lastname = Nadal;</location></action>"
        )
        result = apply_action(doc, a)
        assert len(result.inserted_ids) == 2

    def test_raw_multi_element_fragment_rejected(self, doc):
        from repro.query.ast import ActionType, UpdateAction
        from repro.query.parser import parse_select

        a = UpdateAction(
            ActionType.INSERT,
            parse_select("Select p from p in ATPList//player;"),
            data=("<x/><y/>",),
        )
        with pytest.raises(UpdateError):
            apply_action(doc, a)


class TestReplace:
    REPLACE = (
        '<action type="replace"><data><citizenship>USA</citizenship></data>'
        "<location>Select p/citizenship from p in ATPList//player "
        "where p/name/lastname = Nadal;</location></action>"
    )

    def test_replace_swaps_value(self, doc):
        apply_action(doc, act(self.REPLACE))
        nadal = doc.root.child_elements()[1]
        assert nadal.find_children("citizenship")[0].text_content() == "USA"

    def test_replace_record_has_both_halves(self, doc):
        result = apply_action(doc, act(self.REPLACE))
        record = result.records[0]
        assert record.kind == "replace"
        assert "Spanish" in record.deleted.snapshot_xml
        assert len(record.inserted) == 1
        assert "USA" in record.inserted[0].inserted_xml

    def test_replace_preserves_position(self, doc):
        nadal = doc.root.child_elements()[1]
        position = [c.name.local for c in nadal.child_elements()].index("citizenship")
        apply_action(doc, act(self.REPLACE))
        assert [c.name.local for c in nadal.child_elements()].index("citizenship") == position

    def test_replace_no_target_raises(self, doc):
        with pytest.raises(UpdateError):
            apply_action(doc, act(self.REPLACE.replace("Nadal", "Borg")))

    def test_replace_returns_inserted_ids(self, doc):
        result = apply_action(doc, act(self.REPLACE))
        assert len(result.inserted_ids) == 1


class TestQueryAction:
    def test_query_returns_result_no_records(self, doc):
        result = apply_action(
            doc,
            act(
                '<action type="query"><location>Select p/citizenship from p in '
                "ATPList//player;</location></action>"
            ),
        )
        assert result.records == []
        assert result.query_result.texts() == ["Swiss", "Spanish"]
        assert result.target_count == 2
