"""Integration tests for the paper's canonical scenarios (Fig. 1/Fig. 2,
ATPList) — the executable form of the paper's worked examples."""

import pytest

from repro.errors import PeerDisconnected, ServiceFault
from repro.query.parser import parse_action
from repro.sim.scenarios import (
    ATPLIST_XML,
    QUERY_A,
    QUERY_B,
    build_atplist_scenario,
    build_fig1,
    build_fig2,
    run_root_transaction,
)
from repro.txn.recovery import DISCONNECT_FAULT, FaultPolicy
from repro.xmlstore.serializer import canonical


def doc_xml(scenario, peer_id):
    return scenario.peer(peer_id).get_axml_document(f"D{peer_id[2:]}").to_xml()


class TestATPListScenario:
    """§3.1's worked examples, running on three real peers."""

    def test_query_a_materializes_only_grandslams(self):
        s = build_atplist_scenario()
        ap1 = s.peer("AP1")
        txn = ap1.begin_transaction()
        outcome = ap1.submit(txn.txn_id, f'<action type="query"><location>{QUERY_A}</location></action>')
        assert outcome.materialization.methods() == ["getGrandSlamsWonbyYear"]
        xml = ap1.get_axml_document("ATPList").to_xml()
        assert "2005" in xml and "475" in xml  # points untouched

    def test_query_b_materializes_only_points(self):
        s = build_atplist_scenario()
        ap1 = s.peer("AP1")
        txn = ap1.begin_transaction()
        outcome = ap1.submit(txn.txn_id, f'<action type="query"><location>{QUERY_B}</location></action>')
        assert outcome.materialization.methods() == ["getPoints"]
        xml = ap1.get_axml_document("ATPList").to_xml()
        assert "890" in xml and "475" not in xml

    def test_query_abort_compensates_materialization(self):
        s = build_atplist_scenario()
        ap1 = s.peer("AP1")
        pre = canonical(ap1.get_axml_document("ATPList").document)
        txn = ap1.begin_transaction()
        ap1.submit(txn.txn_id, f'<action type="query"><location>{QUERY_B}</location></action>')
        assert "890" in ap1.get_axml_document("ATPList").to_xml()
        ap1.abort(txn.txn_id)
        assert canonical(ap1.get_axml_document("ATPList").document) == pre

    def test_paper_delete_and_abort(self):
        s = build_atplist_scenario()
        ap1 = s.peer("AP1")
        pre = canonical(ap1.get_axml_document("ATPList").document)
        txn = ap1.begin_transaction()
        ap1.submit(
            txn.txn_id,
            '<action type="delete"><location>Select p/citizenship from p in '
            "ATPList//player where p/name/lastname = Federer;</location></action>",
        )
        assert "Swiss" not in ap1.get_axml_document("ATPList").to_xml()
        ap1.abort(txn.txn_id)
        assert canonical(ap1.get_axml_document("ATPList").document) == pre

    def test_remote_peers_enlisted_by_materialization(self):
        s = build_atplist_scenario()
        ap1 = s.peer("AP1")
        txn = ap1.begin_transaction()
        ap1.submit(txn.txn_id, f'<action type="query"><location>{QUERY_B}</location></action>')
        # getPoints lives on AP2: the chain shows the enlistment.
        assert ap1.chains[txn.txn_id].contains("AP2")


class TestFig1NestedRecovery:
    """§3.2's protocol walk-through, steps 1-4."""

    def test_happy_path_all_work_done(self):
        s = build_fig1()
        txn, err = run_root_transaction(s)
        assert err is None
        for peer_id in ("AP2", "AP3", "AP4", "AP5", "AP6"):
            assert f'<entry by="{peer_id}"/>' in doc_xml(s, peer_id)
        s.peer("AP1").commit(txn.txn_id)
        assert s.metrics.txn_outcomes[txn.txn_id] == "committed"

    def test_ap5_failure_aborts_whole_transaction(self):
        s = build_fig1()
        s.injector.fault_service("AP5", "S5", "Crash", point="after_execute")
        txn, err = run_root_transaction(s)
        assert isinstance(err, ServiceFault)
        # every peer's share compensated (empty items again)
        for peer_id in s.peers:
            assert "<entry" not in doc_xml(s, peer_id)
        assert s.metrics.txn_outcomes[txn.txn_id] == "aborted"

    def test_abort_messages_reach_invoked_peers(self):
        s = build_fig1()
        s.injector.fault_service("AP5", "S5", "Crash", point="after_execute")
        run_root_transaction(s)
        # AP5 -> AP6; AP3 -> AP4; AP1 -> AP2 (three Abort notifications)
        assert s.metrics.get("messages.abort") == 3
        assert s.metrics.get("aborts_received") == 3

    def test_fault_handler_at_ap3_stops_propagation(self):
        s = build_fig1()
        s.injector.fault_service("AP5", "S5", "Crash", times=1, point="after_execute")
        s.peer("AP3").set_fault_policy(
            "S5", [FaultPolicy(fault_names={"Crash"}, retry_times=2)]
        )
        txn, err = run_root_transaction(s)
        assert err is None
        assert s.metrics.get("forward_recoveries") == 1
        # AP1, AP2, AP3 never aborted — undo only as much as required.
        assert '<entry by="AP3"/>' in doc_xml(s, "AP3")
        assert '<entry by="AP2"/>' in doc_xml(s, "AP2")

    def test_unmatched_fault_name_propagates(self):
        s = build_fig1()
        s.injector.fault_service("AP5", "S5", "Crash", point="after_execute")
        s.peer("AP3").set_fault_policy(
            "S5", [FaultPolicy(fault_names={"OtherFault"}, retry_times=5)]
        )
        txn, err = run_root_transaction(s)
        assert isinstance(err, ServiceFault)

    def test_exhausted_retries_fall_back_to_backward(self):
        s = build_fig1()
        s.injector.fault_service("AP5", "S5", "Crash", times=-1, point="after_execute")
        s.peer("AP3").set_fault_policy(
            "S5", [FaultPolicy(fault_names={"Crash"}, retry_times=2)]
        )
        txn, err = run_root_transaction(s)
        assert isinstance(err, ServiceFault)
        assert "<entry" not in doc_xml(s, "AP3")

    def test_forward_cost_lower_than_backward(self):
        """§3.2: forward recovery 'undoes only as much as required'."""
        forward = build_fig1()
        forward.injector.fault_service("AP5", "S5", "Crash", times=1, point="after_execute")
        forward.peer("AP3").set_fault_policy(
            "S5", [FaultPolicy(fault_names={"Crash"}, retry_times=1)]
        )
        run_root_transaction(forward)
        backward = build_fig1()
        backward.injector.fault_service("AP5", "S5", "Crash", times=1, point="after_execute")
        run_root_transaction(backward)
        forward_comp = sum(
            p.manager.compensation_cost for p in forward.peers.values()
        )
        backward_comp = sum(
            p.manager.compensation_cost for p in backward.peers.values()
        )
        assert forward_comp < backward_comp


class TestFig2Chain:
    def test_chain_text_matches_paper(self):
        s = build_fig2()
        txn, err = run_root_transaction(s)
        assert err is None
        # AP5 is a leaf: its chain view is complete by invocation time.
        chain = s.peer("AP5").chains[txn.txn_id]
        assert chain.to_text() == "[AP1* -> AP2 -> [AP3 -> AP6] || [AP4 -> AP5]]"

    def test_super_peer_flag_propagates(self):
        s = build_fig2()
        txn, _ = run_root_transaction(s)
        chain = s.peer("AP5").chains[txn.txn_id]
        assert chain.find("AP1").super_peer
        assert not chain.find("AP2").super_peer
