"""Parallel sweep determinism (repro.sim.parallel).

The contract: a sweep run with workers=N produces byte-identical output
to workers=1 — same rendered table, same JSON payload, same aggregate
metrics.  Serial is the oracle; these tests force the fork-pool path
with workers=2 regardless of how many cores the machine has.
"""

import subprocess
import sys

from repro.chaos import ChaosConfig, chaos_sweep
from repro.obs import stable_json
from repro.sim.metrics import MetricsCollector
from repro.sim.parallel import available_cores, parallel_map, resolve_workers
from repro.sim.throughput import throughput_sweep

SMALL = ChaosConfig(txns=5, providers=3)


class TestParallelMap:
    def test_serial_fallback_preserves_order(self):
        assert parallel_map(abs, [-3, 2, -1], workers=1) == [3, 2, 1]

    def test_pool_preserves_order(self):
        assert parallel_map(abs, list(range(-10, 0)), workers=2) == list(
            range(10, 0, -1)
        )

    def test_single_item_never_forks(self):
        assert parallel_map(abs, [-7], workers=8) == [7]

    def test_resolve_workers(self):
        assert resolve_workers(1, 10) == 1
        assert resolve_workers(4, 2) == 2  # clamped to items
        assert resolve_workers(0, 100) == max(1, available_cores())
        assert resolve_workers(0, 0) == 1

    def test_worker_exception_propagates(self):
        import pytest

        with pytest.raises(ZeroDivisionError):
            parallel_map(_reciprocal, [1, 0, 2], workers=2)


def _reciprocal(x):
    return 1 / x


class TestChaosSweepIdentity:
    def test_byte_identical_table_and_metrics(self):
        m1, m2 = MetricsCollector(), MetricsCollector()
        kwargs = dict(seeds=[0, 1, 2], concurrencies=(2,), fault_rates=(0.2,))
        serial, f1 = chaos_sweep(SMALL, metrics=m1, workers=1, **kwargs)
        parallel, f2 = chaos_sweep(SMALL, metrics=m2, workers=2, **kwargs)
        assert serial.render() == parallel.render()
        assert stable_json(serial.to_dict()) == stable_json(parallel.to_dict())
        assert stable_json(m1.snapshot()) == stable_json(m2.snapshot())
        assert len(f1) == len(f2)

    def test_failures_are_reproduced_in_parent(self):
        # A mutated config fails the oracle; the parallel path must hand
        # back full, shrink-ready results for exactly the same configs.
        bad = ChaosConfig(txns=6, providers=3, mutate="skip_undo")
        kwargs = dict(seeds=[3], concurrencies=(2,), fault_rates=(0.2,))
        _, serial_failures = chaos_sweep(bad, workers=1, **kwargs)
        _, parallel_failures = chaos_sweep(bad, workers=2, **kwargs)
        assert [f.config for f in serial_failures] == [
            f.config for f in parallel_failures
        ]
        for s, p in zip(serial_failures, parallel_failures):
            assert [v.to_dict() for v in s.violations] == [
                v.to_dict() for v in p.violations
            ]


class TestThroughputSweepIdentity:
    def test_byte_identical_table(self):
        serial = throughput_sweep(smoke=True, workers=1)
        parallel = throughput_sweep(smoke=True, workers=2)
        assert serial.render() == parallel.render()
        assert stable_json(serial.to_dict()) == stable_json(parallel.to_dict())


class TestCliWorkers:
    def test_bench_workers_flag(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "bench", "--smoke", "--workers", "2"],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        assert "T1: commit throughput" in result.stdout

    def test_chaos_sweep_workers_flag(self):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro", "chaos", "--sweep",
                "--seeds", "2", "--txns", "5", "--providers", "3",
                "--workers", "2",
            ],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        assert "chaos_runs = 4" in result.stdout
