"""Structural index (repro.xmlstore.index): maintenance, invalidation,
meter parity.

The contract under test: with the index enabled, every query returns the
same nodes in the same order AND charges the traversal meter the same
count as a fresh full-tree walk — after any interleaving of mutations,
including compensation replay.
"""

from repro.query.evaluate import evaluate_select
from repro.query.parser import parse_action, parse_select
from repro.query.update import apply_action
from repro.sim.rng import SeededRng
from repro.txn.compensation import compensating_actions_for
from repro.xmlstore.index import index_disabled, index_enabled, set_index_enabled
from repro.xmlstore.names import QName
from repro.xmlstore.nodes import Document, Element
from repro.xmlstore.parser import parse_document
from repro.xmlstore.path import TraversalMeter, parse_path
from repro.xmlstore.serializer import canonical

ATP = (
    "<ATPList>"
    '<player rank="1"><name><lastname>Federer</lastname></name>'
    "<citizenship>Swiss</citizenship><points>475</points></player>"
    '<player rank="2"><name><lastname>Nadal</lastname></name>'
    "<citizenship>Spanish</citizenship></player>"
    '<player rank="3"><name><lastname>Roddick</lastname></name>'
    "<citizenship>American</citizenship></player>"
    "</ATPList>"
)


def assert_parity(doc, path_text):
    """Indexed answer == walk answer, nodes, order and meter charge."""
    path = parse_path(path_text)
    fast_meter, slow_meter = TraversalMeter(), TraversalMeter()
    fast = path.evaluate(doc, fast_meter)
    with index_disabled():
        slow = path.evaluate(doc, slow_meter)
    assert [n.node_id for n in fast] == [n.node_id for n in slow], path_text
    assert fast_meter.nodes_traversed == slow_meter.nodes_traversed, path_text
    return fast


class TestPostingsMaintenance:
    def test_new_elements_are_indexed(self):
        doc = parse_document(ATP, name="ATPList")
        assert len(doc.index.postings("player")) == 3
        assert len(doc.index.postings("lastname")) == 3
        assert len(doc.index.postings("nosuch")) == 0

    def test_detach_keeps_posting_but_hides_from_queries(self):
        doc = parse_document(ATP, name="ATPList")
        player = parse_path("ATPList//player").evaluate(doc)[0]
        player.detach()
        # Existence is tracked (the id stays resolvable for compensation)...
        assert len(doc.index.postings("player")) == 3
        # ...but the live-tree rank map no longer contains it.
        assert player.node_id not in doc.index.order_ranks()
        assert len(assert_parity(doc, "ATPList//player")) == 2

    def test_vacuum_drops_postings(self):
        doc = parse_document(ATP, name="ATPList")
        player = parse_path("ATPList//player").evaluate(doc)[0]
        player.detach()
        assert doc.vacuum() > 0
        assert len(doc.index.postings("player")) == 2

    def test_clone_into_preserved_ids_rekeys(self):
        doc = parse_document(ATP, name="ATPList")
        copy = doc.clone(preserve_ids=True)
        assert len(copy.index.postings("player")) == 3
        originals = set(doc.index.postings("player"))
        assert set(copy.index.postings("player")) == originals
        assert_parity(copy, "ATPList//player")

    def test_epoch_moves_on_every_structural_mutation(self):
        doc = Document("ATPList")
        root = doc.create_root(QName("ATPList"))
        e0 = doc.mutation_epoch
        child = root.append(Element(doc, "player"))
        assert doc.mutation_epoch > e0
        e1 = doc.mutation_epoch
        child.detach()
        assert doc.mutation_epoch > e1

    def test_rank_cache_reused_between_mutations(self):
        doc = parse_document(ATP, name="ATPList")
        first = doc.index.order_ranks()
        assert doc.index.order_ranks() is first  # same epoch, same object
        parse_path("ATPList//player").evaluate(doc)[0].detach()
        assert doc.index.order_ranks() is not first


class TestMeterParity:
    def test_logical_count_matches_walk_everywhere(self):
        from repro.xmlstore.path import _logical_descendants

        doc = parse_document(ATP, name="ATPList")
        for element in doc.index.postings("player").values():
            assert element._logical_count == len(_logical_descendants(element))
        assert doc.root._logical_count == len(_logical_descendants(doc.root))

    def test_logical_count_tracks_mutations(self):
        from repro.xmlstore.path import _logical_descendants

        doc = parse_document(ATP, name="ATPList")
        player = parse_path("ATPList//player").evaluate(doc)[0]
        player.append(Element(doc, "coach"))
        player.children[0].detach()
        for element in list(doc.index.postings("player").values()) + [doc.root]:
            if element.is_attached() or element.parent is None:
                assert element._logical_count == len(_logical_descendants(element))

    def test_axml_metadata_is_pruned_from_counts(self):
        doc = parse_document(
            "<r><axml:sc xmlns:axml='x' service='S'>"
            "<axml:params><axml:param name='p'>1</axml:param></axml:params>"
            "<points>9</points></axml:sc></r>",
            name="r",
        )
        from repro.xmlstore.path import _logical_descendants

        assert doc.root._logical_count == len(_logical_descendants(doc.root))
        # The sc container expands; params stay invisible.
        assert_parity(doc, "r//points")
        assert_parity(doc, "r//param")


class TestMutateUnderQuery:
    """The satellite scenario: every mutation step re-checked against a
    fresh walk — insert, delete, replace, and compensation replay."""

    ACTIONS = (
        '<action type="insert"><data><coach>Lundgren</coach></data>'
        "<location>Select p from p in ATPList//player "
        "where p/name/lastname = Federer;</location></action>",
        '<action type="delete"><location>Select c from c in '
        "ATPList//player/citizenship;</location></action>",
        '<action type="replace"><data><points>500</points></data>'
        "<location>Select pt from pt in ATPList//points;</location></action>",
    )
    PATHS = ("ATPList//player", "ATPList//citizenship", "ATPList//points",
             "ATPList//lastname", "ATPList//coach")

    def test_insert_delete_replace_interleaved_with_queries(self):
        doc = parse_document(ATP, name="ATPList")
        for action_xml in self.ACTIONS:
            apply_action(doc, parse_action(action_xml))
            for path_text in self.PATHS:
                assert_parity(doc, path_text)

    def test_compensation_replay_keeps_index_exact(self):
        doc = parse_document(ATP, name="ATPList")
        pre = canonical(doc)
        for action_xml in self.ACTIONS:
            result = apply_action(doc, parse_action(action_xml))
            for action in compensating_actions_for(result, "ATPList", True):
                apply_action(doc, action, tolerate_missing_targets=True)
                for path_text in self.PATHS:
                    assert_parity(doc, path_text)
        assert canonical(doc) == pre  # compensation restored the document

    def test_randomized_equivalence(self):
        rng = SeededRng(41)
        doc = Document("R")
        root = doc.create_root(QName("R"))
        live = [root]
        for step in range(120):
            roll = rng.random()
            if roll < 0.55 or len(live) < 3:
                parent = rng.choice(live)
                child = parent.append(
                    Element(doc, rng.choice(["a", "b", "c"]))
                )
                live.append(child)
            else:
                victim = rng.choice(live[1:])
                if victim.is_attached():
                    victim.detach()
                    live = [
                        e for e in live
                        if e is doc.root or e.is_attached()
                    ]
            if step % 10 == 0:
                for name in ("a", "b", "c"):
                    assert_parity(doc, f"R//{name}")
        for name in ("a", "b", "c"):
            assert_parity(doc, f"R//{name}")


class TestSelectEvaluationParity:
    def test_select_with_where_and_selects(self):
        doc = parse_document(ATP, name="ATPList")
        query = parse_select(
            "Select p/citizenship from p in ATPList//player "
            "where p/name/lastname = Nadal;"
        )
        fast_meter, slow_meter = TraversalMeter(), TraversalMeter()
        fast = evaluate_select(query, doc, fast_meter)
        with index_disabled():
            slow = evaluate_select(query, doc, slow_meter)
        assert fast.texts() == slow.texts() == ["Spanish"]
        assert fast_meter.nodes_traversed == slow_meter.nodes_traversed


class TestToggle:
    def test_disabled_context_restores(self):
        assert index_enabled()
        with index_disabled():
            assert not index_enabled()
            with index_disabled():
                assert not index_enabled()
            assert not index_enabled()
        assert index_enabled()

    def test_set_returns_previous(self):
        assert set_index_enabled(False) is True
        try:
            assert set_index_enabled(True) is False
        finally:
            set_index_enabled(True)


class TestSnapshotRollbackInvalidation:
    def test_rollback_resets_index(self):
        from repro.axml.document import AXMLDocument
        from repro.baselines.snapshot_rollback import SnapshotRollback

        doc = parse_document(ATP, name="ATPList")
        axml = AXMLDocument(doc)
        guard = SnapshotRollback()
        guard.guard("t1", axml)
        apply_action(doc, parse_action(self_delete()))
        assert len(assert_parity(doc, "ATPList//player")) == 0
        assert guard.rollback("t1", axml)
        assert len(assert_parity(doc, "ATPList//player")) == 3


def self_delete() -> str:
    return (
        '<action type="delete"><location>Select p from p in '
        "ATPList//player;</location></action>"
    )
