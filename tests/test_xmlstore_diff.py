"""Unit tests for the structural differ (repro.xmlstore.diff)."""

from repro.xmlstore.diff import diff_documents
from repro.xmlstore.parser import parse_document


def _doc():
    return parse_document('<r><a k="1">x</a><b><c/></b></r>')


class TestDiffIdentity:
    def test_identical_snapshot(self):
        doc = _doc()
        snap = doc.clone(preserve_ids=True)
        assert diff_documents(snap, doc).is_empty()

    def test_detach_and_restore(self):
        doc = _doc()
        snap = doc.clone(preserve_ids=True)
        a = doc.root.first_child("a")
        rec = a.detach()
        doc.get_node(rec.parent_id).insert_at(rec.index, rec.node)
        assert diff_documents(snap, doc).is_empty()


class TestDiffKinds:
    def test_delete(self):
        doc = _doc()
        snap = doc.clone(preserve_ids=True)
        doc.root.first_child("a").detach()
        script = diff_documents(snap, doc)
        assert script.kinds() == ["delete"]

    def test_delete_reports_subtree_root_only(self):
        doc = _doc()
        snap = doc.clone(preserve_ids=True)
        doc.root.first_child("b").detach()  # subtree with <c/>
        script = diff_documents(snap, doc)
        assert len(script.by_kind("delete")) == 1

    def test_insert(self):
        doc = _doc()
        snap = doc.clone(preserve_ids=True)
        doc.root.new_element("n")
        script = diff_documents(snap, doc)
        assert script.kinds() == ["insert"]

    def test_insert_subtree_root_only(self):
        doc = _doc()
        snap = doc.clone(preserve_ids=True)
        n = doc.root.new_element("n")
        n.new_element("deep").new_text("t")
        assert len(diff_documents(snap, doc).by_kind("insert")) == 1

    def test_text_change(self):
        doc = _doc()
        snap = doc.clone(preserve_ids=True)
        doc.root.first_child("a").children[0].value = "y"
        script = diff_documents(snap, doc)
        assert script.kinds() == ["text"]
        op = script.ops[0]
        assert (op.old, op.new) == ("x", "y")

    def test_attrs_change(self):
        doc = _doc()
        snap = doc.clone(preserve_ids=True)
        doc.root.first_child("a").attributes["k"] = "2"
        script = diff_documents(snap, doc)
        assert script.kinds() == ["attrs"]

    def test_move(self):
        doc = _doc()
        snap = doc.clone(preserve_ids=True)
        a = doc.root.first_child("a")
        rec = a.detach()
        doc.root.first_child("b").append(rec.node)
        script = diff_documents(snap, doc)
        assert "move" in script.kinds()

    def test_positional_shift_not_a_move(self):
        # Deleting <a> shifts <b>'s index but b did not move.
        doc = _doc()
        snap = doc.clone(preserve_ids=True)
        doc.root.first_child("a").detach()
        script = diff_documents(snap, doc)
        assert script.kinds() == ["delete"]

    def test_combined_edits(self):
        doc = _doc()
        snap = doc.clone(preserve_ids=True)
        doc.root.first_child("a").detach()
        doc.root.new_element("n")
        kinds = sorted(diff_documents(snap, doc).kinds())
        assert kinds == ["delete", "insert"]

    def test_script_iteration(self):
        doc = _doc()
        snap = doc.clone(preserve_ids=True)
        doc.root.new_element("n")
        script = diff_documents(snap, doc)
        assert len(list(script)) == len(script) == 1
