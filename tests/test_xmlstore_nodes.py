"""Unit tests for the XML node tree (repro.xmlstore.nodes)."""

import pytest

from repro.errors import NodeNotFound, XmlStructureError
from repro.xmlstore.names import QName
from repro.xmlstore.nodes import Document, Element, NodeId, Text


@pytest.fixture
def doc():
    document = Document("test")
    root = document.create_root("root")
    a = root.new_element("a", {"k": "1"})
    a.new_text("alpha")
    b = root.new_element("b")
    b.new_element("c")
    return document


class TestNodeId:
    def test_repr_roundtrip(self):
        node_id = NodeId(3, 17)
        assert NodeId.parse(repr(node_id)) == node_id

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            NodeId.parse("nonsense")
        with pytest.raises(ValueError):
            NodeId.parse("x3.n1")
        with pytest.raises(ValueError):
            NodeId.parse("d3n1")

    def test_equality_and_hash(self):
        assert NodeId(1, 2) == NodeId(1, 2)
        assert NodeId(1, 2) != NodeId(1, 3)
        assert NodeId(1, 2) != NodeId(2, 2)
        assert len({NodeId(1, 2), NodeId(1, 2), NodeId(1, 3)}) == 2

    def test_ids_unique_within_document(self, doc):
        ids = [node.node_id for node in doc.iter()]
        assert len(ids) == len(set(ids))

    def test_ids_unique_across_documents(self):
        d1, d2 = Document(), Document()
        r1, r2 = d1.create_root("r"), d2.create_root("r")
        assert r1.node_id != r2.node_id


class TestTreeConstruction:
    def test_single_root(self, doc):
        with pytest.raises(XmlStructureError):
            doc.create_root("another")

    def test_append_cross_document_rejected(self):
        d1, d2 = Document(), Document()
        r1 = d1.create_root("r")
        orphan = d2.create_element("x")
        with pytest.raises(XmlStructureError):
            r1.append(orphan)

    def test_append_already_parented_rejected(self, doc):
        a = doc.root.first_child("a")
        with pytest.raises(XmlStructureError):
            doc.root.first_child("b").append(a)

    def test_cycle_rejected(self, doc):
        a = doc.root.first_child("a")
        rec = a.detach()
        with pytest.raises(XmlStructureError):
            rec.node.append(rec.node)

    def test_insert_at_clamps(self, doc):
        root = doc.root
        x = doc.create_element("x")
        root.insert_at(99, x)
        assert root.children[-1] is x
        y = doc.create_element("y")
        root.insert_at(-5, y)
        assert root.children[0] is y

    def test_insert_before_after(self, doc):
        root = doc.root
        a = root.first_child("a")
        n1 = doc.create_element("n1")
        n2 = doc.create_element("n2")
        root.insert_before(a, n1)
        root.insert_after(a, n2)
        names = [c.name.local for c in root.child_elements()]
        assert names == ["n1", "a", "n2", "b"]

    def test_set_text_replaces_children(self, doc):
        a = doc.root.first_child("a")
        a.set_text("new")
        assert a.text_content() == "new"
        assert len(a.children) == 1


class TestNavigation:
    def test_iter_preorder(self, doc):
        names = [n.name.local for n in doc.root.iter_elements()]
        assert names == ["root", "a", "b", "c"]

    def test_ancestors(self, doc):
        c = doc.root.first_child("b").first_child("c")
        assert [e.name.local for e in c.ancestors()] == ["b", "root"]

    def test_siblings(self, doc):
        a = doc.root.first_child("a")
        b = doc.root.first_child("b")
        assert a.following_sibling() is b
        assert b.preceding_sibling() is a
        assert a.preceding_sibling() is None
        assert b.following_sibling() is None

    def test_root_and_attached(self, doc):
        c = doc.root.first_child("b").first_child("c")
        assert c.root() is doc.root
        assert c.is_attached()
        doc.root.first_child("b").detach()
        assert not c.is_attached()

    def test_index_in_parent(self, doc):
        assert doc.root.first_child("b").index_in_parent() == 1

    def test_index_of_parentless_raises(self, doc):
        with pytest.raises(XmlStructureError):
            doc.root.index_in_parent()


class TestDetach:
    def test_detach_record_anchors(self, doc):
        root = doc.root
        mid = doc.create_element("mid")
        root.insert_at(1, mid)
        rec = mid.detach()
        assert rec.parent_id == root.node_id
        assert rec.index == 1
        assert doc.get_node(rec.before_id).name.local == "a"
        assert doc.get_node(rec.after_id).name.local == "b"

    def test_detach_first_has_no_before(self, doc):
        rec = doc.root.first_child("a").detach()
        assert rec.before_id is None
        assert rec.after_id is not None

    def test_detach_root_raises(self, doc):
        with pytest.raises(XmlStructureError):
            doc.root.detach()

    def test_detached_still_indexed(self, doc):
        a = doc.root.first_child("a")
        a.detach()
        assert doc.has_node(a.node_id)
        assert doc.get_node(a.node_id) is a


class TestDocumentIndex:
    def test_get_node_missing(self, doc):
        with pytest.raises(NodeNotFound):
            doc.get_node(NodeId(999, 999))

    def test_vacuum_drops_detached(self, doc):
        a = doc.root.first_child("a")
        a.detach()
        removed = doc.vacuum()
        assert removed == 2  # <a> plus its text child
        assert not doc.has_node(a.node_id)

    def test_vacuum_keeps_attached(self, doc):
        before = doc.size()
        assert doc.vacuum() == 0
        assert doc.size() == before

    def test_size(self, doc):
        # root, a, text, b, c
        assert doc.size() == 5


class TestClone:
    def test_clone_preserves_structure(self, doc):
        copy = doc.clone()
        assert [n.name.local for n in copy.iter_elements()] == [
            n.name.local for n in doc.iter_elements()
        ]

    def test_clone_preserves_ids(self, doc):
        copy = doc.clone(preserve_ids=True)
        assert copy.root.node_id == doc.root.node_id
        assert copy.has_node(doc.root.first_child("a").node_id)

    def test_clone_fresh_ids(self, doc):
        copy = doc.clone(preserve_ids=False)
        assert copy.root.node_id != doc.root.node_id

    def test_clone_is_independent(self, doc):
        copy = doc.clone()
        doc.root.first_child("a").detach()
        assert copy.root.first_child("a") is not None

    def test_clone_into_preserve_ids_registers(self, doc):
        target = Document("target")
        clone = doc.root.clone_into(target, preserve_ids=True)
        assert target.get_node(doc.root.node_id) is clone


class TestTextAndAttributes:
    def test_text_content_concatenates(self, doc):
        b = doc.root.first_child("b")  # children: [<c/>]
        b.new_text("x")  # children: [<c/>, "x"]
        b.first_child("c").new_text("y")
        assert b.text_content() == "yx"

    def test_attributes_preserved_on_clone(self, doc):
        copy = doc.clone()
        assert copy.root.first_child("a").attributes == {"k": "1"}

    def test_subtree_size(self, doc):
        assert doc.root.first_child("a").subtree_size() == 2
        assert doc.root.subtree_size() == 5

    def test_qname_on_element(self):
        d = Document()
        root = d.create_root("axml:sc")
        assert root.name == QName("sc", "axml")
        assert root.name.is_axml
