"""Unit tests for the disconnection scenario drivers
(repro.txn.disconnection) beyond the integration coverage."""

import pytest

from repro.sim.scenarios import build_fig2, run_root_transaction
from repro.txn.disconnection import (
    CaseReport,
    run_case_a_leaf_disconnection,
    run_case_b_parent_disconnection,
)
from repro.txn.recovery import DISCONNECT_FAULT, FaultPolicy


class TestCaseReport:
    def test_defaults(self):
        report = CaseReport("a", "AP6", "AP3")
        assert report.detection_latency is None
        assert report.work_reused == 0
        assert not report.recovered


class TestCaseAReport:
    def test_report_fields_on_backward(self):
        scenario = build_fig2()
        run_root_transaction(scenario)
        scenario.network.disconnect("AP6")
        parent = scenario.peer("AP3")
        txn = parent.begin_transaction()
        report = run_case_a_leaf_disconnection(parent, txn.txn_id, "AP6", "S6")
        assert report.case == "a"
        assert report.disconnected_peer == "AP6"
        assert report.detected_by == "AP3"
        assert not report.recovered
        assert "disconnections" not in report.metrics  # already dead before

    def test_metrics_delta_only(self):
        scenario = build_fig2()
        scenario.metrics.incr("messages", 100)  # pre-existing noise
        scenario.network.disconnect("AP6")
        parent = scenario.peer("AP3")
        txn = parent.begin_transaction()
        report = run_case_a_leaf_disconnection(parent, txn.txn_id, "AP6", "S6")
        # the delta excludes the pre-existing 100
        assert report.metrics.get("messages", 0) < 100


class TestCaseBReport:
    def test_reuse_counted(self):
        scenario = build_fig2(extra_peers=("APX",))
        scenario.replication.replicate_service("S3", "APX")
        scenario.replication.replicate_document("D3", "APX")
        scenario.injector.disconnect_peer_during("AP3", "AP6", "S6", "after_local_work")
        txn, _ = run_root_transaction(scenario)
        grandparent = scenario.peer("AP2")
        # run_root left AP2's context aborted (backward recovery ran);
        # start a new transaction to drive the replacement invocation.
        txn2 = grandparent.begin_transaction()
        # move the redirected result into the new transaction's key
        for (old_txn, method), fragments in list(grandparent.reusable_results.items()):
            grandparent.reusable_results[(txn2.txn_id, method)] = fragments
            del grandparent.reusable_results[(old_txn, method)]
        report = run_case_b_parent_disconnection(
            grandparent, txn2.txn_id, "AP3", "APX", "S3"
        )
        assert report.case == "b"
        assert report.recovered
        assert report.work_reused >= 1

    def test_unrecoverable_when_replacement_dead(self):
        scenario = build_fig2(extra_peers=("APX",))
        scenario.injector.disconnect_peer_during("AP3", "AP6", "S6", "after_local_work")
        run_root_transaction(scenario)
        scenario.network.disconnect("APX")
        grandparent = scenario.peer("AP2")
        txn2 = grandparent.begin_transaction()
        report = run_case_b_parent_disconnection(
            grandparent, txn2.txn_id, "AP3", "APX", "S3"
        )
        assert not report.recovered
