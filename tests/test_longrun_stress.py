"""Long-run stress: many transactions with random failures on one network.

A single Fig.2-shaped deployment processes a stream of transactions; a
seeded adversary injects faults and disconnections (with rejoins)
between and during them.  After the storm, invariants:

* every transaction reached a terminal outcome;
* peers that are alive at the end hold consistent state — committed
  markers only from committed transactions;
* logs hold no leftovers;
* the network keeps functioning (a final clean transaction commits).
"""

import pytest

from repro.errors import ReproError
from repro.sim.rng import SeededRng
from repro.sim.scenarios import FIG2_TOPOLOGY, build_topology
from repro.txn.transaction import TransactionState


@pytest.mark.parametrize("seed", [1, 7, 23, 99])
def test_transaction_storm(seed):
    rng = SeededRng(seed)
    scenario = build_topology(FIG2_TOPOLOGY, super_peers=("AP1",))
    network = scenario.network
    origin = scenario.peer("AP1")
    committed, aborted = [], []

    for round_index in range(30):
        # Random churn between transactions: kill or revive one ordinary peer.
        if rng.coin(0.25):
            victim = rng.choice(["AP2", "AP3", "AP4", "AP5", "AP6"])
            if network.is_alive(victim):
                network.disconnect(victim)
            else:
                scenario.peer(victim).rejoin()
        # Random in-flight fault.
        if rng.coin(0.3):
            victim = rng.choice(["AP3", "AP4", "AP5", "AP6"])
            scenario.injector.fault_service(
                victim, f"S{victim[2:]}", "Storm", times=1, point="after_execute"
            )
        txn = origin.begin_transaction()
        try:
            for child, method in FIG2_TOPOLOGY["AP1"]:
                origin.invoke(txn.txn_id, child, method, {})
            origin.commit(txn.txn_id)
            committed.append(txn.txn_id)
        except ReproError:
            aborted.append(txn.txn_id)
        # Drain any deferred notifications.
        network.events.run_until(network.clock.now + 0.1)

    # Every transaction reached a decision at the origin.
    for txn_id in committed + aborted:
        context = origin.manager.contexts[txn_id]
        assert context.is_finished, txn_id
    assert origin.manager.active_transactions() == []
    assert len(origin.manager.log) == 0

    # Revive everyone and verify consistency: alive peers' documents only
    # contain markers from some prefix of committed work (a marker per
    # committed transaction that reached that peer; none from aborted
    # transactions is impossible to check by txn id — markers are
    # anonymous — so we check the weaker but real invariant that marker
    # count never exceeds the committed-transaction count).
    for peer_id, peer in scenario.peers.items():
        if not network.is_alive(peer_id):
            peer.rejoin()
    network.events.run_until(network.clock.now + 1.0)
    for peer_id, peer in scenario.peers.items():
        if peer_id == "AP1":
            continue
        text = peer.get_axml_document(f"D{peer_id[2:]}").to_xml()
        markers = text.count("<entry")
        assert markers <= len(committed), (
            f"{peer_id} holds {markers} markers but only "
            f"{len(committed)} transactions committed"
        )

    # The system still works (leftover one-shot fault scripts whose peer
    # happened to be down when they were armed are cleared first).
    scenario.injector.clear()
    final = origin.begin_transaction()
    for child, method in FIG2_TOPOLOGY["AP1"]:
        origin.invoke(final.txn_id, child, method, {})
    origin.commit(final.txn_id)
    assert network.metrics.txn_outcomes[final.txn_id] == "committed"


def test_many_local_transactions_log_stays_bounded():
    from repro.axml.document import AXMLDocument
    from repro.p2p.network import SimNetwork
    from repro.p2p.peer import AXMLPeer

    network = SimNetwork()
    peer = AXMLPeer("AP1", network)
    peer.host_document(
        AXMLDocument.from_xml("<D><items/></D>", name="D")
    )
    rng = SeededRng(5)
    for index in range(200):
        txn = peer.begin_transaction()
        peer.submit(
            txn.txn_id,
            f'<action type="insert"><data><i n="{index}"/></data>'
            "<location>Select d from d in D//items;</location></action>",
        )
        if rng.coin(0.5):
            peer.commit(txn.txn_id)
        else:
            peer.abort(txn.txn_id)
    # Commit/abort both truncate: nothing accumulates.
    assert len(peer.manager.log) == 0
    document = peer.get_axml_document("D")
    inserted = document.to_xml().count("<i ")
    outcomes = network.metrics.outcome_counts()
    assert inserted == outcomes["committed"]
    # Logical garbage from aborts is reclaimable.
    assert document.document.vacuum() >= 0
