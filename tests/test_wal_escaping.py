"""WAL persistence with hostile content: escaping round-trips."""

import pytest

from repro.axml.document import AXMLDocument
from repro.query.parser import parse_action
from repro.txn.operations import TransactionalOperation, build_compensation
from repro.txn.wal import OperationLog
from repro.xmlstore.serializer import canonical


def test_snapshot_with_entities_roundtrips():
    axml = AXMLDocument.from_xml(
        '<Shop><item note="a &amp; b &lt; c"><name>Q&amp;A &lt;guide&gt;</name>'
        "</item></Shop>",
        name="Shop",
    )
    pre = canonical(axml.document)
    log = OperationLog("P")
    TransactionalOperation(
        "T1",
        parse_action(
            '<action type="delete"><location>Select i/name from i in '
            "Shop//item;</location></action>"
        ),
    ).execute(axml, None, log)
    restored = OperationLog.from_text(log.to_text())
    snapshot = restored.entries_for("T1")[0].records[0].snapshot_xml
    assert "&amp;" in snapshot  # still-escaped content inside the snapshot
    for plan in build_compensation(restored, "T1"):
        plan.execute(axml.document)
    assert canonical(axml.document) == pre
    name = axml.document.root.child_elements()[0].first_child("name")
    assert name.text_content() == "Q&A <guide>"


def test_action_xml_with_quotes_roundtrips():
    axml = AXMLDocument.from_xml("<D><x q='say \"hi\"'/></D>", name="D")
    log = OperationLog("P")
    TransactionalOperation(
        "T1",
        parse_action(
            '<action type="insert"><data><y note="it&apos;s"/></data>'
            "<location>Select d from d in D;</location></action>"
        ),
    ).execute(axml, None, log)
    restored = OperationLog.from_text(log.to_text())
    entry = restored.entries_for("T1")[0]
    assert entry.action_xml == log.entries_for("T1")[0].action_xml


def test_replace_record_with_multiple_inserts_roundtrips():
    axml = AXMLDocument.from_xml("<D><item><v>1</v></item></D>", name="D")
    log = OperationLog("P")
    TransactionalOperation(
        "T1",
        parse_action(
            '<action type="replace"><data><v>2</v></data><data><w>3</w></data>'
            "<location>Select i/v from i in D//item;</location></action>"
        ),
    ).execute(axml, None, log)
    restored = OperationLog.from_text(log.to_text())
    record = restored.entries_for("T1")[0].records[0]
    assert record.kind == "replace"
    assert len(record.inserted) == 2
    assert "1" in record.deleted.snapshot_xml


def test_deep_subtree_snapshot_roundtrips():
    axml = AXMLDocument.from_xml(
        "<D><tree><a><b><c attr='x'>deep &amp; nested</c></b></a></tree></D>",
        name="D",
    )
    pre = canonical(axml.document)
    log = OperationLog("P")
    TransactionalOperation(
        "T1",
        parse_action(
            '<action type="delete"><location>Select d/tree from d in D;'
            "</location></action>"
        ),
    ).execute(axml, None, log)
    for plan in build_compensation(OperationLog.from_text(log.to_text()), "T1"):
        plan.execute(axml.document)
    assert canonical(axml.document) == pre
