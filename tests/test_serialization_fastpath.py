"""The serialization fast path (PR 9): epoch-cached serialize/digest,
structural clone, memoized entry codec, digest-first replica checks.

The contract under test is *invisibility*: with the fast path on, every
observable output — serialized text, digests, clone contents, chaos run
summaries — is byte-identical to what the cold path (every call
recomputed, every clone a serialize→parse round trip) produces.
"""

import hashlib

from hypothesis import given, settings, strategies as st

from repro.axml.document import AXMLDocument
from repro.baselines.snapshot_rollback import SnapshotRollback
from repro.chaos import ChaosConfig, run_chaos
from repro.chaos.oracle import AtomicityOracle
from repro.chaos.shrink import summary_text
from repro.obs.prof import PROF, SUMMARY_LOCAL_COUNTERS, profiled
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.p2p.replication import ReplicationManager
from repro.query.evaluate import evaluate_select
from repro.query.parser import parse_select
from repro.sim.metrics import MetricsCollector
from repro.txn.wal import LogEntry, entry_from_xml, entry_to_xml
from repro.xmlstore.fastpath import (
    fast_path_disabled,
    fast_path_enabled,
    set_fast_path_enabled,
)
from repro.xmlstore.nodes import Document
from repro.xmlstore.parser import parse_document
from repro.xmlstore.serializer import (
    canonical,
    canonical_digest,
    rebind_ids,
    serialize,
)


def build_doc(name="Shop"):
    return parse_document(
        "<Shop><item id='1'><price>10</price></item>"
        "<item id='2'><price>20</price></item></Shop>",
        name=name,
    )


def sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class TestSerializeCache:
    def test_repeat_serialize_hits_cache(self):
        doc = build_doc()
        first = serialize(doc)
        before = PROF.snapshot()
        assert serialize(doc) == first
        delta = PROF.delta_since(before)
        assert delta.get("serialize_cache_hits") == 1
        assert "serialize_tree_builds" not in delta

    def test_rendering_flags_are_cached_separately(self):
        doc = build_doc()
        plain = serialize(doc)
        with_ids = serialize(doc, include_ids=True)
        assert plain != with_ids
        assert serialize(doc) == plain
        assert serialize(doc, include_ids=True) == with_ids

    def test_attribute_write_invalidates(self):
        doc = build_doc()
        serialize(doc)
        doc.root.children[0].attributes["id"] = "9"
        assert "id=\"9\"" in serialize(doc)

    def test_attribute_delete_and_pop_invalidate(self):
        doc = build_doc()
        serialize(doc)
        del doc.root.children[0].attributes["id"]
        assert 'id="1"' not in serialize(doc)
        serialize(doc)
        doc.root.children[1].attributes.pop("id")
        assert 'id="2"' not in serialize(doc)

    def test_text_write_invalidates(self):
        doc = build_doc()
        serialize(doc)
        price = doc.root.children[0].children[0]
        price.children[0].value = "99"
        assert "<price>99</price>" in serialize(doc)

    def test_structural_mutation_invalidates(self):
        doc = build_doc()
        serialize(doc)
        doc.root.new_element("extra")
        assert "<extra/>" in serialize(doc)
        serialize(doc)
        doc.root.children[-1].detach()
        assert "<extra/>" not in serialize(doc)

    def test_attribute_write_leaves_structural_epoch_alone(self):
        # Attribute/text writes must not invalidate the index rank cache.
        doc = build_doc()
        structural = doc.mutation_epoch
        content = doc.content_epoch
        doc.root.children[0].attributes["id"] = "7"
        assert doc.mutation_epoch == structural
        assert doc.content_epoch > content

    def test_disabled_path_bypasses_cache(self):
        doc = build_doc()
        warm = serialize(doc)
        before = PROF.snapshot()
        with fast_path_disabled():
            assert not fast_path_enabled()
            assert serialize(doc) == warm
        delta = PROF.delta_since(before)
        assert delta.get("serialize_tree_builds") == 1
        assert "serialize_cache_hits" not in delta
        assert fast_path_enabled()

    def test_set_fast_path_enabled_returns_previous(self):
        assert set_fast_path_enabled(False) is True
        assert set_fast_path_enabled(True) is False


class TestCanonicalDigest:
    def test_digest_is_sha256_of_canonical_text(self):
        doc = build_doc()
        assert canonical_digest(doc) == sha(canonical(doc))

    def test_digest_is_cached_and_invalidated(self):
        doc = build_doc()
        first = canonical_digest(doc)
        before = PROF.snapshot()
        assert canonical_digest(doc) == first
        assert PROF.delta_since(before).get("serialize_digest_hits") == 1
        doc.root.new_element("extra")
        assert canonical_digest(doc) != first
        assert canonical_digest(doc) == sha(canonical(doc))

    def test_equal_trees_equal_digests(self):
        assert canonical_digest(build_doc("a")) == canonical_digest(build_doc("b"))

    def test_subtree_digest_uncached(self):
        doc = build_doc()
        item = doc.root.children[0]
        assert canonical_digest(item) == sha(serialize(item))


class TestCloneTree:
    def test_preserving_clone_is_byte_identical_with_ids(self):
        doc = build_doc()
        copy = doc.clone_tree(preserve_ids=True, name="copy")
        assert serialize(copy, include_ids=True) == serialize(doc, include_ids=True)
        assert copy.name == "copy"

    def test_rebinding_clone_gets_fresh_ids(self):
        doc = build_doc()
        copy = doc.clone_tree(preserve_ids=False)
        assert canonical(copy) == canonical(doc)
        assert serialize(copy, include_ids=True) != serialize(doc, include_ids=True)

    def test_clone_is_independent(self):
        doc = build_doc()
        copy = doc.clone_tree(preserve_ids=True)
        copy.root.new_element("extra")
        assert "<extra/>" not in serialize(doc)
        assert "<extra/>" in serialize(copy)

    def test_parse_equivalent_matches_roundtrip_exactly(self):
        doc = build_doc()
        with fast_path_disabled():
            roundtrip = parse_document(
                serialize(doc, include_ids=True), name="copy"
            )
            rebind_ids(roundtrip)
        fast = doc.clone_tree(preserve_ids=True, name="copy", parse_equivalent=True)
        assert serialize(fast, include_ids=True) == serialize(
            roundtrip, include_ids=True
        )

    def test_non_parse_normal_tree_falls_back(self):
        # Whitespace-padded and adjacent text nodes are normalized by the
        # parser; a parse-equivalent clone must take the real round trip
        # and end up identical to it.
        doc = Document("messy")
        root = doc.create_root("root")
        root.new_text("  padded  ")
        root.new_text("runs")
        before = PROF.snapshot()
        copy = doc.clone_tree(preserve_ids=True, parse_equivalent=True)
        assert PROF.delta_since(before).get("clone_fallback") == 1
        with fast_path_disabled():
            reference = parse_document(serialize(doc, include_ids=True))
            rebind_ids(reference)
        assert serialize(copy, include_ids=True) == serialize(
            reference, include_ids=True
        )

    def test_structural_clone_keeps_messy_text_without_parse_equivalence(self):
        doc = Document("messy")
        root = doc.create_root("root")
        root.new_text("  padded  ")
        copy = doc.clone_tree(preserve_ids=True)
        assert serialize(copy) == serialize(doc)

    def test_empty_document_clones(self):
        doc = Document("empty")
        assert doc.clone_tree(preserve_ids=True).root is None
        assert doc.clone_tree(parse_equivalent=True, preserve_ids=True).root is None

    def test_logical_counts_copied(self):
        doc = build_doc()
        copy = doc.clone_tree(preserve_ids=True)
        for src, dst in zip(doc.iter_elements(), copy.iter_elements()):
            assert src._logical_count == dst._logical_count

    def test_cloned_ids_resolve_in_the_copy(self):
        doc = build_doc()
        copy = doc.clone_tree(preserve_ids=True)
        for node in doc.iter():
            assert copy.get_node(node.node_id).node_id == node.node_id


class TestRestoreFrom:
    def test_restore_reverts_mutations(self):
        doc = build_doc()
        baseline = serialize(doc, include_ids=True)
        snapshot = doc.clone(preserve_ids=True)
        doc.root.new_element("extra")
        doc.root.children[0].attributes["id"] = "tampered"
        doc.restore_from(snapshot)
        assert serialize(doc, include_ids=True) == baseline

    def test_snapshot_rollback_baseline_uses_restore(self):
        axml = AXMLDocument(build_doc(), name="Shop")
        guard = SnapshotRollback()
        guard.guard("t1", axml)
        baseline = serialize(axml.document, include_ids=True)
        axml.document.root.new_element("extra")
        assert guard.rollback("t1", axml)
        assert serialize(axml.document, include_ids=True) == baseline
        # The restored document keeps serving correct (non-stale) text.
        axml.document.root.new_element("after")
        assert "<after/>" in serialize(axml.document)


class TestEntryCodecMemo:
    def entry(self):
        return LogEntry(
            seq=1, txn_id="t1", kind="service", document_name="Shop",
            action_xml="<action type='noop'/>", records=[], timestamp=1.5,
        )

    def test_memoized_frame_identical_to_cold(self):
        entry = self.entry()
        with fast_path_disabled():
            cold = entry_to_xml(entry)
        warm = entry_to_xml(entry)
        assert warm == cold
        before = PROF.snapshot()
        assert entry_to_xml(entry) == cold
        delta = PROF.delta_since(before)
        assert delta.get("entry_codec_hits") == 1
        assert "serialize_tree_builds" not in delta

    def test_decode_does_not_seed_the_cache(self):
        frame = entry_to_xml(self.entry())
        decoded = entry_from_xml(frame)
        assert decoded._xml_cache is None
        assert entry_to_xml(decoded) == frame

    def test_disabled_path_never_caches(self):
        entry = self.entry()
        with fast_path_disabled():
            entry_to_xml(entry)
            assert entry._xml_cache is None

    def test_cache_field_excluded_from_equality(self):
        a, b = self.entry(), self.entry()
        entry_to_xml(a)
        assert a == b


class TestSummaryLocalCounters:
    def test_fastpath_counters_stay_out_of_run_summaries(self):
        # The chaos runner merges PROF deltas into run metrics; cache
        # counters vary with the fast-path switch while behaviour does
        # not, so they must be skipped or summaries lose byte-identity.
        metrics = MetricsCollector()
        with profiled(metrics):
            serialize(build_doc())
            PROF.incr("query_tree_walks")
        counters = dict(metrics.counters)
        assert counters.get("prof_query_tree_walks") == 1
        assert not any(
            name.startswith("prof_") and name[len("prof_"):] in SUMMARY_LOCAL_COUNTERS
            for name in counters
        )


class TestOracleDigestFirst:
    def make_replicated_pair(self):
        network = SimNetwork()
        replication = ReplicationManager(network)
        peers = {
            "AP2": AXMLPeer("AP2", network),
            "AP3": AXMLPeer("AP3", network),
        }
        peers["AP2"].host_document(
            AXMLDocument.from_xml(
                "<Shop2><a x='1'/><b y='2'/></Shop2>", name="Shop2"
            )
        )
        replication.register_primary("Shop2", "AP2")
        replication.replicate_document("Shop2", "AP3")
        return network, peers

    def test_converged_replicas_match_by_digest(self):
        _network, peers = self.make_replicated_pair()
        oracle = AtomicityOracle(outcomes={}, expected=[], txn_ids={})
        before = PROF.snapshot()
        assert oracle._check_replicas(peers) == []
        assert PROF.delta_since(before).get("replica_digest_matches") == 1

    def test_sibling_reorder_converges_via_canonical_fallback(self):
        # Digest inequality is NOT divergence: the order-insensitive
        # canonical comparison must still judge a sibling permutation
        # of the same nodes as converged.
        _network, peers = self.make_replicated_pair()
        replica_root = peers["AP3"].get_axml_document("Shop2").document.root
        first = replica_root.children[0].detach()
        replica_root.append(first.node)
        primary_doc = peers["AP2"].get_axml_document("Shop2").document
        replica_doc = peers["AP3"].get_axml_document("Shop2").document
        assert canonical_digest(primary_doc) != canonical_digest(replica_doc)
        oracle = AtomicityOracle(outcomes={}, expected=[], txn_ids={})
        assert oracle._check_replicas(peers) == []

    def test_real_divergence_still_detected(self):
        _network, peers = self.make_replicated_pair()
        peers["AP3"].get_axml_document("Shop2").document.root.new_element("extra")
        oracle = AtomicityOracle(outcomes={}, expected=[], txn_ids={})
        kinds = {v.kind for v in oracle._check_replicas(peers)}
        assert kinds == {"replica_diverged"}


# ---------------------------------------------------------------------------
# the property: the cache is invisible under arbitrary interleavings
# ---------------------------------------------------------------------------

_ops = st.lists(
    st.tuples(
        st.sampled_from(
            ["attr", "text", "add", "detach", "clone", "snapshot",
             "rollback", "query", "digest"]
        ),
        st.integers(0, 10**6),
    ),
    min_size=1,
    max_size=30,
)


@given(ops=_ops)
@settings(max_examples=60, deadline=None)
def test_cached_output_always_matches_cold_serialization(ops):
    doc = build_doc()
    query = parse_select("Select n from n in Shop//price;")
    snapshot = None
    clones = []
    for kind, pick in ops:
        elements = list(doc.iter_elements())
        element = elements[pick % len(elements)]
        if kind == "attr":
            element.attributes["k"] = str(pick % 7)
        elif kind == "text":
            element.set_text(str(pick % 100))
        elif kind == "add":
            element.new_element(f"n{pick % 5}")
        elif kind == "detach" and element.parent is not None:
            element.detach()
        elif kind == "clone":
            clones.append(doc.clone_tree(preserve_ids=bool(pick % 2)))
        elif kind == "snapshot":
            snapshot = doc.clone(preserve_ids=True)
        elif kind == "rollback" and snapshot is not None:
            doc.restore_from(snapshot)
        elif kind == "query":
            evaluate_select(query, doc)
        elif kind == "digest":
            canonical_digest(doc)
        # The invariant, after every step: cached output == cold output.
        warm_plain = serialize(doc)
        warm_ids = serialize(doc, include_ids=True)
        with fast_path_disabled():
            assert serialize(doc) == warm_plain
            assert serialize(doc, include_ids=True) == warm_ids
        assert canonical_digest(doc) == sha(canonical(doc))
    for clone in clones:
        with fast_path_disabled():
            assert serialize(clone) == serialize(clone)


# ---------------------------------------------------------------------------
# regression: chaos run summaries are byte-identical, fast path on vs off
# ---------------------------------------------------------------------------

class TestSummaryByteIdentity:
    CONFIGS = {
        "plain_c1": ChaosConfig(seed=3, txns=6, fault_rate=0.2),
        "checkpointed_r1": ChaosConfig(
            seed=3, txns=6, fault_rate=0.2, crash_rate=0.3,
            durability=True, checkpoint_every=4, wal_batch=4,
        ),
        "replicated_r2": ChaosConfig(
            seed=3, txns=6, fault_rate=0.2, crash_rate=0.3,
            durability=True, replicas=2, ship_batch=2,
        ),
    }

    def test_summaries_identical_with_cache_on_and_off(self):
        for label, config in self.CONFIGS.items():
            warm = summary_text(run_chaos(config))
            with fast_path_disabled():
                cold = summary_text(run_chaos(config))
            assert warm == cold, f"{label}: summary diverged with fast path on"

    def test_no_fastpath_counters_in_summaries(self):
        result = run_chaos(self.CONFIGS["replicated_r2"])
        counters = result.summary["metrics"]["counters"]
        leaked = [
            name for name in counters
            if name.startswith("prof_")
            and name[len("prof_"):] in SUMMARY_LOCAL_COUNTERS
        ]
        assert leaked == []
