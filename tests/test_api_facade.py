"""The repro.api facade and the deprecated scenario shims.

Covers: facade construction parity with the legacy builders (identical
metric traces), DeprecationWarning emission, Transaction context-manager
semantics, and the Scenario wrap/as_scenario bridge."""

import pytest

from repro.api import Cluster
from repro.errors import ReproError


class TestShimEquivalence:
    def test_build_fig1_matches_facade_trace(self):
        import warnings

        from repro.sim.scenarios import build_fig1, run_root_transaction

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            scenario = build_fig1()
            txn, error = run_root_transaction(scenario)
        assert error is None
        scenario.peer("AP1").commit(txn.txn_id)

        cluster = Cluster.fig1()
        handle, error2 = cluster.run_topology()
        assert error2 is None
        handle.commit()

        assert scenario.metrics.snapshot() == cluster.metrics.snapshot()

    def test_build_atplist_matches_facade(self):
        from repro.sim.scenarios import build_atplist_scenario

        with pytest.deprecated_call():
            scenario = build_atplist_scenario(points_value="123")
        cluster = Cluster.atplist(points_value="123")
        assert sorted(scenario.peers) == sorted(cluster.peers)
        legacy_doc = scenario.peer("AP1").get_axml_document("ATPList")
        facade_doc = cluster.peer("AP1").get_axml_document("ATPList")
        assert legacy_doc.to_xml() == facade_doc.to_xml()

    def test_all_shims_warn(self):
        from repro.sim import scenarios

        with pytest.deprecated_call():
            scenarios.build_fig1()
        with pytest.deprecated_call():
            scenarios.build_fig2()
        with pytest.deprecated_call():
            scenarios.build_topology({"AP1": [("AP2", "S2")]})
        with pytest.deprecated_call():
            scenario = scenarios.build_atplist_scenario()
        with pytest.deprecated_call():
            scenarios.run_root_transaction(scenario)

    def test_wrap_and_as_scenario_roundtrip(self):
        from repro.sim.scenarios import Scenario

        cluster = Cluster.fig2()
        scenario = cluster.as_scenario()
        assert isinstance(scenario, Scenario)
        assert scenario.network is cluster.network
        assert scenario.topology == cluster.topology
        back = Cluster.wrap(scenario)
        assert back.network is cluster.network
        assert sorted(back.peers) == sorted(cluster.peers)


class TestClusterBuilding:
    def test_host_document_from_xml_text(self):
        cluster = Cluster()
        cluster.add_peer("AP1")
        doc = cluster.host_document("AP1", "<D><x/></D>", name="D")
        assert cluster.peer("AP1").get_axml_document("D") is doc
        assert cluster.replication.holders("D") == ["AP1"]

    def test_host_document_text_requires_name(self):
        cluster = Cluster()
        cluster.add_peer("AP1")
        with pytest.raises(ValueError):
            cluster.host_document("AP1", "<D/>")

    def test_unknown_peer_fails_fast(self):
        cluster = Cluster()
        with pytest.raises(KeyError):
            cluster.peer("ghost")
        with pytest.raises(KeyError):
            cluster.session("ghost")


class TestTransactionContextManager:
    def _cluster(self):
        cluster = Cluster()
        cluster.add_peer("AP1")
        cluster.host_document("AP1", "<Shop><items/></Shop>", name="Shop")
        return cluster

    INSERT = (
        '<action type="insert"><data><item/></data>'
        "<location>Select s from s in Shop//items;</location></action>"
    )

    def test_clean_exit_commits(self):
        cluster = self._cluster()
        with cluster.session("AP1").transaction() as txn:
            txn.submit(self.INSERT)
        assert txn.finished
        doc = cluster.peer("AP1").get_axml_document("Shop")
        assert "<item/>" in doc.to_xml()

    def test_exception_aborts_and_propagates(self):
        cluster = self._cluster()
        doc = cluster.peer("AP1").get_axml_document("Shop")
        with pytest.raises(RuntimeError, match="boom"):
            with cluster.session("AP1").transaction() as txn:
                txn.submit(self.INSERT)
                raise RuntimeError("boom")
        assert txn.finished
        assert "<item/>" not in doc.to_xml()  # compensation undid the insert

    def test_explicit_finish_wins_over_exit(self):
        cluster = self._cluster()
        with cluster.session("AP1").transaction() as txn:
            txn.submit(self.INSERT)
            txn.abort()
        doc = cluster.peer("AP1").get_axml_document("Shop")
        assert "<item/>" not in doc.to_xml()

    def test_invoke_returns_unified_outcome(self):
        cluster = Cluster.atplist()
        with cluster.session("AP1").transaction() as txn:
            outcome = txn.invoke(
                "AP2", "getPoints", {"name": "Roger Federer"}
            )
        assert outcome.ok
        assert outcome.provider_peer == "AP2"
        assert any("890" in f for f in outcome.fragments)

    def test_invoke_unknown_service_raises(self):
        cluster = self._cluster()
        cluster.add_peer("AP2")
        with pytest.raises(ReproError):
            with cluster.session("AP1").transaction() as txn:
                txn.invoke("AP2", "ghost")
        assert txn.finished
