"""Property-based tests (hypothesis) on the library's core invariants.

* XML serialize ∘ parse is the identity on trees;
* dynamic compensation restores the canonical pre-state for arbitrary
  operation sequences — the paper's central correctness claim;
* peer chains round-trip through the bracket notation;
* the operation log's undo order is the reverse of execution order.
"""

import string as stringlib

from hypothesis import given, settings, strategies as st

from repro.axml.document import AXMLDocument
from repro.errors import UpdateError
from repro.p2p.chain import PeerChain
from repro.query.parser import parse_action
from repro.query.update import apply_action
from repro.sim.rng import SeededRng
from repro.sim.workload import OperationMix, generate_catalogue, generate_operation
from repro.txn.compensation import compensating_actions_for
from repro.txn.operations import build_compensation
from repro.txn.wal import OperationLog
from repro.xmlstore.nodes import Document, Element
from repro.xmlstore.parser import parse_document
from repro.xmlstore.serializer import canonical, serialize

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

_name = st.text(
    alphabet=stringlib.ascii_lowercase, min_size=1, max_size=6
)
# The store is whitespace-normalizing (the parser trims surrounding
# whitespace of text nodes), so generated text is pre-stripped.
_text_value = (
    st.text(
        alphabet=stringlib.ascii_letters + stringlib.digits + " &<>'\"",
        min_size=1,
        max_size=12,
    )
    .map(str.strip)
    .filter(bool)
)


@st.composite
def xml_trees(draw, max_depth=3):
    """A random Document with arbitrary names, attributes and text."""

    def build(parent: Element, depth: int) -> None:
        for _ in range(draw(st.integers(0, 3))):
            kind = draw(st.sampled_from(["element", "text"]))
            if kind == "text":
                parent.new_text(draw(_text_value))
            else:
                child = parent.new_element(draw(_name))
                for attr in draw(st.lists(_name, max_size=2, unique=True)):
                    child.attributes[attr] = draw(_text_value)
                if depth < max_depth:
                    build(child, depth + 1)

    document = Document("prop")
    root = document.create_root(draw(_name))
    build(root, 0)
    return document


class TestXmlRoundtrip:
    @given(xml_trees())
    @settings(max_examples=60, deadline=None)
    def test_parse_serialize_identity(self, document):
        text = serialize(document)
        reparsed = parse_document(text)
        assert canonical(reparsed) == canonical(document)

    @given(xml_trees())
    @settings(max_examples=30, deadline=None)
    def test_id_persistence_roundtrip(self, document):
        from repro.xmlstore.serializer import rebind_ids

        text = serialize(document, include_ids=True)
        reparsed = parse_document(text)
        rebind_ids(reparsed)
        original_ids = {e.node_id for e in document.iter_elements()}
        restored_ids = {e.node_id for e in reparsed.iter_elements()}
        assert original_ids == restored_ids

    @given(xml_trees())
    @settings(max_examples=30, deadline=None)
    def test_clone_preserves_canonical(self, document):
        assert canonical(document.clone()) == canonical(document)

    @given(xml_trees())
    @settings(max_examples=30, deadline=None)
    def test_subtree_size_consistent(self, document):
        assert document.size() == sum(1 for _ in document.iter())


class TestCompensationProperty:
    """The §3.1 invariant: op ∘ compensation == identity (canonically)."""

    @given(st.integers(0, 2**31 - 1), st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_random_transaction_compensates_exactly(self, seed, length):
        rng = SeededRng(seed)
        axml = generate_catalogue(rng, item_count=rng.randint(3, 10), name="Cat")
        document = axml.document
        pre = canonical(document)
        applied = []
        for _ in range(length):
            action = generate_operation(rng, axml)
            try:
                result = apply_action(document, action)
            except UpdateError:
                continue  # operation found no target; skip
            applied.append(result)
        # compensate in reverse order of application
        for result in reversed(applied):
            for comp in compensating_actions_for(result, "Cat"):
                apply_action(document, comp, tolerate_missing_targets=True)
        assert canonical(document) == pre

    @given(st.integers(0, 2**31 - 1), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_log_driven_compensation(self, seed, length):
        """Same invariant, via the WAL + build_compensation path."""
        rng = SeededRng(seed)
        axml = generate_catalogue(rng, item_count=rng.randint(3, 8), name="Cat")
        log = OperationLog("P")
        pre = canonical(axml.document)
        from repro.txn.operations import TransactionalOperation

        for _ in range(length):
            action = generate_operation(rng, axml)
            try:
                TransactionalOperation("T1", action).execute(axml, None, log)
            except UpdateError:
                continue
        for plan in build_compensation(log, "T1"):
            plan.execute(axml.document)
        assert canonical(axml.document) == pre

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_unordered_compensation_reaches_acceptable_state(self, seed):
        """Unordered mode must still restore content, if not order."""
        rng = SeededRng(seed)
        axml = generate_catalogue(rng, item_count=5, name="Cat")
        document = axml.document
        pre_names = sorted(
            e.name.local for e in document.iter_elements()
        )
        action = generate_operation(rng, axml, OperationMix(0, 1, 0, 0))
        result = apply_action(document, action)
        for comp in compensating_actions_for(result, "Cat", ordered=False):
            apply_action(document, comp, tolerate_missing_targets=True)
        post_names = sorted(e.name.local for e in document.iter_elements())
        assert post_names == pre_names


class TestChainProperty:
    @given(st.integers(0, 2**31 - 1), st.integers(1, 12))
    @settings(max_examples=50, deadline=None)
    def test_random_chain_roundtrip(self, seed, size):
        rng = SeededRng(seed)
        chain = PeerChain("AP1", root_super=rng.coin(0.5))
        peers = ["AP1"]
        for index in range(2, size + 2):
            parent = rng.choice(peers)
            peer = f"AP{index}"
            chain.add_invocation(parent, peer, rng.coin(0.3))
            peers.append(peer)
        restored = PeerChain.from_text(chain.to_text())
        assert restored.to_text() == chain.to_text()
        for peer in peers:
            assert restored.parent_of(peer) == chain.parent_of(peer)
            assert restored.children_of(peer) == chain.children_of(peer)

    @given(st.integers(0, 2**31 - 1), st.integers(2, 10))
    @settings(max_examples=30, deadline=None)
    def test_ancestors_connect_to_root(self, seed, size):
        rng = SeededRng(seed)
        chain = PeerChain("AP1")
        peers = ["AP1"]
        for index in range(2, size + 2):
            parent = rng.choice(peers)
            chain.add_invocation(parent, f"AP{index}")
            peers.append(f"AP{index}")
        for peer in peers[1:]:
            ancestors = chain.ancestors_of(peer)
            assert ancestors[-1] == "AP1"
            # walking parents one at a time gives the same list
            walked, current = [], peer
            while chain.parent_of(current):
                current = chain.parent_of(current)
                walked.append(current)
            assert walked == ancestors


class TestLogProperty:
    @given(st.lists(st.sampled_from(["T1", "T2", "T3"]), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_undo_order_is_reverse(self, txn_ids):
        log = OperationLog()
        for txn_id in txn_ids:
            log.append(txn_id, "update", "D", "<a/>")
        for txn_id in set(txn_ids):
            entries = log.entries_for(txn_id)
            assert [e.seq for e in log.undo_entries(txn_id)] == [
                e.seq for e in reversed(entries)
            ]

    @given(st.lists(st.sampled_from(["T1", "T2"]), min_size=1, max_size=15))
    @settings(max_examples=30, deadline=None)
    def test_truncate_leaves_others(self, txn_ids):
        log = OperationLog()
        for txn_id in txn_ids:
            log.append(txn_id, "update", "D", "<a/>")
        t2_count = len(log.entries_for("T2"))
        log.truncate("T1")
        assert log.entries_for("T1") == []
        assert len(log.entries_for("T2")) == t2_count
