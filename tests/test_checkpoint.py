"""Checkpointed recovery, WAL group commit, and the typed config surface.

Covers the R1 tentpole (checkpoint store round-trips, torn-file
fallback, bounded tail replay, segment retention, group-commit
buffering/barriers/crash-discard) plus the PR 7 satellites: the
`Durability`/`RejoinMode` enums, `RunConfig`/`SweepConfig`, the kwarg
deprecation shims, and the stacklevel pin for every shim family.
"""

import json
import warnings

import pytest

import repro.api as api
from repro.api import RunConfig, SweepConfig
from repro.axml.document import AXMLDocument
from repro.chaos import ChaosConfig, FaultPlanner, run_chaos
from repro.chaos.planner import FaultEvent
from repro.p2p.failure import POINTS, FailureInjector
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.services.descriptor import ParamSpec, ServiceDescriptor
from repro.services.service import UpdateService
from repro.txn.checkpoint import Checkpoint, CheckpointStore
from repro.txn.modes import (
    Durability,
    DurabilityPolicy,
    RejoinMode,
    coerce_durability,
)
from repro.txn.wal import LogEntry
from repro.xmlstore.serializer import canonical


def _entry(seq, txn_id="t1", doc="D"):
    return LogEntry(
        seq=seq, txn_id=txn_id, kind="update", document_name=doc,
        action_xml='<action type="insert"/>', records=[], timestamp=0.1,
    )


def durable_world(tmp_path, **policy_kwargs):
    """Origin + durable worker; policy knobs come from the caller."""
    network = SimNetwork()
    origin = AXMLPeer("Origin", network)
    worker = AXMLPeer(
        "Worker", network,
        durability=DurabilityPolicy(
            directory=str(tmp_path / "worker-wal"), **policy_kwargs
        ),
    )
    worker.host_document(AXMLDocument.from_xml("<D><slots/></D>", name="D"))
    worker.host_service(UpdateService(
        ServiceDescriptor(
            "book", kind="update", params=(ParamSpec("c"),),
            target_document="D",
        ),
        '<action type="insert"><data><slot c="$c"/></data>'
        "<location>Select d from d in D//slots;</location></action>",
    ))
    return network, origin, worker


def commit_one(origin, c):
    txn = origin.begin_transaction()
    origin.invoke(txn.txn_id, "Worker", "book", {"c": c})
    origin.commit(txn.txn_id)
    return txn


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "P1")
        ckpt = Checkpoint(
            index=3, last_seq=9, tail_segment=4,
            documents={"D": "<D><slots/></D>", "E": "<E/>"},
            entries=[_entry(7), _entry(9)],
        )
        store.write(ckpt)
        loaded, torn = store.load_latest()
        assert torn == 0
        assert loaded.index == 3
        assert loaded.last_seq == 9
        assert loaded.tail_segment == 4
        assert loaded.documents == ckpt.documents
        assert [e.seq for e in loaded.entries] == [7, 9]
        assert loaded.entries[0].txn_id == "t1"

    def test_torn_newest_falls_back_to_previous(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "P1")
        store.write(Checkpoint(index=1, last_seq=2, tail_segment=2,
                               documents={"D": "<D/>"}))
        store.write(Checkpoint(index=2, last_seq=5, tail_segment=3,
                               documents={"D": "<D><x/></D>"}))
        assert store.tear_newest() is not None
        loaded, torn = store.load_latest()
        assert torn == 1
        assert loaded.index == 1
        assert loaded.documents == {"D": "<D/>"}
        # Read-only: the torn file stays for deterministic replays.
        assert len(store.paths()) == 2

    def test_every_checkpoint_torn_means_none(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "P1")
        store.write(Checkpoint(index=1, last_seq=1, tail_segment=1))
        store.tear_newest()
        loaded, torn = store.load_latest()
        assert loaded is None
        assert torn == 1

    def test_trailing_garbage_invalidates(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "P1")
        path = store.write(Checkpoint(index=1, last_seq=1, tail_segment=1))
        with open(path, "ab") as fh:
            fh.write(b"junk\n")
        assert store.load_latest() == (None, 1)

    def test_retire_keeps_newer_generations(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "P1")
        for i in (1, 2, 3):
            store.write(Checkpoint(index=i, last_seq=i, tail_segment=i))
        removed = store.retire(2)
        assert len(removed) == 1
        assert [store._index_of(p) for p in store.paths()] == [2, 3]


class TestWalCheckpointing:
    def test_checkpoints_bound_recovery_replay(self, tmp_path):
        network, origin, worker = durable_world(tmp_path, checkpoint_every=4)
        for i in range(11):
            commit_one(origin, f"c{i}")
        worker.crash()
        before = network.metrics.get("recovery_replay_entries")
        worker.rejoin(mode=RejoinMode.IN_DOUBT)
        replayed = network.metrics.get("recovery_replay_entries") - before
        assert replayed <= 4
        assert network.metrics.get("checkpoints") >= 2
        assert network.metrics.get("checkpoint_bytes") > 0
        # All 11 committed effects survived the bounded replay.
        assert worker.get_axml_document("D").to_xml().count("<slot c=") == 11

    def test_checkpoint_retention_truncates_segments(self, tmp_path):
        import os

        network, origin, worker = durable_world(tmp_path, checkpoint_every=2)
        for i in range(10):
            commit_one(origin, f"c{i}")
        directory = worker.wal.directory
        ckpts = [n for n in os.listdir(directory) if n.endswith(".ckpt")]
        segs = sorted(n for n in os.listdir(directory) if n.endswith(".seg"))
        # Two generations of checkpoints, and only the segments at or
        # past the previous generation's tail watermark survive.
        assert len(ckpts) == 2
        store = CheckpointStore(directory, "Worker")
        previous, _ = store.load_latest()
        older = store._parse(store.paths()[0])
        assert all(
            int(name[4:-4]) >= older.tail_segment for name in segs
        )
        assert previous.index == older.index + 1

    def test_torn_checkpoint_recovery_regression(self, tmp_path):
        """A crash mid-publish tears the newest checkpoint; recovery
        must fall back to the previous generation + a longer replay and
        still reconstruct the exact committed state."""
        network, origin, worker = durable_world(tmp_path, checkpoint_every=2)
        for i in range(9):
            commit_one(origin, f"c{i}")
        expected = canonical(worker.get_axml_document("D").document)
        worker.crash()
        CheckpointStore(worker.wal.directory, "Worker").tear_newest()
        worker.rejoin(mode=RejoinMode.IN_DOUBT)
        assert network.metrics.get("checkpoints_torn") == 1
        assert canonical(worker.get_axml_document("D").document) == expected
        assert not worker.wal.load().entries

    def test_in_flight_share_survives_checkpointing(self, tmp_path):
        network, origin, worker = durable_world(tmp_path, checkpoint_every=2)
        for i in range(4):
            commit_one(origin, f"c{i}")
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "inflight"})
        worker.crash()
        assert worker.rejoin(mode=RejoinMode.IN_DOUBT) == 1
        assert worker.resolve_in_doubt(txn.txn_id, committed=False) == "aborted"
        assert "inflight" not in worker.get_axml_document("D").to_xml()
        assert worker.get_axml_document("D").to_xml().count("<slot c=") == 4

    def test_checkpoint_restores_missing_document(self, tmp_path):
        network, origin, worker = durable_world(tmp_path, checkpoint_every=2)
        for i in range(4):
            commit_one(origin, f"c{i}")
        expected = worker.get_axml_document("D").to_xml()
        worker.crash()
        # Model a restart on a host that lost the store's materialized
        # document: the checkpoint snapshot brings it back.
        del worker.documents["D"]
        worker.rejoin(mode=RejoinMode.IN_DOUBT)
        assert worker.get_axml_document("D").to_xml() == expected


class TestGroupCommit:
    def test_appends_buffer_until_commit_barrier(self, tmp_path):
        network, origin, worker = durable_world(
            tmp_path, wal_batch=8, flush_on_prepare=False,
        )
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "a"})
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "b"})
        assert len(worker.wal.pending_entries()) == 2
        assert not worker.wal.load().entries          # nothing on disk yet
        assert len(worker.wal.load(include_pending=True).entries) == 2
        origin.commit(txn.txn_id)
        # The tombstone barrier flushed the batch before truncating.
        assert worker.wal.pending_entries() == []
        assert network.metrics.get("wal_batch_flushes") == 1
        assert not worker.wal.load().entries          # then truncated

    def test_flush_on_prepare_barrier_at_hand_off(self, tmp_path):
        network, origin, worker = durable_world(tmp_path, wal_batch=8)
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "a"})
        # flush_on_prepare (the default) flushed at the share hand-off:
        # the entry is durable before the invoker saw the result.
        assert worker.wal.pending_entries() == []
        assert [e.seq for e in worker.wal.load().entries] == [1]

    def test_batch_size_triggers_flush(self, tmp_path):
        network, origin, worker = durable_world(
            tmp_path, wal_batch=2, flush_on_prepare=False,
        )
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "a"})
        assert len(worker.wal.pending_entries()) == 1
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "b"})
        assert worker.wal.pending_entries() == []     # batch filled -> one write
        assert network.metrics.get("wal_batch_flushes") == 1

    def test_flush_interval_quantum(self, tmp_path):
        network, origin, worker = durable_world(
            tmp_path, wal_batch=8, flush_interval=0.05,
            flush_on_prepare=False,
        )
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "a"})
        assert len(worker.wal.pending_entries()) == 1
        network.events.run_until(network.clock.now + 0.1)
        assert worker.wal.pending_entries() == []
        assert [e.seq for e in worker.wal.load().entries] == [1]
        # The one-shot timer drained: run_all() must not spin.
        assert network.events.pending() == 0

    def test_crash_discards_unflushed_and_undoes_effects(self, tmp_path):
        network, origin, worker = durable_world(
            tmp_path, wal_batch=8, flush_on_prepare=False,
        )
        pre = canonical(worker.get_axml_document("D").document)
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "lost"})
        worker.crash()
        # Buffered-but-unflushed entries are gone after restart, and the
        # store shows no trace of their effects.
        assert network.metrics.get("wal_unflushed_discarded") == 1
        assert canonical(worker.get_axml_document("D").document) == pre
        assert worker.rejoin(mode=RejoinMode.IN_DOUBT) == 0
        assert not worker.wal.load().entries

    def test_graceful_close_persists_buffer(self, tmp_path):
        network, origin, worker = durable_world(
            tmp_path, wal_batch=8, flush_on_prepare=False,
        )
        txn = origin.begin_transaction()
        origin.invoke(txn.txn_id, "Worker", "book", {"c": "a"})
        worker.wal.close()
        assert [e.seq for e in worker.wal.reload()] == [1]


class TestCrashConsistencyEveryPoint:
    """Property-style: crash a peer at every protocol point with
    checkpointing + batching on; the recovered committed state must be
    byte-identical to a run that never saw the crashed transaction."""

    POLICY = dict(checkpoint_every=2, wal_batch=2)

    def _run_with_crash(self, tmp_path, point, tear):
        network, origin, worker = durable_world(
            tmp_path / f"crash-{point}-{tear}", **self.POLICY
        )
        injector = FailureInjector(network)
        worker.injector = injector
        for i in range(3):
            commit_one(origin, f"pre{i}")
        injector.crash_peer_during(
            "Worker", "book", point, restart_delay=0.25,
            tear_checkpoint=tear,
        )
        doomed = origin.begin_transaction()
        with pytest.raises(Exception):
            origin.invoke(doomed.txn_id, "Worker", "book", {"c": "doomed"})
        network.events.run_all()                      # restart + rejoin
        assert not worker.disconnected
        context = worker.manager.contexts.get(doomed.txn_id)
        if context is not None and not context.is_finished:
            worker.resolve_in_doubt(doomed.txn_id, committed=False)
        for i in range(3):
            commit_one(origin, f"post{i}")
        assert not worker.wal.load(include_pending=True).entries
        return canonical(worker.get_axml_document("D").document)

    def _run_without_crash(self, tmp_path):
        network, origin, worker = durable_world(
            tmp_path / "twin", **self.POLICY
        )
        for i in range(3):
            commit_one(origin, f"pre{i}")
        for i in range(3):
            commit_one(origin, f"post{i}")
        return canonical(worker.get_axml_document("D").document)

    @pytest.mark.parametrize("tear", [False, True])
    @pytest.mark.parametrize("point", POINTS)
    def test_recovered_state_matches_uncrashed_twin(
        self, tmp_path, point, tear
    ):
        crashed = self._run_with_crash(tmp_path, point, tear)
        clean = self._run_without_crash(tmp_path)
        assert crashed == clean


class TestModes:
    def test_durability_coerce(self):
        assert Durability.coerce("wal") is Durability.WAL
        assert Durability.coerce(Durability.MEMORY) is Durability.MEMORY
        with pytest.raises(ValueError, match="unknown durability"):
            Durability.coerce("tape")

    def test_rejoin_mode_coerce(self):
        assert RejoinMode.coerce("in_doubt") is RejoinMode.IN_DOUBT
        assert RejoinMode.coerce(RejoinMode.COMPENSATE) is RejoinMode.COMPENSATE
        with pytest.raises(ValueError, match="unknown rejoin mode"):
            RejoinMode.coerce("nonsense")

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DurabilityPolicy(directory="x", wal_batch=0)
        with pytest.raises(ValueError):
            DurabilityPolicy(directory="x", checkpoint_every=-1)
        with pytest.raises(ValueError):
            DurabilityPolicy(directory="x", flush_interval=0)
        assert DurabilityPolicy(directory="x").mode is Durability.WAL
        assert DurabilityPolicy().mode is Durability.MEMORY

    def test_coerce_durability(self, tmp_path):
        assert coerce_durability(None) is None
        assert coerce_durability("") is None
        policy = coerce_durability(str(tmp_path))
        assert policy == DurabilityPolicy(directory=str(tmp_path))
        assert coerce_durability(policy) is policy
        with pytest.raises(TypeError):
            coerce_durability(7)

    def test_peer_accepts_policy_and_enum(self, tmp_path):
        network, origin, worker = durable_world(tmp_path)
        assert worker.durability_policy.wal_batch == 1
        assert worker.wal is not None
        network.disconnect("Worker")
        worker.rejoin(mode=RejoinMode.COMPENSATE)
        assert not worker.disconnected


class TestRunSweepConfig:
    def test_implicit_durability(self):
        assert not RunConfig().to_chaos_config().durability
        assert RunConfig(crash_rate=0.1).to_chaos_config().durability
        assert RunConfig(checkpoint_every=4).to_chaos_config().durability
        assert RunConfig(wal_batch=8).to_chaos_config().durability
        assert RunConfig(mutate="crash_skip_undo").to_chaos_config().durability

    def test_cli_flags_map_onto_run_config(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "chaos", "--seed", "3", "--txns", "5",
            "--checkpoint-every", "4", "--wal-batch", "8",
            "--crash-rate", "0.25",
        ])
        config = RunConfig.from_namespace(args)
        assert config == RunConfig(
            seed=3, txns=5, checkpoint_every=4, wal_batch=8, crash_rate=0.25
        )
        sweep = SweepConfig.from_namespace(args)
        assert sweep.run == config
        assert sweep.concurrencies == (2, config.concurrency)

    def test_bench_parser_shares_the_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "--smoke", "--seed", "9"])
        assert RunConfig.from_namespace(args).seed == 9

    def test_chaos_accepts_run_config_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = api.chaos(RunConfig(txns=4, fault_rate=0.0))
        assert result.ok

    def test_chaos_sweep_accepts_sweep_config(self):
        table, failures = api.chaos_sweep(
            SweepConfig(run=RunConfig(txns=4, fault_rate=0.0), seeds=2)
        )
        assert not failures
        assert len(table.rows) == 2

    def test_kwarg_shims_warn_and_point_at_caller(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = api.chaos(txns=4, fault_rate=0.0)
        assert result.ok
        assert caught[0].category is DeprecationWarning
        assert caught[0].filename == __file__

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            api.chaos_sweep(range(1), txns=4, fault_rate=0.0)
        assert caught[0].category is DeprecationWarning
        assert caught[0].filename == __file__

    def test_legacy_scenario_shims_point_at_caller(self):
        # The PR 2 shims' stacklevel, pinned: the warning must name this
        # file, not repro/sim/scenarios.py.
        from repro.sim.scenarios import build_fig1, run_root_transaction

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            scenario = build_fig1()
            run_root_transaction(scenario)
        assert len(caught) == 2
        assert all(w.category is DeprecationWarning for w in caught)
        assert all(w.filename == __file__ for w in caught)

    def test_config_mixing_rejected(self):
        with pytest.raises(TypeError):
            api.chaos(RunConfig(), txns=4)
        with pytest.raises(TypeError):
            api.chaos_sweep(SweepConfig(), txns=4)


class TestChaosCheckpointing:
    CONFIG = ChaosConfig(
        seed=1, txns=10, fault_rate=0.2, crash_rate=0.3, durability=True,
        checkpoint_every=3, wal_batch=3,
    )

    def test_config_validation(self):
        with pytest.raises(ValueError, match="durability"):
            ChaosConfig(checkpoint_every=4)
        with pytest.raises(ValueError, match="durability"):
            ChaosConfig(wal_batch=8)

    def test_to_dict_elides_defaults(self):
        plain = ChaosConfig(seed=1).to_dict()
        assert "checkpoint_every" not in plain
        assert "wal_batch" not in plain
        tuned = self.CONFIG.to_dict()
        assert tuned["checkpoint_every"] == 3
        assert tuned["wal_batch"] == 3
        assert ChaosConfig.from_dict(tuned) == self.CONFIG

    def test_fault_event_elides_tear_flag(self):
        assert "tear_checkpoint" not in FaultEvent(kind="crash").to_dict()
        event = FaultEvent(kind="crash", tear_checkpoint=True)
        assert event.to_dict()["tear_checkpoint"] is True
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_tear_flag_only_sampled_with_checkpoints(self):
        providers = ["AP1", "AP2"]
        kwargs = dict(
            seed=11, providers=providers,
            provider_methods={p: f"S{p[2:]}" for p in providers},
            txns=40, fault_rate=0.0, horizon=3.0, crash_rate=0.5,
        )
        off = FaultPlanner(**kwargs).plan()
        on = FaultPlanner(checkpoints=True, **kwargs).plan()
        assert all(not e.tear_checkpoint for e in off.events)
        assert any(e.tear_checkpoint for e in on.events)
        # The tear draw happens after the base fields, so existing
        # crash schedules keep their peers/points/delays.
        for base, extra in zip(off.events, on.events):
            assert (base.peer, base.point, base.delay) == (
                extra.peer, extra.point, extra.delay
            )

    def test_checkpointed_crash_chaos_is_clean(self):
        result = run_chaos(self.CONFIG)
        assert result.ok, result.violations
        counters = result.summary["metrics"]["counters"]
        assert counters.get("wal_batch_flushes", 0) > 0
        assert counters.get("checkpoints", 0) >= 1

    def test_checkpointed_summary_is_byte_identical(self):
        a = json.dumps(run_chaos(self.CONFIG).summary, sort_keys=True)
        b = json.dumps(run_chaos(self.CONFIG).summary, sort_keys=True)
        assert a == b
