"""Quickstart: one peer, one document, transactions with dynamic compensation.

Run:  python examples/quickstart.py
"""

from repro import AXMLDocument, AXMLPeer, SimNetwork

def main() -> None:
    # An AXML peer hosts XML documents and exposes query/update services.
    network = SimNetwork()
    peer = AXMLPeer("AP1", network)
    shop = peer.host_document(
        AXMLDocument.from_xml(
            """
            <Shop>
              <item id="1"><name>keyboard</name><price>45</price></item>
              <item id="2"><name>mouse</name><price>19</price></item>
            </Shop>
            """,
            name="Shop",
        )
    )
    print("initial document:")
    print(shop.to_pretty(), "\n")

    # --- a transaction that commits -----------------------------------
    txn = peer.begin_transaction()
    peer.submit(
        txn.txn_id,
        '<action type="replace"><data><price>39</price></data>'
        "<location>Select i/price from i in Shop//item "
        "where i/name = keyboard;</location></action>",
    )
    peer.submit(
        txn.txn_id,
        '<action type="insert"><data><item id="3"><name>cable</name>'
        "<price>5</price></item></data>"
        "<location>Select s from s in Shop;</location></action>",
    )
    peer.commit(txn.txn_id)
    print(f"after committing {txn.txn_id}:")
    print(shop.to_pretty(), "\n")

    # --- a transaction that aborts -------------------------------------
    # The paper's point (§3.1): compensation is *constructed at run time*
    # from the operation log — deleted subtrees are re-inserted from their
    # logged snapshots, inserts are deleted by their returned node ids.
    txn2 = peer.begin_transaction()
    peer.submit(
        txn2.txn_id,
        '<action type="delete"><location>Select i from i in Shop//item '
        "where i/price > 20;</location></action>",
    )
    peer.submit(
        txn2.txn_id,
        '<action type="replace"><data><name>trackball</name></data>'
        "<location>Select i/name from i in Shop//item "
        "where i/name = mouse;</location></action>",
    )
    print(f"inside {txn2.txn_id} (keyboard gone, mouse renamed):")
    print(shop.to_pretty(), "\n")

    peer.abort(txn2.txn_id)
    print(f"after aborting {txn2.txn_id} (state restored by compensation):")
    print(shop.to_pretty())


if __name__ == "__main__":
    main()
