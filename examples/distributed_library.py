"""Distributed document storage (§1) and continuous services.

A library catalogue lives on AP1, but its <books> section is distributed
to AP2 (a fragment placeholder — an embedded service call — stays
behind).  The script shows both of the paper's access options, the
transactional behaviour of fragment copies, and a frequency-driven
continuous service streaming price updates.

Run:  python examples/distributed_library.py
"""

from repro import AXMLDocument, AXMLPeer, ReplicationManager, SimNetwork
from repro.axml.continuous import ContinuousDriver
from repro.axml.materialize import InvocationOutcome
from repro.p2p.distribution import distribute_fragment, remote_subquery
from repro.query.parser import parse_select
from repro.xmlstore.serializer import canonical


def main() -> None:
    network = SimNetwork()
    ReplicationManager(network)
    ap1 = AXMLPeer("AP1", network)
    ap2 = AXMLPeer("AP2", network)
    library = ap1.host_document(
        AXMLDocument.from_xml(
            """
            <Lib>
              <books>
                <book><title>Sagas</title><year>1987</year></book>
                <book><title>ARIES</title><year>1992</year></book>
                <book><title>Spheres</title><year>2000</year></book>
              </books>
              <cds><cd><name>Goldberg</name></cd></cds>
            </Lib>
            """,
            name="Lib",
        )
    )
    network.replication.register_primary("Lib", "AP1")
    placement = distribute_fragment(ap1, "Lib", "//books", ap2)
    print("after distributing <books> to AP2, AP1 holds:")
    print(library.to_pretty(), "\n")

    # ---- option (a): ship the sub-query to the fragment's host --------
    txn = ap1.begin_transaction()
    subquery = parse_select(
        f"Select b/title from b in {placement.fragment_document}//book "
        "where b/year > 1990;"
    )
    print("option (a), sub-query shipping:", remote_subquery(
        ap1, txn.txn_id, placement, subquery))
    print("local document untouched:", "Sagas" not in library.to_xml(), "\n")
    ap1.commit(txn.txn_id)

    # ---- option (b): fragment copy via lazy materialization ------------
    pre = canonical(library.document)
    txn = ap1.begin_transaction()
    outcome = ap1.submit(
        txn.txn_id,
        # note: '<' inside XML text must be escaped as &lt;
        '<action type="query"><location>Select b/title from b in Lib//book '
        "where b/year &lt; 1990;</location></action>",
    )
    print("option (b), lazy copy — results:", outcome.query_result.texts())
    print("fragment copied in:", "Sagas" in library.to_xml())
    ap1.abort(txn.txn_id)
    print("aborted: copy compensated away:", canonical(library.document) == pre, "\n")

    # ---- continuous service: periodic price feed ------------------------
    feed = ap1.host_document(
        AXMLDocument.from_xml(
            "<Feed><axml:sc mode='replace' methodName='getPrice' "
            "frequency='1.0'><price>10</price></axml:sc></Feed>",
            name="Feed",
        )
    )
    prices = iter(range(11, 99))
    driver = ContinuousDriver(
        feed,
        lambda call, params: InvocationOutcome([f"<price>{next(prices)}</price>"]),
        network.events,
    )
    driver.start()
    network.events.run_until(4.2)
    print(f"continuous getPrice ticked {driver.tick_count()} times in 4.2s;")
    print("current feed:", feed.to_xml())


if __name__ == "__main__":
    main()
