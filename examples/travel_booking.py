"""A composite travel booking across four peers — nested recovery in action.

The classic compensation example ("the compensation of Book Hotel is
Cancel Hotel Booking", §3.1) as an AXML transaction:

* ``Agency`` (origin) keeps an itinerary document;
* ``AirlinePeer``, ``HotelPeer`` and ``CarPeer`` each host a booking
  document and a ``book*`` update service.

Three runs:

1. everything succeeds → commit;
2. the car rental faults after flight+hotel booked → nested recovery
   compensates all peers (peer-dependent mode);
3. same failure under *peer-independent* compensation (§3.2): each
   provider returned its compensating-service definition with the
   booking result, so the origin drives the cleanup directly — and the
   providers never know they executed compensations.

Run:  python examples/travel_booking.py
"""

from repro import (
    AXMLDocument,
    AXMLPeer,
    FailureInjector,
    ServiceDescriptor,
    ServiceFault,
    SimNetwork,
    UpdateService,
)
from repro.services.descriptor import ParamSpec
from repro.xmlstore.serializer import canonical


def build_world(peer_independent: bool):
    network = SimNetwork()
    injector = FailureInjector(network)
    peers = {}
    for name in ("Agency", "AirlinePeer", "HotelPeer", "CarPeer"):
        peers[name] = AXMLPeer(
            name, network, peer_independent=peer_independent, injector=injector
        )
    peers["Agency"].host_document(
        AXMLDocument.from_xml("<Itinerary><legs/></Itinerary>", name="Itinerary")
    )
    bookings = {
        "AirlinePeer": ("bookFlight", "Flights", "flight"),
        "HotelPeer": ("bookHotel", "Hotels", "room"),
        "CarPeer": ("bookCar", "Cars", "car"),
    }
    for peer_name, (method, doc_name, unit) in bookings.items():
        peers[peer_name].host_document(
            AXMLDocument.from_xml(f"<{doc_name}><bookings/></{doc_name}>", name=doc_name)
        )
        peers[peer_name].host_service(
            UpdateService(
                ServiceDescriptor(
                    method,
                    kind="update",
                    params=(ParamSpec("customer"),),
                    target_document=doc_name,
                ),
                f'<action type="insert"><data><{unit} customer="$customer"/></data>'
                f"<location>Select b from b in {doc_name}//bookings;</location></action>",
            )
        )
    return network, injector, peers


def booked_state(peers):
    out = []
    for name, doc in (("AirlinePeer", "Flights"), ("HotelPeer", "Hotels"), ("CarPeer", "Cars")):
        out.append(f"  {doc}: {peers[name].get_axml_document(doc).to_xml()}")
    return "\n".join(out)


def run_booking(peers, injector=None, fail_car=False):
    if fail_car and injector is not None:
        injector.fault_service("CarPeer", "bookCar", "NoCarsAvailable")
    agency = peers["Agency"]
    txn = agency.begin_transaction()
    try:
        agency.invoke(txn.txn_id, "AirlinePeer", "bookFlight", {"customer": "ada"})
        agency.invoke(txn.txn_id, "HotelPeer", "bookHotel", {"customer": "ada"})
        agency.invoke(txn.txn_id, "CarPeer", "bookCar", {"customer": "ada"})
    except ServiceFault as fault:
        print(f"  bookCar raised {fault.fault_name!r} -> aborting the trip")
        agency.abort(txn.txn_id)
        return txn, False
    agency.commit(txn.txn_id)
    return txn, True


def main() -> None:
    print("=== run 1: happy path (peer-dependent) ===")
    network, injector, peers = build_world(peer_independent=False)
    txn, ok = run_booking(peers)
    print(f"  committed: {ok}")
    print(booked_state(peers), "\n")

    print("=== run 2: car rental fails -> nested recovery compensates ===")
    network, injector, peers = build_world(peer_independent=False)
    pre = {
        name: canonical(peers[name].get_axml_document(doc).document)
        for name, doc in (("AirlinePeer", "Flights"), ("HotelPeer", "Hotels"))
    }
    txn, ok = run_booking(peers, injector, fail_car=True)
    print(f"  committed: {ok}")
    print(booked_state(peers))
    restored = all(
        canonical(peers[name].get_axml_document(doc).document) == pre[name]
        for name, doc in (("AirlinePeer", "Flights"), ("HotelPeer", "Hotels"))
    )
    print(f"  flight and hotel bookings compensated: {restored}\n")

    print("=== run 3: same failure, peer-independent compensation (§3.2) ===")
    network, injector, peers = build_world(peer_independent=True)
    txn, ok = run_booking(peers, injector, fail_car=True)
    print(f"  committed: {ok}")
    ledger = peers["Agency"].manager.context(txn.txn_id).received_compensations
    print(f"  compensating-service definitions the origin had collected: {len(ledger)}")
    print(f"  compensations executed by providers unknowingly: "
          f"{network.metrics.get('peer_independent_compensations')}")
    print(booked_state(peers))


if __name__ == "__main__":
    main()
