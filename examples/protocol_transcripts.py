"""Annotated protocol transcripts — the paper's walk-throughs, live.

Runs the §3.2 and §3.3 scenarios with a trace recorder attached and
prints every network interaction with commentary, so you can follow the
message flows the paper describes in prose.

Run:  python examples/protocol_transcripts.py
"""

from repro.api import Cluster
from repro.sim.trace import TraceRecorder
from repro.txn.recovery import FaultPolicy


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    banner("1. Fig.1, happy path — nested invocation, depth-first")
    scenario = Cluster.fig1()
    recorder = TraceRecorder(scenario.network)
    txn, _ = scenario.run_topology()
    txn.commit()
    print(recorder.transcript())
    print("\n(every result returns inside-out; commit notifies all 5 participants)")

    banner("2. Fig.1, AP5 fails while processing S5 — §3.2 steps 1-4")
    scenario = Cluster.fig1()
    recorder = TraceRecorder(scenario.network)
    scenario.injector.fault_service("AP5", "S5", "Crash", point="after_execute")
    scenario.run_topology()
    print(recorder.transcript())
    print(
        "\n(step 1: AP5 aborts and notifies AP6; the fault unwinds to AP3;\n"
        " step 4: AP3 has no handler, aborts, notifies AP4; same at AP1 -> AP2)"
    )

    banner("3. Fig.1, same failure with a retry handler at AP3 — forward recovery")
    scenario = Cluster.fig1()
    recorder = TraceRecorder(scenario.network)
    scenario.injector.fault_service("AP5", "S5", "Crash", times=1, point="after_execute")
    scenario.peer("AP3").set_fault_policy(
        "S5", [FaultPolicy(fault_names={"Crash"}, retry_times=1)]
    )
    txn, _ = scenario.run_topology()
    txn.commit()
    print(recorder.transcript())
    print(
        "\n(only the failed S5/S6 subtree aborts and re-runs; AP1 and AP2 never\n"
        " hear about the failure — 'undo only as much as required')"
    )

    banner("4. Fig.2, AP3 dies while AP6 processes S6 — §3.3(b) chaining")
    scenario = Cluster.fig2()
    recorder = TraceRecorder(scenario.network)
    scenario.injector.disconnect_peer_during("AP3", "AP6", "S6", "after_local_work")
    scenario.run_topology()
    print(recorder.transcript())
    print(
        "\n(AP6 cannot return S6's results to dead AP3: the chain routes a\n"
        " disconnect_notice and the redirected_result to grandparent AP2)"
    )


if __name__ == "__main__":
    main()
