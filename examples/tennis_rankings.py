"""The paper's running example (§3.1): ATPList.xml across three peers.

AP1 hosts ATPList.xml with two embedded service calls; AP2 provides
``getPoints`` (replace mode) and AP3 ``getGrandSlamsWonbyYear`` (merge
mode).  The script walks through the §3.1 worked examples:

* Query A lazily materializes only ``getGrandSlamsWonbyYear``;
* Query B lazily materializes only ``getPoints``;
* both queries *mutate* the document, so aborting the transaction runs
  dynamically constructed compensation that restores it exactly.

Run:  python examples/tennis_rankings.py
"""

from repro.api import Cluster
from repro.sim.scenarios import QUERY_A, QUERY_B
from repro.xmlstore.serializer import canonical


def show(title: str, text: str) -> None:
    print(f"--- {title} ---")
    print(text)
    print()


def main() -> None:
    scenario = Cluster.atplist()
    ap1 = scenario.peer("AP1")
    atplist = ap1.get_axml_document("ATPList")
    pristine = canonical(atplist.document)
    show("ATPList.xml as deployed on AP1", atplist.to_pretty())

    # ------------------------------------------------------- Query A
    txn = ap1.begin_transaction()
    outcome = ap1.submit(
        txn.txn_id, f'<action type="query"><location>{QUERY_A}</location></action>'
    )
    print("Query A:", QUERY_A)
    print("  lazily materialized:", outcome.materialization.methods())
    print("  results:", outcome.query_result.texts())
    print("  change records logged:", len(outcome.change_records()))
    show("document after Query A (a <grandslamswon year=2005> appeared)",
         atplist.to_pretty())

    # The query mutated the document, so aborting must undo it — the
    # compensating delete is constructed from the materialization log.
    ap1.abort(txn.txn_id)
    assert canonical(atplist.document) == pristine
    print("aborted: compensation removed the merged 2005 result\n")

    # ------------------------------------------------------- Query B
    txn = ap1.begin_transaction()
    outcome = ap1.submit(
        txn.txn_id, f'<action type="query"><location>{QUERY_B}</location></action>'
    )
    print("Query B:", QUERY_B)
    print("  lazily materialized:", outcome.materialization.methods())
    print("  results:", outcome.query_result.texts())
    show("document after Query B (points replaced 475 -> 890)", atplist.to_pretty())

    ap1.abort(txn.txn_id)
    assert canonical(atplist.document) == pristine
    print("aborted: compensation restored points to 475\n")

    # ----------------------------------------- the paper's delete/replace
    txn = ap1.begin_transaction()
    ap1.submit(
        txn.txn_id,
        '<action type="delete"><location>Select p/citizenship from p in '
        "ATPList//player where p/name/lastname = Federer;</location></action>",
    )
    ap1.submit(
        txn.txn_id,
        '<action type="replace"><data><citizenship>USA</citizenship></data>'
        "<location>Select p/citizenship from p in ATPList//player "
        "where p/name/lastname = Nadal;</location></action>",
    )
    print("applied the paper's delete (Federer) and replace (Nadal)")
    ap1.abort(txn.txn_id)
    assert canonical(atplist.document) == pristine
    print("aborted: Swiss re-inserted in place, Spanish reinstated")
    print("\nfinal document equals the deployed one:",
          canonical(atplist.document) == pristine)


if __name__ == "__main__":
    main()
