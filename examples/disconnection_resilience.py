"""Peer disconnection and the chaining protocol (§3.3), cases (a)-(d).

Runs the Fig. 2 deployment ``[AP1* -> AP2 -> [AP3 -> AP6] || [AP4 -> AP5]]``
and injects each of the paper's four disconnection cases, side by side
with the naive (no-chaining) baseline where the contrast matters.

Run:  python examples/disconnection_resilience.py
"""

from repro.api import Cluster
from repro.txn.disconnection import (
    run_case_c_child_disconnection,
    run_case_d_sibling_disconnection,
)
from repro.txn.recovery import DISCONNECT_FAULT, FaultPolicy


def fig2_with_replacement(chaining: bool):
    scenario = Cluster.fig2(extra_peers=("APX",), chaining=chaining)
    scenario.replication.replicate_service("S3", "APX")
    scenario.replication.replicate_document("D3", "APX")
    scenario.peer("AP2").set_fault_policy(
        "S3",
        [FaultPolicy(fault_names={DISCONNECT_FAULT}, retry_times=1,
                     alternative_peer="APX")],
    )
    return scenario


def main() -> None:
    print("topology:", "[AP1* -> AP2 -> [AP3 -> AP6] || [AP4 -> AP5]]\n")

    # ---------------------------------------------------------- case (a)
    print("case (a): leaf AP6 disconnected, detected by parent AP3's invoke")
    s = Cluster.fig2()
    s.network.disconnect("AP6")
    txn, err = s.run_topology()
    print(f"  origin saw: {type(err).__name__}")
    latency = s.metrics.detection_latency("AP6")
    detected = f"{latency:.3f}s" if latency is not None else "never detected"
    print(f"  detection latency: {detected} (the failed invocation itself)\n")

    # ---------------------------------------------------------- case (b)
    print("case (b): AP3 dies while AP6 processes S6 — child detects parent death")
    for chaining in (True, False):
        s = fig2_with_replacement(chaining)
        s.injector.disconnect_peer_during("AP3", "AP6", "S6", "after_local_work")
        txn, err = s.run_topology()
        label = "chaining" if chaining else "naive   "
        print(f"  [{label}] recovered={err is None} "
              f"redirected={s.metrics.get('results_redirected')} "
              f"reused={s.metrics.get('invocations_reused')} "
              f"discarded={s.metrics.get('invocations_discarded')}")
    print("  with the chain, AP6 pushed S6's results past its dead parent to AP2,")
    print("  and AP2's retry on replica APX reused them instead of re-invoking.\n")

    # ---------------------------------------------------------- case (c)
    print("case (c): AP3 dies quietly; parent AP2 detects via ping")
    for chaining in (True, False):
        s = Cluster.fig2(chaining=chaining)
        txn, _ = s.run_topology()
        s.peer("AP6").add_pending_work(txn.txn_id, units=20, unit_duration=0.05)
        if not chaining:
            s.peer("AP6").known_doomed.add(txn.txn_id)  # ground truth
        s.network.disconnect("AP3")
        report = run_case_c_child_disconnection(s.peer("AP2"), txn.txn_id)
        s.network.events.run_until(s.network.clock.now + 5.0)
        label = "chaining" if chaining else "naive   "
        print(f"  [{label}] descendants informed={report.descendants_informed} "
              f"work units wasted={s.metrics.get('work_units_wasted')}")
    print("  the chain lets AP2 warn AP6 (AP3's orphan), saving its pending effort.\n")

    # ---------------------------------------------------------- case (d)
    print("case (d): sibling AP4 notices AP3's data stream went silent")
    s = Cluster.fig2()
    txn, _ = s.run_topology()
    s.network.disconnect("AP3")
    report = run_case_d_sibling_disconnection(s.peer("AP4"), txn.txn_id, "AP3")
    print(f"  AP4 notified AP3's parent and children: "
          f"{report.descendants_informed} peers now know\n")

    # ------------------------------------------------ spheres of atomicity
    print("spheres of atomicity: can this transaction guarantee atomicity?")
    from repro.txn.spheres import analyze_sphere

    participants = ["AP1", "AP2", "AP3", "AP4", "AP5", "AP6"]
    print("  all ordinary peers:",
          analyze_sphere(participants, super_peers=["AP1"]).guaranteed)
    print("  all super peers:   ",
          analyze_sphere(participants, super_peers=participants).guaranteed)
    print("  replicas + peer-independent compensation:",
          analyze_sphere(
              participants,
              super_peers=["AP1"],
              replicas_on_super_peers={p: True for p in participants},
              peer_independent=True,
          ).guaranteed)


if __name__ == "__main__":
    main()
