"""Pre-defined (static) compensation handlers — the paper's strawman.

"Usually, the compensation handlers for a service call are pre-defined
statically on the lines of exception/fault handlers.  However, static
definition of compensation handlers is not feasible for AXML systems"
(§3.1).  This baseline implements exactly that state of the art so
experiment E2 can measure where it breaks:

* a static handler is an inverse ``<action>`` written **at definition
  time**, with whatever data values the author believed the document
  held;
* query operations have **no** handler — "traditionally, query
  operations do not need to be compensated as they do not modify data";
* handlers re-evaluate the original location paths instead of using
  logged ids.

The two failure classes the paper predicts both emerge: stale data
(the document changed since the handler was written) and uncovered
operations (lazy query materialization mutates the document with no
handler to undo it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import UpdateError
from repro.query.ast import ActionType, UpdateAction
from repro.query.parser import parse_action
from repro.query.update import apply_action
from repro.xmlstore.nodes import Document
from repro.xmlstore.serializer import canonical


@dataclass
class StaticHandler:
    """A pre-defined compensating action for one forward operation."""

    operation_key: str
    compensation_xml: str

    def action(self) -> UpdateAction:
        return parse_action(self.compensation_xml)


@dataclass
class CoverageReport:
    """How static compensation fared over a workload (experiment E2)."""

    operations: int = 0
    covered: int = 0          # a handler existed
    uncovered: int = 0        # no handler (queries, unforeseen ops)
    restored_exactly: int = 0  # state matched the pre-operation state
    wrong_state: int = 0      # handler ran but left a different state
    handler_errors: int = 0   # handler failed outright

    @property
    def coverage_rate(self) -> float:
        return self.covered / self.operations if self.operations else 1.0

    @property
    def correctness_rate(self) -> float:
        return self.restored_exactly / self.operations if self.operations else 1.0


class StaticCompensator:
    """Registry of pre-defined handlers, applied without any run-time log."""

    def __init__(self) -> None:
        self._handlers: Dict[str, StaticHandler] = {}

    def define(self, operation_key: str, compensation_xml: str) -> None:
        """Register the handler for an operation, written ahead of time."""
        self._handlers[operation_key] = StaticHandler(operation_key, compensation_xml)

    def handler_for(self, operation_key: str) -> Optional[StaticHandler]:
        return self._handlers.get(operation_key)

    @staticmethod
    def derive_handler(action: UpdateAction, document: Document) -> Optional[str]:
        """What a diligent author would write at definition time.

        Reads the *current* document to fill in old values — which is
        precisely why the handler goes stale once the document changes.
        Returns None for queries (no handler, traditionally) and for
        deletes whose data cannot be known without the run-time log when
        the target does not yet exist.
        """
        from repro.query.evaluate import evaluate_select
        from repro.xmlstore.serializer import serialize
        from repro.xmlstore.nodes import Element

        if action.action_type is ActionType.QUERY:
            return None
        if action.action_type is ActionType.INSERT:
            # Inverse: delete whatever the location+data describe.  The
            # static author cannot know the inserted node's id, so the
            # best possible handler deletes by re-evaluated path; we
            # approximate with a delete of the same location's children
            # matching the data's element name.
            first = action.data[0] if action.data else ""
            name = first[1:].split(">", 1)[0].split(" ", 1)[0].rstrip("/") if first else "*"
            location = str(action.location).rstrip(";")
            # Narrow to the inserted element name below the target.
            var_clause = location.split(" from ", 1)[1]
            var = var_clause.split()[0]
            return (
                f'<action type="delete"><location>Select {var}/{name} from '
                f"{var_clause};</location></action>"
            )
        # delete / replace: capture the current values now.
        result = evaluate_select(action.location, document)
        nodes = [n for n in result.all_nodes() if isinstance(n, Element)]
        if not nodes:
            return None
        snapshot = serialize(nodes[0])
        location = str(action.location)
        if action.action_type is ActionType.DELETE:
            parent_location = _parent_location(location)
            return (
                f'<action type="insert"><data>{snapshot}</data>'
                f"<location>{parent_location}</location></action>"
            )
        return (
            f'<action type="replace"><data>{snapshot}</data>'
            f"<location>{location}</location></action>"
        )

    def compensate(
        self,
        operation_key: str,
        document: Document,
        pre_state: Document,
        report: CoverageReport,
    ) -> None:
        """Apply the static handler and grade the result against *pre_state*."""
        report.operations += 1
        handler = self.handler_for(operation_key)
        if handler is None:
            report.uncovered += 1
            if canonical(document) == canonical(pre_state):
                report.restored_exactly += 1
            else:
                report.wrong_state += 1
            return
        report.covered += 1
        try:
            apply_action(document, handler.action(), tolerate_missing_targets=False)
        except UpdateError:
            report.handler_errors += 1
            report.wrong_state += 1
            return
        if canonical(document) == canonical(pre_state):
            report.restored_exactly += 1
        else:
            report.wrong_state += 1


def _parent_location(location: str) -> str:
    """Append ``/..`` to every select path (the paper's §3.1 recipe)."""
    head, _, tail = location.partition(" from ")
    select_paths = head[len("Select ") :]
    patched = ", ".join(p.strip() + "/.." for p in select_paths.split(","))
    return f"Select {patched} from {tail}"
