"""Traditional undo via whole-document snapshots.

The classical alternative to compensation: before the transaction
touches a document, copy it; abort restores the copy.  It is always
exact — but experiment E3 measures the price the paper's approach
avoids: snapshot cost scales with *document size*, while the operation
log scales with *touched data*.  It is also unusable across autonomous
peers (a peer cannot snapshot another peer's repository), which is the
deeper reason the paper builds on compensation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.axml.document import AXMLDocument
from repro.xmlstore.nodes import Document
from repro.xmlstore.serializer import serialize


@dataclass
class SnapshotStats:
    """Cost accounting for one transaction's snapshots."""

    snapshots_taken: int = 0
    nodes_copied: int = 0
    approx_bytes: int = 0


class SnapshotRollback:
    """Per-transaction document snapshots with restore-on-abort."""

    def __init__(self) -> None:
        #: (txn_id, document name) → pre-transaction copy.
        self._snapshots: Dict[tuple, Document] = {}
        self.stats = SnapshotStats()

    def guard(self, txn_id: str, axml_document: AXMLDocument) -> None:
        """Snapshot the document before the transaction's first touch.

        Idempotent per (transaction, document): only the first call
        copies.
        """
        key = (txn_id, axml_document.name)
        if key in self._snapshots:
            return
        document = axml_document.document
        copy = document.clone(preserve_ids=True)
        self._snapshots[key] = copy
        self.stats.snapshots_taken += 1
        self.stats.nodes_copied += document.size()
        self.stats.approx_bytes += len(serialize(document, include_ids=True))

    def has_snapshot(self, txn_id: str, document_name: str) -> bool:
        return (txn_id, document_name) in self._snapshots

    def rollback(self, txn_id: str, axml_document: AXMLDocument) -> bool:
        """Restore the pre-transaction state; True if a snapshot existed.

        The restore swaps the document's root for the snapshot's (cloned
        back with preserved ids) so existing references to the Document
        object stay valid.
        """
        key = (txn_id, axml_document.name)
        snapshot = self._snapshots.pop(key, None)
        if snapshot is None:
            return False
        axml_document.document.restore_from(snapshot, preserve_ids=True)
        return True

    def release(self, txn_id: str) -> int:
        """Drop all snapshots of a committed transaction; returns count."""
        keys = [k for k in self._snapshots if k[0] == txn_id]
        for key in keys:
            del self._snapshots[key]
        return len(keys)

    def approximate_bytes(self) -> int:
        """Live snapshot footprint (compare with OperationLog bytes)."""
        return sum(
            len(serialize(doc, include_ids=True)) for doc in self._snapshots.values()
        )
