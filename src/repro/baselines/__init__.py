"""Baselines the paper argues against, implemented for comparison.

* :mod:`repro.baselines.static_compensation` — pre-defined compensation
  handlers (the state of the art §3.1 says is infeasible for AXML);
* :mod:`repro.baselines.snapshot_rollback` — traditional whole-document
  undo via snapshots;
* :mod:`repro.baselines.naive_disconnect` — disconnection handling
  without chaining (detection only by the direct parent, no reuse);
* :mod:`repro.baselines.two_phase_commit` — blocking atomic commit.
"""

from repro.baselines.static_compensation import (
    StaticCompensator,
    StaticHandler,
    CoverageReport,
)
from repro.baselines.snapshot_rollback import SnapshotRollback
from repro.baselines.naive_disconnect import build_naive_variant
from repro.baselines.two_phase_commit import TwoPhaseCoordinator, TwoPhaseOutcome
from repro.baselines.lock_manager import LockConflict, LockManager, LockMode

__all__ = [
    "StaticCompensator",
    "StaticHandler",
    "CoverageReport",
    "SnapshotRollback",
    "build_naive_variant",
    "TwoPhaseCoordinator",
    "TwoPhaseOutcome",
    "LockConflict",
    "LockManager",
    "LockMode",
]
