"""Hierarchical lock-based concurrency control — the [5]/[6] baseline.

§2: "[5] and [6] consider lock-based concurrency control protocols
customized for XML repositories. … However, due to the 'active' nature
of AXML documents, lock-based protocols are not well suited for AXML
systems."

This module implements a classical multi-granularity lock manager over
the node tree (IS/IX/S/X with intention locks along the root path) so
the ablation bench can *measure* that argument: on passive documents a
query takes shared locks and readers scale; on active documents a query
must take exclusive locks wherever lazy materialization may rewrite
result regions — so read-read concurrency collapses exactly as the
paper predicts.

The manager is no-wait: a conflicting request fails immediately
(:class:`LockConflict`), and the caller aborts/retries.  That keeps the
single-threaded simulation honest — there is nobody to block.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import TransactionError
from repro.xmlstore.nodes import Element, NodeId


class LockMode(enum.Enum):
    IS = "IS"
    IX = "IX"
    S = "S"
    X = "X"


#: Classical multi-granularity compatibility matrix.
_COMPATIBLE: Dict[Tuple[LockMode, LockMode], bool] = {
    (LockMode.IS, LockMode.IS): True,
    (LockMode.IS, LockMode.IX): True,
    (LockMode.IS, LockMode.S): True,
    (LockMode.IS, LockMode.X): False,
    (LockMode.IX, LockMode.IS): True,
    (LockMode.IX, LockMode.IX): True,
    (LockMode.IX, LockMode.S): False,
    (LockMode.IX, LockMode.X): False,
    (LockMode.S, LockMode.IS): True,
    (LockMode.S, LockMode.IX): False,
    (LockMode.S, LockMode.S): True,
    (LockMode.S, LockMode.X): False,
    (LockMode.X, LockMode.IS): False,
    (LockMode.X, LockMode.IX): False,
    (LockMode.X, LockMode.S): False,
    (LockMode.X, LockMode.X): False,
}

#: Lock-strength order for upgrades.
_STRENGTH = {LockMode.IS: 0, LockMode.IX: 1, LockMode.S: 2, LockMode.X: 3}


class LockConflict(TransactionError):
    """A lock request conflicted with another transaction's holding."""

    def __init__(self, txn_id: str, node_id: NodeId, mode: LockMode, holder: str):
        super().__init__(
            f"{txn_id} cannot take {mode.value} on {node_id!r}: "
            f"held incompatibly by {holder}"
        )
        self.holder = holder


def compatible(a: LockMode, b: LockMode) -> bool:
    """True when a requested mode coexists with a held mode."""
    return _COMPATIBLE[(a, b)]


class LockManager:
    """No-wait multi-granularity lock manager for one document."""

    def __init__(self) -> None:
        #: node id → {txn id → strongest mode held}
        self._table: Dict[NodeId, Dict[str, LockMode]] = {}
        self.acquisitions = 0
        self.conflicts = 0

    # -- primitives ---------------------------------------------------------

    def acquire(self, txn_id: str, node_id: NodeId, mode: LockMode) -> None:
        """Grant or raise :class:`LockConflict`; upgrades are in place."""
        holders = self._table.setdefault(node_id, {})
        current = holders.get(txn_id)
        if current is not None and _STRENGTH[current] >= _STRENGTH[mode]:
            return  # already strong enough
        for other_txn, other_mode in holders.items():
            if other_txn == txn_id:
                continue
            if not compatible(mode, other_mode):
                self.conflicts += 1
                raise LockConflict(txn_id, node_id, mode, other_txn)
        holders[txn_id] = mode
        self.acquisitions += 1

    def release_all(self, txn_id: str) -> int:
        """Strict two-phase: everything releases at commit/abort."""
        released = 0
        for holders in self._table.values():
            if holders.pop(txn_id, None) is not None:
                released += 1
        return released

    def holders_of(self, node_id: NodeId) -> Dict[str, LockMode]:
        return dict(self._table.get(node_id, {}))

    def held_by(self, txn_id: str) -> int:
        return sum(1 for holders in self._table.values() if txn_id in holders)

    # -- tree-aware helpers ----------------------------------------------------

    def lock_subtree(
        self, txn_id: str, target: Element, mode: LockMode
    ) -> None:
        """Intention locks up the root path, *mode* on the subtree root.

        The standard protocol of [5]/[6]: S needs IS on every ancestor,
        X needs IX.
        """
        intention = LockMode.IS if mode in (LockMode.IS, LockMode.S) else LockMode.IX
        ancestors = list(target.ancestors())
        for ancestor in reversed(ancestors):
            self.acquire(txn_id, ancestor.node_id, intention)
        self.acquire(txn_id, target.node_id, mode)

    def lock_for_read(
        self, txn_id: str, targets: Iterable[Element], active: bool
    ) -> None:
        """Lock query targets.

        ``active=False``: plain S locks — readers coexist.
        ``active=True``: the AXML case — evaluating the query may
        materialize embedded calls *inside the read region*, rewriting
        result nodes; a correct lock protocol must take X there, which is
        the paper's "not well suited" argument made concrete.
        """
        mode = LockMode.X if active else LockMode.S
        for target in targets:
            self.lock_subtree(txn_id, target, mode)

    def lock_for_update(self, txn_id: str, targets: Iterable[Element]) -> None:
        for target in targets:
            self.lock_subtree(txn_id, target, LockMode.X)
