"""Disconnection handling without chaining — the §3.3 baseline.

Without the active-peer list, a peer only knows its direct parent and
the children it invoked itself: "Traditional recovery would lead to AP6
(aborting) discarding its work and actual recovery occurring only when
the disconnection is detected by peer AP2."  Concretely:

* a child whose parent died has nowhere to send results — work
  discarded;
* a parent detecting a child's death cannot inform the orphaned
  descendants — they keep burning effort on a doomed transaction;
* no reuse is ever possible.

The behaviour is already implemented in :class:`repro.p2p.peer.AXMLPeer`
under ``chaining=False``; this module provides the one-flag scenario
variant builder the benchmarks use for side-by-side runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.sim.scenarios import Scenario, build_topology


def build_naive_variant(
    topology: Dict[str, List[Tuple[str, str]]], **kwargs
) -> Scenario:
    """The same deployment as :func:`repro.sim.scenarios.build_topology`
    with chaining disabled on every peer."""
    kwargs["chaining"] = False
    return build_topology(topology, **kwargs)
