"""Blocking two-phase commit over AXML peers.

Strict atomicity's classical answer.  Under P2P churn it exhibits the
failure mode that motivates the paper's *relaxed* atomicity: a
participant disconnecting between PREPARE and the decision leaves the
transaction blocked (prepared participants must hold their locks/state
until the coordinator's decision can reach everyone).  The E-series
benchmarks contrast its blocked-transaction rate with the compensation
framework's always-terminating (if occasionally ``abort_incomplete``)
behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.p2p.network import SimNetwork


class TwoPhaseOutcome(enum.Enum):
    COMMITTED = "committed"
    ABORTED = "aborted"
    #: A participant prepared but became unreachable before the decision
    #: was delivered: it holds its state indefinitely.
    BLOCKED = "blocked"


@dataclass
class TwoPhaseRecord:
    """The audit trail of one 2PC round."""

    txn_id: str
    outcome: TwoPhaseOutcome
    prepared: List[str] = field(default_factory=list)
    refused: List[str] = field(default_factory=list)
    unreachable_at_prepare: List[str] = field(default_factory=list)
    undelivered_decisions: List[str] = field(default_factory=list)


class TwoPhaseCoordinator:
    """A minimal blocking-2PC coordinator on the simulated network.

    Participants are modelled as vote sources: alive peers vote yes
    (votes can be forced for fault experiments); the coordinator then
    pushes the decision.  Any prepared participant the decision cannot
    reach blocks the transaction.
    """

    def __init__(self, network: SimNetwork, coordinator_peer: str):
        self.network = network
        self.coordinator_peer = coordinator_peer
        #: Scripted no-votes: peers that will refuse to prepare.
        self.no_voters: set = set()
        self.records: List[TwoPhaseRecord] = []

    def force_no_vote(self, peer_id: str) -> None:
        self.no_voters.add(peer_id)

    def run(self, txn_id: str, participants: Sequence[str]) -> TwoPhaseRecord:
        """Execute one PREPARE/decision round; returns the audit record."""
        record = TwoPhaseRecord(txn_id, TwoPhaseOutcome.ABORTED)
        # Phase 1: PREPARE.
        all_yes = True
        for peer_id in participants:
            self.network.metrics.record_message("prepare")
            self.network.clock.advance(2 * self.network.hop_latency)
            if not self.network.is_alive(peer_id):
                record.unreachable_at_prepare.append(peer_id)
                all_yes = False
                continue
            if peer_id in self.no_voters:
                record.refused.append(peer_id)
                all_yes = False
                continue
            record.prepared.append(peer_id)
        decision = (
            TwoPhaseOutcome.COMMITTED
            if all_yes and record.prepared
            else TwoPhaseOutcome.ABORTED
        )
        # Phase 2: deliver the decision to every prepared participant.
        for peer_id in record.prepared:
            self.network.metrics.record_message("decision")
            self.network.clock.advance(self.network.hop_latency)
            if not self.network.is_alive(peer_id):
                # Prepared but unreachable: it cannot release its state.
                record.undelivered_decisions.append(peer_id)
        if record.undelivered_decisions:
            record.outcome = TwoPhaseOutcome.BLOCKED
            self.network.metrics.incr("twophase_blocked")
        else:
            record.outcome = decision
        self.records.append(record)
        self.network.metrics.record_txn_outcome(
            txn_id, f"2pc_{record.outcome.value}"
        )
        return record

    def blocked_rate(self) -> float:
        if not self.records:
            return 0.0
        blocked = sum(
            1 for r in self.records if r.outcome is TwoPhaseOutcome.BLOCKED
        )
        return blocked / len(self.records)
