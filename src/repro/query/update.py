"""Executors for update actions, producing compensation-grade change records.

The paper's key observation (§3.1) is that "the data (nodes) required
for compensation cannot be predicted in advance and would need to be
read from the log at run-time": a delete must log the result of its
``<location>`` query (the deleted subtrees and where they sat), an
insert must log the returned node ids, a replace logs both halves.

:func:`apply_action` therefore returns an :class:`UpdateResult` carrying
exactly those records; :mod:`repro.txn.wal` persists them and
:mod:`repro.txn.compensation` turns them into compensating operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import UpdateError
from repro.query.ast import ActionType, SelectQuery, UpdateAction
from repro.query.evaluate import QueryResult, evaluate_select
from repro.xmlstore.nodes import Document, Element, Node, NodeId
from repro.xmlstore.parser import parse_fragment
from repro.xmlstore.path import NULL_METER, TraversalMeter
from repro.xmlstore.serializer import rebind_element_ids, serialize


@dataclass
class DeleteRecord:
    """Log record for one deleted subtree.

    ``snapshot_xml`` is the serialized subtree (the logged
    ``<location>``-query result); the parent id and sibling anchors allow
    order-preserving re-insertion.  ``index`` is the positional fallback
    for unordered mode.
    """

    node_id: NodeId
    parent_id: NodeId
    index: int
    before_id: Optional[NodeId]
    after_id: Optional[NodeId]
    snapshot_xml: str

    @property
    def kind(self) -> str:
        return "delete"


@dataclass
class InsertRecord:
    """Log record for one inserted subtree: the returned unique id (§3.1)."""

    node_id: NodeId
    parent_id: NodeId
    index: int
    inserted_xml: str

    @property
    def kind(self) -> str:
        return "insert"


@dataclass
class ReplaceRecord:
    """Log record for one replace: its delete and insert halves (§3.1)."""

    deleted: DeleteRecord
    inserted: List[InsertRecord]

    @property
    def kind(self) -> str:
        return "replace"

    @property
    def node_id(self) -> NodeId:
        return self.deleted.node_id


ChangeRecord = Union[DeleteRecord, InsertRecord, ReplaceRecord]


@dataclass
class UpdateResult:
    """Outcome of applying an action: targets found plus change records.

    For inserts, ``inserted_ids`` is the paper's "operation returns the
    (unique) ID of the inserted node".  For queries, ``query_result``
    holds the bindings and ``records`` is empty (materialization changes
    are recorded by the AXML engine, not here).
    """

    action: UpdateAction
    records: List[ChangeRecord] = field(default_factory=list)
    inserted_ids: List[NodeId] = field(default_factory=list)
    query_result: Optional[QueryResult] = None
    nodes_affected: int = 0

    @property
    def target_count(self) -> int:
        if self.query_result is not None:
            return len(self.query_result)
        deletes = sum(1 for r in self.records if r.kind in ("delete", "replace"))
        return max(deletes, len(self.inserted_ids))


def apply_action(
    document: Document,
    action: UpdateAction,
    meter: TraversalMeter = NULL_METER,
    tolerate_missing_targets: bool = False,
) -> UpdateResult:
    """Apply *action* to *document*, returning the change records.

    Raises :class:`~repro.errors.UpdateError` when an insert/replace
    locates no target (silently updating nothing would hide workload
    bugs; deletes of nothing are tolerated as idempotent).  Compensation
    passes ``tolerate_missing_targets=True``: a compensating operation
    whose target vanished is a no-op, since compensation only needs to
    reach an *acceptable* state (§3.1, [15]).
    """
    if action.action_type is ActionType.QUERY:
        result = evaluate_select(action.location, document, meter)
        return UpdateResult(
            action, query_result=result, nodes_affected=meter.nodes_traversed
        )
    try:
        if action.action_type is ActionType.DELETE:
            return _apply_delete(document, action, meter)
        if action.action_type is ActionType.INSERT:
            return _apply_insert(document, action, meter)
        if action.action_type is ActionType.REPLACE:
            return _apply_replace(document, action, meter)
    except UpdateError:
        if tolerate_missing_targets:
            return UpdateResult(action, nodes_affected=meter.nodes_traversed)
        raise
    raise UpdateError(f"unsupported action type {action.action_type!r}")


def _locate(
    document: Document, query: SelectQuery, meter: TraversalMeter
) -> List[Element]:
    result = evaluate_select(query, document, meter)
    targets: List[Element] = []
    seen = set()
    for node in result.all_nodes():
        if isinstance(node, Element) and node.node_id not in seen:
            seen.add(node.node_id)
            targets.append(node)
    return targets


def _apply_delete(
    document: Document, action: UpdateAction, meter: TraversalMeter
) -> UpdateResult:
    targets = _locate(document, action.location, meter)
    records: List[ChangeRecord] = []
    affected = 0
    for target in targets:
        if target is document.root:
            raise UpdateError("cannot delete the document root")
        affected += target.subtree_size()
        records.append(_detach_to_record(target))
    return UpdateResult(action, records=records, nodes_affected=affected + meter.nodes_traversed)


def detach_to_record(target: Element) -> DeleteRecord:
    """Detach *target* and return its compensation-grade delete record.

    Shared with the AXML materialization engine, which removes previous
    result nodes in ``replace`` mode and must log them the same way an
    explicit delete does (query compensation, §3.1).
    """
    return _detach_to_record(target)


def _detach_to_record(target: Element) -> DeleteRecord:
    # Snapshot with persisted ids: the compensating insert re-adopts them
    # (rebind), restoring the deleted nodes' identities exactly.
    snapshot = serialize(target, include_ids=True)
    detach = target.detach()
    return DeleteRecord(
        node_id=target.node_id,
        parent_id=detach.parent_id,
        index=detach.index,
        before_id=detach.before_id,
        after_id=detach.after_id,
        snapshot_xml=snapshot,
    )


def _apply_insert(
    document: Document, action: UpdateAction, meter: TraversalMeter
) -> UpdateResult:
    targets = _locate(document, action.location, meter)
    if not targets:
        raise UpdateError(
            f"insert located no target: {action.location}"
        )
    records: List[ChangeRecord] = []
    inserted_ids: List[NodeId] = []
    affected = 0
    for target in targets:
        for fragment_xml in action.data:
            node = _insert_fragment(
                document, target, fragment_xml, action.anchor, action.rebind
            )
            affected += node.subtree_size()
            records.append(
                InsertRecord(
                    node_id=node.node_id,
                    parent_id=target.node_id,
                    index=node.index_in_parent(),
                    inserted_xml=fragment_xml,
                )
            )
            inserted_ids.append(node.node_id)
    return UpdateResult(
        action,
        records=records,
        inserted_ids=inserted_ids,
        nodes_affected=affected + meter.nodes_traversed,
    )


def _insert_fragment(
    document: Document,
    parent: Element,
    fragment_xml: str,
    anchor: Optional[Tuple[str, str]],
    rebind: bool = False,
) -> Element:
    fragments = parse_fragment(fragment_xml, document)
    if len(fragments) != 1:
        raise UpdateError(
            f"<data> fragment must contain exactly one element, got {len(fragments)}"
        )
    node = fragments[0]
    if rebind:
        rebind_element_ids(node, document)
    if anchor is None:
        parent.append(node)
        return node
    mode, anchor_id_text = anchor
    anchor_id = NodeId.parse(anchor_id_text)
    if not document.has_node(anchor_id):
        # Anchor vanished (e.g. deleted by a concurrent operation): degrade
        # to append, the paper's unordered behaviour.
        parent.append(node)
        return node
    anchor_node = document.get_node(anchor_id)
    if anchor_node.parent is not parent:
        parent.append(node)
        return node
    if mode == "before":
        parent.insert_before(anchor_node, node)
    else:
        parent.insert_after(anchor_node, node)
    return node


def _apply_replace(
    document: Document, action: UpdateAction, meter: TraversalMeter
) -> UpdateResult:
    """Replace = delete the target, insert the data at the same position (§3.1)."""
    targets = _locate(document, action.location, meter)
    if not targets:
        raise UpdateError(f"replace located no target: {action.location}")
    records: List[ChangeRecord] = []
    inserted_ids: List[NodeId] = []
    affected = 0
    for target in targets:
        if target is document.root:
            raise UpdateError("cannot replace the document root")
        parent = target.parent
        position = target.index_in_parent()
        affected += target.subtree_size()
        delete_record = _detach_to_record(target)
        insert_records: List[InsertRecord] = []
        for offset, fragment_xml in enumerate(action.data):
            fragments = parse_fragment(fragment_xml, document)
            if len(fragments) != 1:
                raise UpdateError(
                    "<data> fragment must contain exactly one element, "
                    f"got {len(fragments)}"
                )
            node = fragments[0]
            if action.rebind:
                rebind_element_ids(node, document)
            parent.insert_at(position + offset, node)
            affected += node.subtree_size()
            insert_records.append(
                InsertRecord(
                    node_id=node.node_id,
                    parent_id=parent.node_id,
                    index=position + offset,
                    inserted_xml=fragment_xml,
                )
            )
            inserted_ids.append(node.node_id)
        records.append(ReplaceRecord(delete_record, insert_records))
    return UpdateResult(
        action,
        records=records,
        inserted_ids=inserted_ids,
        nodes_affected=affected + meter.nodes_traversed,
    )
