"""The paper's query/update language over AXML documents.

The paper (§3) fixes the operation set on AXML documents: *queries*,
*inserts*, *deletes* and *replaces* — update operations carried in
``<action type="…">`` documents whose ``<location>`` holds a query in the
form::

    Select p/citizenship from p in ATPList//player
    where p/name/lastname = Federer;

This package provides the lexer/parser for that language
(:mod:`repro.query.lexer`, :mod:`repro.query.parser`), the AST
(:mod:`repro.query.ast`), evaluation with materialization hooks
(:mod:`repro.query.evaluate`) and the update executors that produce the
change records dynamic compensation consumes
(:mod:`repro.query.update`).
"""

from repro.query.ast import (
    ActionType,
    Comparison,
    BooleanCondition,
    SelectQuery,
    UpdateAction,
    VarPath,
)
from repro.query.parser import parse_select, parse_action
from repro.query.evaluate import QueryResult, evaluate_select
from repro.query.update import (
    apply_action,
    ChangeRecord,
    DeleteRecord,
    InsertRecord,
    ReplaceRecord,
    UpdateResult,
)

__all__ = [
    "ActionType",
    "Comparison",
    "BooleanCondition",
    "SelectQuery",
    "UpdateAction",
    "VarPath",
    "parse_select",
    "parse_action",
    "QueryResult",
    "evaluate_select",
    "apply_action",
    "ChangeRecord",
    "DeleteRecord",
    "InsertRecord",
    "ReplaceRecord",
    "UpdateResult",
]
