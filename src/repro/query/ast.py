"""AST for Select queries and ``<action>`` update documents."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.xmlstore.path import PathExpr


class ActionType(enum.Enum):
    """The paper's four operation kinds on AXML documents (§3)."""

    QUERY = "query"
    INSERT = "insert"
    DELETE = "delete"
    REPLACE = "replace"

    @classmethod
    def parse(cls, text: str) -> "ActionType":
        for member in cls:
            if member.value == text.lower():
                return member
        raise ValueError(f"unknown action type {text!r}")

    @property
    def is_update(self) -> bool:
        """True for the mutating action types."""
        return self is not ActionType.QUERY


@dataclass(frozen=True)
class VarPath:
    """A variable-rooted path, e.g. ``p/name/lastname``.

    ``var`` is the binding variable from the ``from`` clause; ``path`` is
    the relative path below it (may be empty — plain ``p``).
    """

    var: str
    path: PathExpr

    def __str__(self) -> str:
        suffix = str(self.path)
        return f"{self.var}/{suffix}" if self.path.steps else self.var


@dataclass(frozen=True)
class Comparison:
    """``left op literal`` — e.g. ``p/name/lastname = Federer``."""

    left: VarPath
    op: str
    literal: str

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.literal}"

    def matches(self, value: str) -> bool:
        """Apply the comparison to a candidate text value.

        Comparisons try numeric interpretation first (so ``points > 400``
        behaves as expected) and fall back to string comparison.
        """
        left: Union[float, str]
        right: Union[float, str]
        try:
            left, right = float(value), float(self.literal)
        except ValueError:
            left, right = value, self.literal
        if self.op == "=":
            return left == right
        if self.op == "!=":
            return left != right
        if self.op == "<":
            return left < right
        if self.op == ">":
            return left > right
        if self.op == "<=":
            return left <= right
        if self.op == ">=":
            return left >= right
        raise ValueError(f"unknown operator {self.op!r}")


@dataclass(frozen=True)
class BooleanCondition:
    """``and``/``or`` combination of comparisons, left-associative."""

    op: str  # "and" | "or"
    parts: Sequence[Union["BooleanCondition", Comparison]]

    def __str__(self) -> str:
        return f" {self.op} ".join(str(p) for p in self.parts)


Condition = Union[BooleanCondition, Comparison]


@dataclass(frozen=True)
class NodeRef:
    """An id-based query source: ``id(d1.n3@ATPList)``.

    Dynamic compensation targets nodes by their logged ids rather than by
    re-evaluating the original location path: after a delete, the paper's
    path-based compensating location (``p/citizenship/..``) navigates
    *through the deleted node* and finds nothing.  The paper already
    assumes id-addressability for insert compensation ("delete the node
    having the corresponding ID", §3.1); NodeRef extends that to a
    serializable location form so compensating operations can still be
    shipped between peers as ``<action>`` documents.
    """

    node_id_text: str
    document: str

    def __str__(self) -> str:
        return f"id({self.node_id_text}@{self.document})"


@dataclass(frozen=True)
class SelectQuery:
    """A parsed Select query.

    ``Select <select_paths> from <var> in <source> where <condition>;``

    ``source`` is an absolute path whose first step names the document
    root (``ATPList//player``); ``document_name`` is that first name,
    used by peers to route the query to the right repository document.
    """

    select_paths: Sequence[VarPath]
    var: str
    source: Union[PathExpr, NodeRef]
    where: Optional[Condition] = None

    @property
    def document_name(self) -> str:
        if isinstance(self.source, NodeRef):
            return self.source.document
        first = self.source.steps[0]
        return first.name.local if first.name is not None else "*"

    def required_names(self) -> List[str]:
        """Element names the query can touch — drives lazy materialization.

        Lazy evaluation (§3.1) materializes only the embedded service
        calls "whose results are required for evaluating the query"; the
        materializer matches a call's result region against these names.
        """
        names: List[str] = []
        for vp in self.select_paths:
            names.extend(vp.path.child_names())
        names.extend(_condition_names(self.where))
        return names

    def __str__(self) -> str:
        parts = ", ".join(str(vp) for vp in self.select_paths)
        text = f"Select {parts} from {self.var} in {self.source}"
        if self.where is not None:
            text += f" where {self.where}"
        return text + ";"


def _condition_names(condition: Optional[Condition]) -> List[str]:
    if condition is None:
        return []
    if isinstance(condition, Comparison):
        return condition.left.path.child_names()
    names: List[str] = []
    for part in condition.parts:
        names.extend(_condition_names(part))
    return names


@dataclass(frozen=True)
class UpdateAction:
    """An ``<action type="…">`` document (§3.1).

    ``data`` carries the serialized XML fragments of the ``<data>``
    element (for inserts/replaces); ``location`` is the target query.
    ``anchor`` optionally pins an insert before/after a specific node id
    ([16]'s ordered-insert semantics, used by order-preserving
    compensation); it is the pair ``("before"|"after", node_id_text)``.
    """

    action_type: ActionType
    location: SelectQuery
    data: Sequence[str] = field(default_factory=tuple)
    anchor: Optional[tuple] = None
    #: When True, ``repro:id`` attributes inside the data fragments are
    #: re-adopted as real node ids on insertion — compensating inserts
    #: restore the identities of the nodes they bring back.
    rebind: bool = False

    def to_xml(self) -> str:
        """Serialize back to the paper's ``<action>`` document form.

        The result parses back with
        :func:`repro.query.parser.parse_action` — operations travel
        between peers in this form (peer-independent compensation sends
        compensating *definitions* across the network, §3.2).
        """
        parts = [f'<action type="{self.action_type.value}"']
        if self.anchor is not None:
            parts.append(f' anchor="{self.anchor[0]}:{self.anchor[1]}"')
        if self.rebind:
            parts.append(' rebind="true"')
        parts.append(">")
        for fragment in self.data:
            parts.append(f"<data>{fragment}</data>")
        location_text = (
            str(self.location).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        )
        parts.append(f"<location>{location_text}</location>")
        parts.append("</action>")
        return "".join(parts)

    def __str__(self) -> str:
        return self.to_xml()
