"""Parser for Select queries and ``<action>`` documents."""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import QuerySyntaxError
from repro.query.ast import (
    ActionType,
    BooleanCondition,
    Comparison,
    Condition,
    NodeRef,
    SelectQuery,
    UpdateAction,
    VarPath,
)
from repro.query.lexer import Token, tokenize
from repro.xmlstore.nodes import Element
from repro.xmlstore.parser import parse_document
from repro.xmlstore.path import PathExpr, parse_path
from repro.xmlstore.serializer import serialize


class _TokenStream:
    """A peekable stream over the token list."""

    def __init__(self, tokens: List[Token], source: str):
        self._tokens = tokens
        self._pos = 0
        self._source = source

    def peek(self) -> Optional[Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise QuerySyntaxError(
                f"unexpected end of query: {self._source!r}", len(self._source)
            )
        self._pos += 1
        return token

    def expect_keyword(self, word: str) -> Token:
        token = self.next()
        if not token.is_keyword(word):
            raise QuerySyntaxError(
                f"expected {word!r}, found {token.value!r}", token.position
            )
        return token

    def at_end(self) -> bool:
        return self.peek() is None


def parse_select(text: str) -> SelectQuery:
    """Parse the paper's Select form into a :class:`SelectQuery`.

    Example accepted input (verbatim from §3.1)::

        Select p/citizenship from p in ATPList//player
        where p/name/lastname = Federer;
    """
    stream = _TokenStream(tokenize(text), text)
    stream.expect_keyword("select")
    select_paths = [_parse_varpath_token(stream.next())]
    while stream.peek() is not None and stream.peek().kind == "COMMA":
        stream.next()
        select_paths.append(_parse_varpath_token(stream.next()))
    stream.expect_keyword("from")
    var_token = stream.next()
    if var_token.kind != "PATH" or "/" in var_token.value:
        raise QuerySyntaxError(
            f"expected a variable name after 'from', found {var_token.value!r}",
            var_token.position,
        )
    var = var_token.value
    stream.expect_keyword("in")
    source_token = stream.next()
    if source_token.kind != "PATH":
        raise QuerySyntaxError(
            f"expected a source path after 'in', found {source_token.value!r}",
            source_token.position,
        )
    source: Union[PathExpr, NodeRef]
    if source_token.value.startswith("id(") and source_token.value.endswith(")"):
        inner = source_token.value[3:-1]
        node_id_text, at, doc_name = inner.partition("@")
        if not at or not node_id_text or not doc_name:
            raise QuerySyntaxError(
                f"malformed id source {source_token.value!r}; expected "
                "id(<nodeid>@<document>)",
                source_token.position,
            )
        source = NodeRef(node_id_text, doc_name)
    else:
        source = parse_path(source_token.value)
    where: Optional[Condition] = None
    nxt = stream.peek()
    if nxt is not None and nxt.is_keyword("where"):
        stream.next()
        where = _parse_condition(stream)
    nxt = stream.peek()
    if nxt is not None and nxt.kind == "SEMI":
        stream.next()
    if not stream.at_end():
        trailing = stream.peek()
        raise QuerySyntaxError(
            f"unexpected trailing token {trailing.value!r}", trailing.position
        )
    _check_var_consistency(select_paths, var, where)
    return SelectQuery(tuple(select_paths), var, source, where)


def _parse_varpath_token(token: Token) -> VarPath:
    if token.kind != "PATH":
        raise QuerySyntaxError(f"expected a path, found {token.value!r}", token.position)
    return _split_varpath(token.value, token.position)


def _split_varpath(text: str, position: int) -> VarPath:
    var, slash, rest = text.partition("/")
    if not var:
        raise QuerySyntaxError(f"path must start with a variable: {text!r}", position)
    if not slash:
        return VarPath(var, PathExpr(()))
    return VarPath(var, parse_path(rest))


def _parse_condition(stream: _TokenStream) -> Condition:
    parts: List[Union[BooleanCondition, Comparison]] = [_parse_comparison(stream)]
    ops: List[str] = []
    while True:
        token = stream.peek()
        if token is None or not (token.is_keyword("and") or token.is_keyword("or")):
            break
        ops.append(stream.next().value)
        parts.append(_parse_comparison(stream))
    if len(parts) == 1:
        return parts[0]
    # 'and' binds tighter than 'or': group maximal and-runs first.
    or_groups: List[Union[BooleanCondition, Comparison]] = []
    group: List[Union[BooleanCondition, Comparison]] = [parts[0]]
    for op, part in zip(ops, parts[1:]):
        if op == "and":
            group.append(part)
        else:
            or_groups.append(_fold_and(group))
            group = [part]
    or_groups.append(_fold_and(group))
    if len(or_groups) == 1:
        return or_groups[0]
    return BooleanCondition("or", tuple(or_groups))


def _fold_and(
    group: List[Union[BooleanCondition, Comparison]]
) -> Union[BooleanCondition, Comparison]:
    if len(group) == 1:
        return group[0]
    return BooleanCondition("and", tuple(group))


def _parse_comparison(stream: _TokenStream) -> Comparison:
    left = _parse_varpath_token(stream.next())
    op_token = stream.next()
    if op_token.kind != "OP":
        raise QuerySyntaxError(
            f"expected a comparison operator, found {op_token.value!r}",
            op_token.position,
        )
    literal_parts: List[str] = []
    while True:
        token = stream.peek()
        if token is None or token.kind in ("SEMI", "COMMA") or (
            token.kind == "KEYWORD" and token.value in ("and", "or")
        ):
            break
        token = stream.next()
        literal_parts.append(token.value)
        if token.kind == "STRING":
            break
    if not literal_parts:
        raise QuerySyntaxError(
            "comparison is missing its right-hand side", op_token.position
        )
    # Barewords may span several tokens ("Roger Federer"); rejoin them.
    literal = " ".join(literal_parts)
    return Comparison(left, op_token.value, literal)


def _check_var_consistency(
    select_paths: List[VarPath], var: str, where: Optional[Condition]
) -> None:
    for vp in select_paths:
        if vp.var != var:
            raise QuerySyntaxError(
                f"select path variable {vp.var!r} is not the bound variable {var!r}"
            )
        if vp.path.steps and vp.path.attribute_name:
            raise QuerySyntaxError(
                "attribute steps (@name) are supported in where clauses only; "
                f"select path {vp} returns nodes"
            )
    for comparison in iter_comparisons(where):
        if comparison.left.var != var:
            raise QuerySyntaxError(
                f"where-clause variable {comparison.left.var!r} is not the bound "
                f"variable {var!r}"
            )


def iter_comparisons(condition: Optional[Condition]):
    """Yield every :class:`Comparison` inside *condition*."""
    if condition is None:
        return
    if isinstance(condition, Comparison):
        yield condition
        return
    for part in condition.parts:
        yield from iter_comparisons(part)


def parse_action(xml_text: str) -> UpdateAction:
    """Parse an ``<action type="…">`` document (§3.1) to an UpdateAction."""
    document = parse_document(xml_text, name="action")
    return action_from_element(document.root)


def action_from_element(root: Element) -> UpdateAction:
    """Build an UpdateAction from an already-parsed ``<action>`` element."""
    if root.name.local != "action":
        raise QuerySyntaxError(f"expected <action>, found <{root.name.text}>")
    type_text = root.attributes.get("type", "")
    try:
        action_type = ActionType.parse(type_text)
    except ValueError as exc:
        raise QuerySyntaxError(str(exc))
    location_el = root.first_child("location")
    if location_el is None:
        raise QuerySyntaxError("<action> is missing its <location> query")
    location = parse_select(location_el.text_content())
    data: List[str] = []
    for data_el in root.find_children("data"):
        for child in data_el.children:
            data.append(serialize(child))
    anchor: Optional[Tuple[str, str]] = None
    anchor_text = root.attributes.get("anchor")
    if anchor_text:
        mode, _, node_id = anchor_text.partition(":")
        if mode not in ("before", "after") or not node_id:
            raise QuerySyntaxError(f"malformed anchor attribute {anchor_text!r}")
        anchor = (mode, node_id)
    if action_type.is_update and action_type is not ActionType.DELETE and not data:
        raise QuerySyntaxError(
            f"<action type={action_type.value!r}> requires a <data> payload"
        )
    rebind = root.attributes.get("rebind", "") == "true"
    return UpdateAction(action_type, location, tuple(data), anchor, rebind)
