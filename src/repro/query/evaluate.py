"""Evaluation of Select queries against a document.

Evaluation is pure: it never mutates the document.  Materialization of
embedded service calls — the side-effecting half of AXML query
evaluation that makes query compensation necessary (§3.1) — is composed
*around* this function by :mod:`repro.axml.materialize`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import QueryEvaluationError
from repro.obs.prof import PROF
from repro.query.ast import (
    Comparison,
    Condition,
    NodeRef,
    SelectQuery,
    VarPath,
)
from repro.xmlstore.nodes import NodeId
from repro.xmlstore.nodes import Document, Element, Node
from repro.xmlstore.path import NULL_METER, TraversalMeter


@dataclass
class Binding:
    """One row of the result: the bound element plus its selected nodes."""

    context: Element
    selected: Dict[str, List[Node]] = field(default_factory=dict)

    def nodes(self) -> List[Node]:
        """All selected nodes of this binding, in select-list order."""
        out: List[Node] = []
        for nodes in self.selected.values():
            out.extend(nodes)
        return out


@dataclass
class QueryResult:
    """The result of evaluating a Select query."""

    query: SelectQuery
    bindings: List[Binding]

    def all_nodes(self) -> List[Node]:
        """Every selected node across bindings, document order per binding."""
        out: List[Node] = []
        for binding in self.bindings:
            out.extend(binding.nodes())
        return out

    def texts(self) -> List[str]:
        """Text content of every selected node (convenience for tests)."""
        return [node.text_content() for node in self.all_nodes()]

    def is_empty(self) -> bool:
        return not self.bindings

    def __len__(self) -> int:
        return len(self.bindings)


def evaluate_select(
    query: SelectQuery,
    document: Document,
    meter: TraversalMeter = NULL_METER,
) -> QueryResult:
    """Evaluate *query* against *document* and return its bindings.

    The source path binds ``query.var`` to each matching element; the
    ``where`` condition filters bindings (a comparison holds if *any*
    node reached by its left path satisfies it — existential semantics);
    each select path is then evaluated relative to every surviving
    binding.
    """
    if document.root is None:
        return QueryResult(query, [])
    candidates = _source_nodes(query, document, meter)
    bindings: List[Binding] = []
    for node in candidates:
        if not isinstance(node, Element):
            continue
        if query.where is not None and not _condition_holds(query.where, node, meter):
            continue
        binding = Binding(node)
        for vp in query.select_paths:
            binding.selected[str(vp)] = _eval_varpath(vp, node, meter)
        bindings.append(binding)
    return QueryResult(query, bindings)


def _source_nodes(
    query: SelectQuery, document: Document, meter: TraversalMeter
) -> List[Node]:
    """Resolve the query source: a path, or an id reference (``id(..@..)``).

    An id reference that no longer resolves — or resolves to a detached
    node — yields no bindings rather than an error: a compensating
    operation whose target vanished must be a no-op, not a crash.
    """
    if isinstance(query.source, NodeRef):
        node_id = NodeId.parse(query.source.node_id_text)
        PROF.incr("comp_log_lookups")
        if not document.has_node(node_id):
            return []
        node = document.get_node(node_id)
        meter.touch()
        if not isinstance(node, Element) or not node.is_attached():
            return []
        return [node]
    return query.source.evaluate(document, meter)


def _eval_varpath(vp: VarPath, context: Element, meter: TraversalMeter) -> List[Node]:
    if not vp.path.steps:
        return [context]
    return vp.path.evaluate(context, meter)


def _condition_holds(
    condition: Condition, context: Element, meter: TraversalMeter
) -> bool:
    if isinstance(condition, Comparison):
        if condition.left.path.steps and condition.left.path.attribute_name:
            # Attribute comparison: ``p/@rank = 1`` (paper documents are
            # attribute-rich).  Existential over the reached attributes.
            values = condition.left.path.attribute_values(context, meter)
            return any(condition.matches(value) for value in values)
        nodes = _eval_varpath(condition.left, context, meter)
        return any(condition.matches(node.text_content()) for node in nodes)
    if condition.op == "and":
        return all(_condition_holds(part, context, meter) for part in condition.parts)
    if condition.op == "or":
        return any(_condition_holds(part, context, meter) for part in condition.parts)
    raise QueryEvaluationError(f"unknown boolean operator {condition.op!r}")
