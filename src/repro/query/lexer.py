"""Tokenizer for the Select query language.

Token kinds:

* ``KEYWORD`` — ``select``, ``from``, ``in``, ``where``, ``and``, ``or``
  (case-insensitive, as the paper capitalizes ``Select``),
* ``PATH`` — a path-shaped word (may contain ``/``, ``.``, ``*``, ``()``),
* ``OP`` — ``=``, ``!=``, ``<>``, ``<=``, ``>=``, ``<``, ``>``,
* ``STRING`` — a single- or double-quoted literal,
* ``COMMA`` and ``SEMI`` punctuation.

The paper writes comparison literals unquoted (``… = Federer``); such
barewords come out as ``PATH`` tokens and the parser re-interprets them
as literals on the right-hand side of an operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import QuerySyntaxError

KEYWORDS = {"select", "from", "in", "where", "and", "or"}

_OPERATORS = ("!=", "<>", "<=", ">=", "=", "<", ">")
_WHITESPACE = " \t\r\n"


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position (for error messages)."""

    kind: str
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "KEYWORD" and self.value == word


def tokenize(text: str) -> List[Token]:
    """Split *text* into tokens; raises :class:`QuerySyntaxError` on junk."""
    tokens: List[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        ch = text[pos]
        if ch in _WHITESPACE:
            pos += 1
            continue
        if ch == ",":
            tokens.append(Token("COMMA", ",", pos))
            pos += 1
            continue
        if ch == ";":
            tokens.append(Token("SEMI", ";", pos))
            pos += 1
            continue
        if ch in ("'", '"'):
            end = text.find(ch, pos + 1)
            if end < 0:
                raise QuerySyntaxError("unterminated string literal", pos)
            tokens.append(Token("STRING", text[pos + 1 : end], pos))
            pos = end + 1
            continue
        op = _match_operator(text, pos)
        if op:
            tokens.append(Token("OP", "!=" if op == "<>" else op, pos))
            pos += len(op)
            continue
        end = pos
        while end < length and text[end] not in _WHITESPACE + ",;'\"" and not _match_operator(text, end):
            end += 1
        word = text[pos:end]
        if not word:
            raise QuerySyntaxError(f"unexpected character {ch!r}", pos)
        lowered = word.lower()
        if lowered in KEYWORDS:
            tokens.append(Token("KEYWORD", lowered, pos))
        else:
            tokens.append(Token("PATH", word, pos))
        pos = end
    return tokens


def _match_operator(text: str, pos: int) -> str:
    for op in _OPERATORS:
        if text.startswith(op, pos):
            return op
    return ""
