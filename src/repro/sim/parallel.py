"""Deterministic fan-out of sweep points over worker processes.

A sweep (chaos, throughput) is a grid of *independent* parameter points:
every point builds its own cluster from its config and seed, runs it,
and reduces to one row of counts and rounded floats.  Nothing crosses
point boundaries, so the grid can be evaluated on N processes — as long
as the *merge* preserves the serial point order, the resulting table is
byte-identical to serial execution.  That is the determinism contract:

* **Serial is the oracle.**  ``workers <= 1`` (the default everywhere)
  runs the plain loop in-process; parallel output must match it
  byte-for-byte, and CI enforces exactly that.
* **Order by submission, not completion.**  :func:`parallel_map` keeps
  results in item order (``Pool.map`` semantics), so row order — and
  therefore the rendered table and its JSON artifact — cannot depend on
  worker scheduling.
* **Rows carry no process-local state.**  Sweep cells return counts and
  rounded floats only — never node ids, object reprs or wall-clock —
  which the repo's run/rerun byte-identity tests already guarantee.

Workers are forked (POSIX), so cell functions must be module-level
(picklable) and must not rely on mutated parent globals after the pool
starts.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def available_cores() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-POSIX fallback
        return os.cpu_count() or 1


def resolve_workers(workers: int, items: int) -> int:
    """The worker count a sweep will really use.

    ``0`` means "all available cores"; the result is clamped to the
    number of items (starting idle workers is pure overhead) and floors
    at 1 (serial).
    """
    if workers == 0:
        workers = available_cores()
    return max(1, min(workers, items))


def parallel_map(
    fn: Callable[[T], R], items: Sequence[T], workers: int = 0
) -> List[R]:
    """``[fn(x) for x in items]`` — possibly on *workers* processes.

    Results are returned in item order regardless of completion order.
    Falls back to the in-process loop when one worker (or fewer than two
    items) would be used, so the serial path stays the common case and
    the determinism oracle.  *fn* must be module-level and *items*
    picklable; exceptions in workers propagate to the caller.
    """
    items = list(items)
    workers = resolve_workers(workers, len(items))
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    # Fork keeps imports warm and is the only start method that allows
    # the sweep modules' module-level cell functions without re-import
    # side effects; chunksize=1 because cells are coarse (whole runs).
    context = multiprocessing.get_context("fork")
    with context.Pool(processes=workers) as pool:
        return pool.map(fn, items, chunksize=1)
