"""Throughput experiment (T1): commit rate under concurrent load.

Builds a small OCC-enabled cluster (each peer hosts its own generated
catalogue), drives it with the concurrent
:class:`~repro.sim.scheduler.TransactionScheduler` in closed-loop mode,
and reduces each parameter point — (clients, hot-spot fraction, failure
rate) — to one :class:`~repro.sim.harness.ExperimentTable` row:

========  =====================================================
column    meaning
========  =====================================================
clients   concurrent closed-loop clients (= max in-flight)
hot       probability an operation hits the shared hot spot
fail      probability a transaction abandons mid-flight
txns      logical transactions run at this point
committed transactions that reached commit (possibly retried)
conflict  terminal aborts after exhausting conflict retries
failure   terminal aborts from the failure knob
retries   conflict-triggered re-attempts across all txns
abort_pct terminal aborts / txns, in percent
tput      committed transactions per simulated second
p50_lat   median arrival→commit latency (committed only)
p99_lat   99th-percentile arrival→commit latency
========  =====================================================

Everything is seeded; the same seed yields a byte-identical table (and
JSON artifact) on every run, independent of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.sim.harness import ExperimentTable
from repro.sim.rng import SeededRng, stable_seed
from repro.sim.scheduler import TransactionScheduler, TxnSpec
from repro.sim.workload import (
    OperationMix,
    generate_catalogue,
    generate_contended_transaction,
)

#: Operation mix for throughput runs: no deletes, so pre-targeted
#: operations never lose their target mid-run to a concurrent delete.
THROUGHPUT_MIX = OperationMix(insert=0.35, delete=0.0, replace=0.45, query=0.2)

#: Columns of the T1 table, in render order.
T1_COLUMNS = (
    "clients",
    "hot",
    "fail",
    "txns",
    "committed",
    "conflict",
    "failure",
    "retries",
    "abort_pct",
    "tput",
    "p50_lat",
    "p99_lat",
)


def build_throughput_cluster(
    seed: int, peer_count: int = 2, items: int = 12
) -> Tuple[SimNetwork, Dict[str, AXMLPeer]]:
    """An OCC cluster for load runs: each peer hosts its own catalogue."""
    network = SimNetwork(hop_latency=0.005)
    peers: Dict[str, AXMLPeer] = {}
    for index in range(1, peer_count + 1):
        peer_id = f"AP{index}"
        peer = AXMLPeer(peer_id, network, occ=True, seed=seed)
        doc_rng = SeededRng(stable_seed(seed, f"catalogue:{peer_id}"))
        peer.host_document(
            generate_catalogue(doc_rng, items, name=f"Catalogue{index}")
        )
        peers[peer_id] = peer
    return network, peers


def run_throughput_point(
    seed: int,
    clients: int,
    hot_fraction: float,
    fail_rate: float,
    txns_per_client: int = 5,
    txn_length: int = 4,
    think_time: float = 0.02,
    max_attempts: int = 6,
    peer_count: int = 2,
    items: int = 12,
) -> Dict[str, Any]:
    """One parameter point of the sweep; returns the table row."""
    network, peers = build_throughput_cluster(seed, peer_count, items)
    peer_ids = sorted(peers)
    scheduler = TransactionScheduler(
        network,
        max_inflight=clients,
        max_attempts=max_attempts,
        seed=stable_seed(seed, f"sched:{clients}:{hot_fraction}:{fail_rate}"),
    )
    workload_rng = SeededRng(
        stable_seed(seed, f"workload:{clients}:{hot_fraction}:{fail_rate}")
    )

    def make_spec(client: int, index: int) -> TxnSpec:
        origin = peer_ids[client % len(peer_ids)]
        document = next(iter(peers[origin].documents.values()))
        operations = generate_contended_transaction(
            workload_rng, document, txn_length, hot_fraction, THROUGHPUT_MIX
        )
        fail_at: Optional[int] = None
        if workload_rng.coin(fail_rate):
            fail_at = workload_rng.randint(1, txn_length)
        return TxnSpec(
            label=f"c{client}t{index}",
            origin=origin,
            operations=tuple(operations),
            fail_at=fail_at,
        )

    scheduler.run_closed_loop(clients, txns_per_client, make_spec, think_time)
    results = scheduler.run()

    counts = scheduler.outcome_counts()
    total = len(results)
    committed = counts.get("committed", 0)
    aborted = total - committed
    makespan = network.clock.now
    metrics = network.metrics
    return {
        "clients": clients,
        "hot": hot_fraction,
        "fail": fail_rate,
        "txns": total,
        "committed": committed,
        "conflict": counts.get("aborted_conflict", 0),
        "failure": counts.get("aborted_failure", 0),
        "retries": metrics.get("sched_retries"),
        "abort_pct": round(100.0 * aborted / total, 2) if total else 0.0,
        "tput": round(committed / makespan, 4) if makespan > 0 else None,
        "p50_lat": _rounded(metrics.p50("txn_latency")),
        "p99_lat": _rounded(metrics.p99("txn_latency")),
    }


def _rounded(value: Optional[float], digits: int = 4) -> Optional[float]:
    return None if value is None else round(value, digits)


def _t1_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side T1 point (module-level so it forks cleanly)."""
    return run_throughput_point(**payload)


def throughput_sweep(
    seed: int = 7,
    clients_axis: Sequence[int] = (1, 4, 16),
    hot_axis: Sequence[float] = (0.1, 0.9),
    fail_axis: Sequence[float] = (0.0, 0.1),
    smoke: bool = False,
    workers: int = 1,
) -> ExperimentTable:
    """The T1 sweep: concurrency × contention × failure → one table.

    ``smoke`` shrinks every axis and the per-point work so CI can run
    the full pipeline in a couple of seconds.  ``workers`` > 1 evaluates
    the grid on that many processes (0 = all cores); each point builds
    its own cluster from (seed, point), and rows merge in serial order,
    so the table is byte-identical to ``workers=1``
    (:mod:`repro.sim.parallel`).
    """
    from repro.sim.parallel import parallel_map

    if smoke:
        clients_axis = (1, 2)
        hot_axis = (0.0, 0.9)
        fail_axis = (0.0,)
        point_kwargs: Dict[str, Any] = {"txns_per_client": 2, "items": 6}
    else:
        point_kwargs = {}
    table = ExperimentTable(
        "T1: commit throughput under concurrent load (closed loop)", T1_COLUMNS
    )
    payloads = [
        dict(
            seed=seed, clients=clients, hot_fraction=hot, fail_rate=fail,
            **point_kwargs,
        )
        for clients in clients_axis
        for hot in hot_axis
        for fail in fail_axis
    ]
    for row in parallel_map(_t1_cell, payloads, workers):
        table.add_row(**row)
    table.add_note(
        f"seed={seed}; OCC on; conflict aborts retry with exponential "
        "backoff; latencies in simulated seconds"
    )
    return table


def demo_conflict_retry(seed: int = 11) -> List[Dict[str, Any]]:
    """Two clients hammering one hot spot on one peer: the canonical
    conflict → backoff → retry → commit trace.  Returns the scheduler
    results as dicts (no txn ids, artifact-safe)."""
    network, peers = build_throughput_cluster(seed, peer_count=1, items=4)
    document = next(iter(peers["AP1"].documents.values()))
    scheduler = TransactionScheduler(
        network, max_inflight=2, seed=stable_seed(seed, "demo")
    )
    rng = SeededRng(stable_seed(seed, "demo-workload"))
    for client in range(2):
        operations = generate_contended_transaction(
            rng, document, 3, hot_fraction=1.0, mix=THROUGHPUT_MIX
        )
        scheduler.submit(
            TxnSpec(f"hot{client}", "AP1", tuple(operations)), at_time=0.0
        )
    results = scheduler.run()
    return [
        {
            "label": r.label,
            "status": r.status,
            "attempts": r.attempts,
            "latency": round(r.latency, 4),
        }
        for r in results
    ]
