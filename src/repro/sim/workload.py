"""Workload generators for the experiments.

All generators are deterministic under a :class:`SeededRng`, so every
experiment row is reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.axml.document import AXMLDocument
from repro.axml.service_call import install_service_call
from repro.query.ast import ActionType, UpdateAction
from repro.query.parser import parse_action
from repro.sim.rng import SeededRng
from repro.xmlstore.nodes import Document, Element

#: Element names the generated catalogue documents draw from.
_CATEGORY_NAMES = ("book", "article", "report", "thesis", "manual")
_FIELD_NAMES = ("title", "author", "year", "price", "publisher")
_WORDS = (
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
    "golf", "hotel", "india", "juliet", "kilo", "lima",
)


def generate_catalogue(
    rng: SeededRng,
    item_count: int,
    name: str = "Catalogue",
    call_density: float = 0.0,
    service_peers: Sequence[str] = (),
) -> AXMLDocument:
    """A catalogue document with *item_count* items.

    Each item gets 2–4 text fields; with probability *call_density* an
    item additionally embeds a service call (``getStock``-style) whose
    declared result name is ``stock``, hosted on a random peer from
    *service_peers* (or locally when none are given).
    """
    document = Document(name)
    root = document.create_root(name)
    for index in range(item_count):
        category = rng.choice(_CATEGORY_NAMES)
        item = root.new_element(category, {"id": str(index)})
        # Every item carries a unique <sku> so selective operations can
        # address exactly one item through the query language.
        item.new_element("sku").new_text(str(index))
        for field_name in rng.sample(_FIELD_NAMES, rng.randint(2, 4)):
            value = (
                str(rng.randint(1990, 2007))
                if field_name == "year"
                else rng.choice(_WORDS)
            )
            item.new_element(field_name).new_text(value)
        if call_density > 0 and rng.coin(call_density):
            peer = rng.choice(list(service_peers)) if service_peers else ""
            install_service_call(
                item,
                method_name="getStock",
                service_url=f"axml://{peer}" if peer else "",
                mode="replace",
                params={"item": str(index)},
                initial_result_xml=(f"<stock>{rng.randint(0, 99)}</stock>",),
                result_name="stock",
            )
    return AXMLDocument(document)


@dataclass
class OperationMix:
    """Relative weights of the operation kinds in a generated workload."""

    insert: float = 0.3
    delete: float = 0.2
    replace: float = 0.3
    query: float = 0.2

    def pick(self, rng: SeededRng) -> ActionType:
        total = self.insert + self.delete + self.replace + self.query
        roll = rng.random() * total
        if roll < self.insert:
            return ActionType.INSERT
        roll -= self.insert
        if roll < self.delete:
            return ActionType.DELETE
        roll -= self.delete
        if roll < self.replace:
            return ActionType.REPLACE
        return ActionType.QUERY


def generate_operation(
    rng: SeededRng,
    document: AXMLDocument,
    mix: Optional[OperationMix] = None,
    selective: bool = False,
) -> UpdateAction:
    """One random operation valid against the document's current state.

    With ``selective=True`` the operation targets exactly one item (via
    its unique ``<sku>``), so the touched-data volume is independent of
    document size — the shape experiment E3 needs.
    """
    mix = mix or OperationMix()
    kind = mix.pick(rng)
    doc_name = document.name
    # Target only categories/fields the document actually contains, so
    # generated inserts/replaces always locate a target.  The scan uses
    # path evaluation, which sees through axml:sc containers — so
    # call-backed fields (e.g. <stock> results) are fair game, making
    # generated queries exercise lazy materialization.
    from repro.xmlstore.path import parse_path

    targetable = set(_FIELD_NAMES) | {"stock"}
    root = document.document.root
    items: List[Tuple[str, Optional[str], List[str]]] = []
    if root is not None:
        for item in root.child_elements():
            fields = [
                c.name.local
                for c in parse_path("*").evaluate(item)
                if c.name.local in targetable
            ]
            if not fields:
                continue
            sku_el = item.first_child("sku")
            sku = sku_el.text_content() if sku_el is not None else None
            items.append((item.name.local, sku, fields))
    if not items:
        category, field_name, where = "book", "title", ""
    elif selective:
        category, sku, fields = rng.choice(items)
        field_name = rng.choice(sorted(set(fields)))
        where = f" where i/sku = {sku}" if sku is not None else ""
    else:
        category = rng.choice(sorted({c for c, _, _ in items}))
        all_fields = sorted(
            {f for c, _, fields in items if c == category for f in fields}
        )
        field_name = rng.choice(all_fields)
        where = ""
    if kind is ActionType.QUERY:
        return parse_action(
            f'<action type="query"><location>Select i/{field_name} from i in '
            f"{doc_name}//{category}{where};</location></action>"
        )
    if kind is ActionType.INSERT:
        word = rng.choice(_WORDS)
        return parse_action(
            f'<action type="insert"><data><note>{word}</note></data>'
            f"<location>Select i from i in {doc_name}//{category}{where};"
            f"</location></action>"
        )
    if kind is ActionType.DELETE:
        return parse_action(
            f'<action type="delete"><location>Select i/{field_name} from i in '
            f"{doc_name}//{category}{where};</location></action>"
        )
    word = rng.choice(_WORDS)
    return parse_action(
        f'<action type="replace"><data><{field_name}>{word}</{field_name}></data>'
        f"<location>Select i/{field_name} from i in {doc_name}//{category}{where};"
        f"</location></action>"
    )


def generate_transaction(
    rng: SeededRng,
    document: AXMLDocument,
    length: int,
    mix: Optional[OperationMix] = None,
) -> List[UpdateAction]:
    """A transactional unit: *length* operations over one document."""
    return [generate_operation(rng, document, mix) for _ in range(length)]


# ---------------------------------------------------------------------------
# load generation for the throughput experiments (T1)
# ---------------------------------------------------------------------------

def poisson_arrival_times(
    rng: SeededRng, rate: float, count: int, start: float = 0.0
) -> List[float]:
    """*count* absolute arrival times of a Poisson process at *rate*.

    Inter-arrival gaps are exponential; the whole sequence is a pure
    function of the rng stream, so open-loop load is reproducible.
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be > 0, got {rate}")
    times: List[float] = []
    t = start
    for _ in range(count):
        t += rng.expovariate(rate)
        times.append(t)
    return times


def hot_spot_action(document: AXMLDocument) -> UpdateAction:
    """A write that every contending transaction aims at the same node.

    Inserts a ``<hit/>`` marker under item 0: the write set includes the
    *parent* item node, so every pair of concurrent hot writers overlaps
    for OCC validation — the contention knob.  An insert (rather than a
    replace) is deliberate: its compensation deletes exactly the
    inserted node id, so aborted attempts leave the hot item unchanged
    even when other transactions touched it in between (a replace chain
    under interleaving can re-insert stale snapshots and snowball).
    """
    root = document.document.root
    category = "book"
    if root is not None:
        for item in root.child_elements():
            sku_el = item.first_child("sku")
            if sku_el is not None and sku_el.text_content() == "0":
                category = item.name.local
                break
    return parse_action(
        f'<action type="insert"><data><hit/></data>'
        f"<location>Select i from i in {document.name}//{category}"
        f" where i/sku = 0;</location></action>"
    )


def generate_contended_transaction(
    rng: SeededRng,
    document: AXMLDocument,
    length: int,
    hot_fraction: float = 0.0,
    mix: Optional[OperationMix] = None,
) -> List[UpdateAction]:
    """A transaction whose operations hit a shared hot spot with
    probability *hot_fraction* — the contention knob of the throughput
    sweep.  Cold operations are selective (single-item), so contention
    comes from the hot spot, not incidental overlap.
    """
    operations: List[UpdateAction] = []
    for _ in range(length):
        if hot_fraction > 0 and rng.coin(hot_fraction):
            operations.append(hot_spot_action(document))
        else:
            operations.append(generate_operation(rng, document, mix, selective=True))
    return operations


# ---------------------------------------------------------------------------
# invocation-tree topologies (experiment E5)
# ---------------------------------------------------------------------------

def generate_invocation_tree(
    rng: SeededRng,
    depth: int,
    fanout: int,
    fanout_jitter: bool = True,
) -> Dict[str, List[Tuple[str, str]]]:
    """A random invocation topology of the scenario-builder shape.

    Peers are named ``AP1..APn`` breadth-first from the root ``AP1``;
    each internal peer invokes 1..*fanout* children down to *depth*
    levels.  The result plugs directly into
    :func:`repro.sim.scenarios.build_topology`.
    """
    topology: Dict[str, List[Tuple[str, str]]] = {}
    counter = [1]

    def grow(parent: str, level: int) -> None:
        if level >= depth:
            return
        width = rng.randint(1, fanout) if fanout_jitter else fanout
        children: List[Tuple[str, str]] = []
        for _ in range(width):
            counter[0] += 1
            child = f"AP{counter[0]}"
            children.append((child, f"S{counter[0]}"))
        topology[parent] = children
        for child, _ in children:
            grow(child, level + 1)

    grow("AP1", 0)
    return topology


def tree_peers(topology: Dict[str, List[Tuple[str, str]]]) -> List[str]:
    """All peers of a generated topology, root first."""
    out: List[str] = []
    for parent, children in topology.items():
        if parent not in out:
            out.append(parent)
        for child, _ in children:
            if child not in out:
                out.append(child)
    return out


def generate_participant_sets(
    rng: SeededRng,
    peer_pool: Sequence[str],
    transactions: int,
    min_size: int = 2,
    max_size: int = 6,
) -> List[List[str]]:
    """Random participant sets for the spheres experiment (E6)."""
    out: List[List[str]] = []
    for _ in range(transactions):
        size = rng.randint(min_size, min(max_size, len(peer_pool)))
        out.append(rng.sample(list(peer_pool), size))
    return out
