"""Metrics collection for experiments.

One :class:`MetricsCollector` is shared by the network, the peers and
the transaction managers of a simulation.  Counters map directly to the
quantities EXPERIMENTS.md reports:

* ``messages`` / ``pings`` / ``aborts_sent`` — protocol traffic;
* ``invocations`` / ``invocations_discarded`` / ``invocations_reused``
  — loss of effort under disconnection (§3.3's objective is to
  "minimize loss of effort … and reuse already performed work");
* ``nodes_affected_forward`` / ``nodes_affected_compensation`` — the
  paper's cost measure, "the number of XML nodes affected (traversed)"
  (§3.2);
* detection events with their virtual-time latency.

Alongside the counters, named :class:`repro.obs.histogram.Histogram`
distributions capture the quantities a single integer cannot — RPC
latency, detection latency, compensation depth, chain length — and
:meth:`MetricsCollector.to_json` exports everything as strict JSON
(sorted keys, no ``Infinity``/``NaN``) for ``BENCH_*.json`` trajectories.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, DefaultDict, Dict, List, Optional

from repro.obs.export import stable_json
from repro.obs.prof import PROF
from repro.obs.histogram import Histogram


@dataclass
class DetectionEvent:
    """One disconnection detection: who noticed whom, and how fast."""

    disconnected_peer: str
    detected_by: str
    disconnect_time: float
    detect_time: float

    @property
    def latency(self) -> float:
        return self.detect_time - self.disconnect_time

    def to_dict(self) -> Dict[str, Any]:
        return {
            "disconnected_peer": self.disconnected_peer,
            "detected_by": self.detected_by,
            "disconnect_time": self.disconnect_time,
            "detect_time": self.detect_time,
            "latency": self.latency,
        }


class MetricsCollector:
    """Shared counters and histograms for one simulation run."""

    def __init__(self) -> None:
        self.counters: DefaultDict[str, int] = defaultdict(int)
        self.detections: List[DetectionEvent] = []
        #: txn id → outcome string ("committed" / "aborted" / "stuck")
        self.txn_outcomes: Dict[str, str] = {}
        #: name → distribution (rpc_latency, detection_latency, …).
        self.histograms: Dict[str, Histogram] = {}

    # -- counters -------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    # -- histograms -----------------------------------------------------

    def histogram(self, name: str) -> Histogram:
        """The named histogram, created on first use."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name)
        return histogram

    def record_value(self, name: str, value: float) -> None:
        """Record one sample into the named histogram."""
        self.histogram(name).record(value)

    def percentile(self, name: str, p: float) -> Optional[float]:
        """The named histogram's *p*-th percentile; None when unsampled."""
        histogram = self.histograms.get(name)
        return None if histogram is None else histogram.percentile(p)

    def p50(self, name: str) -> Optional[float]:
        return self.percentile(name, 50)

    def p95(self, name: str) -> Optional[float]:
        return self.percentile(name, 95)

    def p99(self, name: str) -> Optional[float]:
        return self.percentile(name, 99)

    def max_value(self, name: str) -> Optional[float]:
        histogram = self.histograms.get(name)
        return None if histogram is None else histogram.max

    # -- convenience recorders --------------------------------------------

    def record_message(self, kind: str) -> None:
        self.incr("messages")
        self.incr(f"messages.{kind}")
        PROF.incr("messages_sent")

    def record_invocation(self) -> None:
        self.incr("invocations")

    def record_discarded_invocation(self, count: int = 1) -> None:
        """Completed work thrown away during recovery (loss of effort)."""
        self.incr("invocations_discarded", count)

    def record_reused_invocation(self, count: int = 1) -> None:
        """Completed work salvaged through chaining (§3.3b)."""
        self.incr("invocations_reused", count)

    def record_forward_cost(self, nodes: int) -> None:
        self.incr("nodes_affected_forward", nodes)

    def record_compensation_cost(self, nodes: int) -> None:
        self.incr("nodes_affected_compensation", nodes)

    def record_detection(
        self,
        disconnected_peer: str,
        detected_by: str,
        disconnect_time: float,
        detect_time: float,
    ) -> None:
        event = DetectionEvent(
            disconnected_peer, detected_by, disconnect_time, detect_time
        )
        self.detections.append(event)
        self.record_value("detection_latency", event.latency)

    def record_txn_outcome(self, txn_id: str, outcome: str) -> None:
        self.txn_outcomes[txn_id] = outcome

    # -- summaries ------------------------------------------------------------

    def detection_latency(
        self, disconnected_peer: Optional[str] = None
    ) -> Optional[float]:
        """Earliest detection latency for a peer (or across all peers).

        Returns ``None`` when nothing was detected — never ``inf``,
        which would serialize as invalid JSON ``Infinity``.
        """
        events = [
            e
            for e in self.detections
            if disconnected_peer is None or e.disconnected_peer == disconnected_peer
        ]
        if not events:
            return None
        return min(e.latency for e in events)

    def outcome_counts(self) -> Dict[str, int]:
        out: DefaultDict[str, int] = defaultdict(int)
        for outcome in self.txn_outcomes.values():
            out[outcome] += 1
        return dict(out)

    def snapshot(self) -> Dict[str, int]:
        return dict(self.counters)

    # -- export ---------------------------------------------------------------

    def to_dict(self, include_values: bool = True) -> Dict[str, Any]:
        """Everything the collector holds, as a JSON-safe dict.

        ``include_values`` keeps raw histogram samples so the export
        round-trips losslessly through :meth:`from_json`.
        """
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: histogram.to_dict(include_values=include_values)
                for name, histogram in sorted(self.histograms.items())
            },
            "detections": [event.to_dict() for event in self.detections],
            "txn_outcomes": dict(sorted(self.txn_outcomes.items())),
            "detection_latency": self.detection_latency(),
        }

    def to_json(self, include_values: bool = True) -> str:
        """Strict, stable JSON (sorted keys, no ``Infinity``/``NaN``)."""
        return stable_json(self.to_dict(include_values=include_values))

    @classmethod
    def from_json(cls, text: str) -> "MetricsCollector":
        """Rebuild a collector from :meth:`to_json` output."""
        data = json.loads(text)
        collector = cls()
        for name, value in data.get("counters", {}).items():
            collector.counters[name] = int(value)
        for name, payload in data.get("histograms", {}).items():
            collector.histograms[name] = Histogram.from_dict(payload)
        for event in data.get("detections", []):
            collector.detections.append(
                DetectionEvent(
                    event["disconnected_peer"],
                    event["detected_by"],
                    event["disconnect_time"],
                    event["detect_time"],
                )
            )
        collector.txn_outcomes.update(data.get("txn_outcomes", {}))
        return collector

    def __repr__(self) -> str:
        keys = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        return f"MetricsCollector({keys})"
