"""Metrics collection for experiments.

One :class:`MetricsCollector` is shared by the network, the peers and
the transaction managers of a simulation.  Counters map directly to the
quantities EXPERIMENTS.md reports:

* ``messages`` / ``pings`` / ``aborts_sent`` — protocol traffic;
* ``invocations`` / ``invocations_discarded`` / ``invocations_reused``
  — loss of effort under disconnection (§3.3's objective is to
  "minimize loss of effort … and reuse already performed work");
* ``nodes_affected_forward`` / ``nodes_affected_compensation`` — the
  paper's cost measure, "the number of XML nodes affected (traversed)"
  (§3.2);
* detection events with their virtual-time latency.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import DefaultDict, Dict, List, Optional, Tuple


@dataclass
class DetectionEvent:
    """One disconnection detection: who noticed whom, and how fast."""

    disconnected_peer: str
    detected_by: str
    disconnect_time: float
    detect_time: float

    @property
    def latency(self) -> float:
        return self.detect_time - self.disconnect_time


class MetricsCollector:
    """Shared counters for one simulation run."""

    def __init__(self) -> None:
        self.counters: DefaultDict[str, int] = defaultdict(int)
        self.detections: List[DetectionEvent] = []
        #: txn id → outcome string ("committed" / "aborted" / "stuck")
        self.txn_outcomes: Dict[str, str] = {}

    # -- counters -------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    # -- convenience recorders --------------------------------------------

    def record_message(self, kind: str) -> None:
        self.incr("messages")
        self.incr(f"messages.{kind}")

    def record_invocation(self) -> None:
        self.incr("invocations")

    def record_discarded_invocation(self, count: int = 1) -> None:
        """Completed work thrown away during recovery (loss of effort)."""
        self.incr("invocations_discarded", count)

    def record_reused_invocation(self, count: int = 1) -> None:
        """Completed work salvaged through chaining (§3.3b)."""
        self.incr("invocations_reused", count)

    def record_forward_cost(self, nodes: int) -> None:
        self.incr("nodes_affected_forward", nodes)

    def record_compensation_cost(self, nodes: int) -> None:
        self.incr("nodes_affected_compensation", nodes)

    def record_detection(
        self,
        disconnected_peer: str,
        detected_by: str,
        disconnect_time: float,
        detect_time: float,
    ) -> None:
        self.detections.append(
            DetectionEvent(disconnected_peer, detected_by, disconnect_time, detect_time)
        )

    def record_txn_outcome(self, txn_id: str, outcome: str) -> None:
        self.txn_outcomes[txn_id] = outcome

    # -- summaries ------------------------------------------------------------

    def detection_latency(self, disconnected_peer: Optional[str] = None) -> float:
        """Earliest detection latency for a peer (or across all peers)."""
        events = [
            e
            for e in self.detections
            if disconnected_peer is None or e.disconnected_peer == disconnected_peer
        ]
        if not events:
            return float("inf")
        return min(e.latency for e in events)

    def outcome_counts(self) -> Dict[str, int]:
        out: DefaultDict[str, int] = defaultdict(int)
        for outcome in self.txn_outcomes.values():
            out[outcome] += 1
        return dict(out)

    def snapshot(self) -> Dict[str, int]:
        return dict(self.counters)

    def __repr__(self) -> str:
        keys = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        return f"MetricsCollector({keys})"
