"""Simulation infrastructure: clock, RNG, metrics, workloads, scenarios.

The paper's substrate was a live P2P deployment; we replace it with a
deterministic simulation (see DESIGN.md's substitution table).  The
kernel is deliberately simple — a virtual clock plus deferred events —
because the transactional protocols are driven synchronously (RPC-style)
and only notifications and periodic services need scheduling.
"""

from repro.sim.kernel import Clock, EventQueue
from repro.sim.rng import SeededRng
from repro.sim.metrics import MetricsCollector

__all__ = ["Clock", "EventQueue", "SeededRng", "MetricsCollector"]
