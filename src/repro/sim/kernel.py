"""A small deterministic simulation kernel.

:class:`Clock` is virtual time: RPCs and service executions advance it
explicitly, so latency and detection-time metrics are exact and runs are
reproducible.  :class:`EventQueue` holds deferred callbacks (periodic
service invocations, delayed notifications) ordered by (time, sequence);
ties break by insertion order, never by object identity.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


class Clock:
    """Monotonic virtual time in simulated seconds."""

    def __init__(self, start: float = 0.0):
        self._now = start

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by *dt* (≥ 0); returns the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance the clock by {dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to *t* if it is in the future."""
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:
        return f"Clock(t={self._now:.6f})"


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventQueue.schedule`; supports cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventQueue:
    """Deferred callbacks ordered by virtual time."""

    def __init__(self, clock: Clock):
        self.clock = clock
        self._heap: List[_Event] = []
        self._seq = itertools.count()

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run *callback* ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule {delay}s in the past")
        event = _Event(self.clock.now + delay, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run *callback* at absolute virtual time *time*."""
        return self.schedule(max(0.0, time - self.clock.now), callback)

    def pending(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def next_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None when drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire exactly one event (the earliest live one).

        Returns False when the queue is drained.  This is the
        step-driven interleaving primitive the concurrent scheduler
        builds on: each peer work unit is one event, so stepping the
        queue interleaves the in-flight transactions deterministically
        in (time, sequence) order.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            return True
        return False

    def run_until(self, deadline: float, max_events: int = 100_000) -> int:
        """Fire events with time ≤ *deadline*; returns how many fired.

        The clock jumps to each event's time; after the last event it
        rests at *deadline* (or stays put if nothing fired beyond now).
        """
        fired = 0
        while self._heap and self._heap[0].time <= deadline:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            fired += 1
            if fired >= max_events:
                raise RuntimeError(
                    f"event storm: more than {max_events} events before {deadline}"
                )
        self.clock.advance_to(deadline)
        return fired

    def run_all(self, max_events: int = 100_000) -> int:
        """Fire every pending event regardless of time."""
        fired = 0
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            fired += 1
            if fired >= max_events:
                raise RuntimeError(f"event storm: more than {max_events} events")
        return fired
