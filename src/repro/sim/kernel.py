"""A small deterministic simulation kernel.

:class:`Clock` is virtual time: RPCs and service executions advance it
explicitly, so latency and detection-time metrics are exact and runs are
reproducible.  :class:`EventQueue` holds deferred callbacks (periodic
service invocations, delayed notifications) ordered by (time, sequence);
ties break by insertion order, never by object identity.

Cancellation is lazy: a cancelled event stays in the heap until a pop
skips it, or until cancelled entries outnumber live ones — then the
queue compacts in one pass (filter + re-heapify).  Long-running chaos
sweeps cancel timeouts for every transaction that completes normally;
without compaction those tombstones accumulate for the whole run and
every push/pop pays log(dead + alive) instead of log(alive).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.obs.prof import PROF

#: Never compact below this many tombstones — filtering a tiny heap
#: costs more in constant factors than the tombstones cost in log terms.
_COMPACT_FLOOR = 8


class Clock:
    """Monotonic virtual time in simulated seconds."""

    def __init__(self, start: float = 0.0):
        self._now = start

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by *dt* (≥ 0); returns the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance the clock by {dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to *t* if it is in the future."""
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:
        return f"Clock(t={self._now:.6f})"


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventQueue.schedule`; supports cancel."""

    __slots__ = ("_event", "_queue")

    def __init__(self, event: _Event, queue: "EventQueue"):
        self._event = event
        self._queue = queue

    def cancel(self) -> None:
        """Cancel the event (idempotent; fired events cancel silently)."""
        if self._event.cancelled:
            return
        self._event.cancelled = True
        self._queue._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventQueue:
    """Deferred callbacks ordered by virtual time."""

    def __init__(self, clock: Clock):
        self.clock = clock
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        #: Tombstones believed to still sit in the heap; drives compaction.
        self._cancelled = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run *callback* ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule {delay}s in the past")
        event = _Event(self.clock.now + delay, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        PROF.incr("eventq_scheduled")
        return EventHandle(event, self)

    def _note_cancelled(self) -> None:
        """Count a new tombstone; compact when the dead outnumber the live.

        The 2x threshold keeps amortized cost O(1) per cancellation; the
        floor keeps tiny queues on the trivial path.  Compaction preserves
        (time, seq) order exactly — it only removes entries a pop would
        have skipped anyway — so interleavings are unchanged.
        """
        self._cancelled += 1
        PROF.incr("eventq_cancelled")
        if self._cancelled >= _COMPACT_FLOOR and self._cancelled * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and restore the heap invariant."""
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        PROF.incr("eventq_compactions")

    def _pop_skipped(self) -> None:
        """Book-keeping for a cancelled event removed by a pop."""
        if self._cancelled > 0:
            self._cancelled -= 1

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run *callback* at absolute virtual time *time*."""
        return self.schedule(max(0.0, time - self.clock.now), callback)

    def pending(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def next_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None when drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._pop_skipped()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire exactly one event (the earliest live one).

        Returns False when the queue is drained.  This is the
        step-driven interleaving primitive the concurrent scheduler
        builds on: each peer work unit is one event, so stepping the
        queue interleaves the in-flight transactions deterministically
        in (time, sequence) order.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._pop_skipped()
                continue
            self.clock.advance_to(event.time)
            PROF.incr("eventq_fired")
            event.callback()
            return True
        return False

    def run_until(self, deadline: float, max_events: int = 100_000) -> int:
        """Fire events with time ≤ *deadline*; returns how many fired.

        The clock jumps to each event's time; after the last event it
        rests at *deadline* (or stays put if nothing fired beyond now).
        """
        fired = 0
        while self._heap and self._heap[0].time <= deadline:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._pop_skipped()
                continue
            self.clock.advance_to(event.time)
            PROF.incr("eventq_fired")
            event.callback()
            fired += 1
            if fired >= max_events:
                raise RuntimeError(
                    f"event storm: more than {max_events} events before {deadline}"
                )
        self.clock.advance_to(deadline)
        return fired

    def run_all(self, max_events: int = 100_000) -> int:
        """Fire every pending event regardless of time."""
        fired = 0
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._pop_skipped()
                continue
            self.clock.advance_to(event.time)
            PROF.incr("eventq_fired")
            event.callback()
            fired += 1
            if fired >= max_events:
                raise RuntimeError(f"event storm: more than {max_events} events")
        return fired


class OneShotTimer:
    """A re-armable single-pending-event timer over an :class:`EventQueue`.

    ``arm(delay)`` schedules the callback once; further ``arm`` calls
    while a firing is pending are no-ops (the earliest deadline wins).
    After the callback fires — or after :meth:`cancel` — the timer can
    be armed again.  This is the shape group commit needs for its
    virtual-time flush quantum: a periodic self-rescheduling event would
    keep ``run_all()`` spinning forever, while a one-shot armed only
    when work is actually buffered drains naturally.
    """

    __slots__ = ("_events", "_callback", "_handle")

    def __init__(self, events: EventQueue, callback: Callable[[], None]):
        self._events = events
        self._callback = callback
        self._handle: Optional[EventHandle] = None

    @property
    def armed(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    def arm(self, delay: float) -> None:
        """Schedule the callback *delay* from now unless already pending."""
        if self.armed:
            return
        self._handle = self._events.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Drop the pending firing, if any (idempotent)."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()


class ScratchSpace:
    """Deterministically-named scratch directories under one random root.

    Durable-WAL simulations need real directories on disk, but nothing
    about the *root* path may leak into run summaries or the WAL frames
    themselves, or byte-identical reruns would diverge.  The root is a
    fresh ``tempfile.mkdtemp``; everything below it is named by the
    caller (``path("AP1")``, ``path("AP1", "wal")``), so two runs with
    the same seed produce identical relative layouts under different
    roots.
    """

    def __init__(self, prefix: str = "repro-scratch-"):
        import tempfile

        self.root = tempfile.mkdtemp(prefix=prefix)

    def path(self, *parts: str) -> str:
        """Directory ``<root>/<parts...>``, created on first use."""
        import os

        if not parts:
            return self.root
        target = os.path.join(self.root, *parts)
        os.makedirs(target, exist_ok=True)
        return target

    def cleanup(self) -> None:
        import shutil

        shutil.rmtree(self.root, ignore_errors=True)

    def __enter__(self) -> "ScratchSpace":
        return self

    def __exit__(self, *exc) -> None:
        self.cleanup()
