"""Protocol trace recording.

Wraps a :class:`SimNetwork` so every interaction — invocation, result,
failure, notification, ping — is appended to an ordered trace.  Tests
assert exact protocol message sequences (the executable equivalent of
the paper's prose walk-throughs), and the CLI/examples can print traces
as human-readable protocol transcripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import PeerDisconnected, ReproError, ServiceFault
from repro.p2p.messages import InvokeRequest, message_kind
from repro.p2p.network import SimNetwork


class TraceAttachError(ReproError):
    """Raised when recorders detach out of nesting order.

    Two recorders may wrap the same network, but they must unwind
    innermost-first: detaching the outer one first would restore *its*
    saved methods — the inner recorder's wrappers — and leave the inner
    recorder permanently installed with no way to remove it.
    """


@dataclass(frozen=True)
class TraceEvent:
    """One recorded interaction."""

    time: float
    kind: str  # invoke | result | fault | disconnected | notify | ping
    source: str
    target: str
    detail: str = ""

    def __str__(self) -> str:
        arrow = "->" if self.kind in ("invoke", "notify", "ping") else "<-"
        return (
            f"[{self.time:8.4f}] {self.source:>6} {arrow} {self.target:<6} "
            f"{self.kind}({self.detail})"
        )


class TraceRecorder:
    """Records every network interaction, in order."""

    def __init__(self, network: SimNetwork):
        self.network = network
        self.events: List[TraceEvent] = []
        self._original_rpc = network.rpc
        self._original_notify = network.notify
        self._original_ping = network.ping
        self._attached = True
        network.rpc = self._rpc
        network.notify = self._notify
        network.ping = self._ping

    # -- wrappers -----------------------------------------------------------

    def _record(self, kind: str, source: str, target: str, detail: str) -> None:
        self.events.append(
            TraceEvent(self.network.clock.now, kind, source, target, detail)
        )

    def _rpc(self, source_id: str, target_id: str, request: InvokeRequest):
        self._record("invoke", source_id, target_id, request.method_name)
        try:
            result = self._original_rpc(source_id, target_id, request)
        except ServiceFault as fault:
            self._record("fault", target_id, source_id,
                         f"{request.method_name}:{fault.fault_name}")
            raise
        except PeerDisconnected as exc:
            self._record("disconnected", target_id, source_id, exc.peer_id)
            raise
        self._record("result", target_id, source_id, request.method_name)
        return result

    def _notify(self, source_id: str, target_id: str, message: object) -> bool:
        detail = message_kind(message)
        txn_id = getattr(message, "txn_id", "")
        if txn_id:
            detail = f"{detail}:{txn_id}"
        self._record("notify", source_id, target_id, detail)
        return self._original_notify(source_id, target_id, message)

    def _ping(self, source_id: str, target_id: str) -> bool:
        alive = self._original_ping(source_id, target_id)
        self._record("ping", source_id, target_id, "alive" if alive else "dead")
        return alive

    # -- reading ----------------------------------------------------------------

    @property
    def attached(self) -> bool:
        return self._attached

    def detach(self) -> None:
        """Restore the network methods this recorder wrapped.

        Nesting-safe: detaching is only legal while this recorder's
        wrappers are still the installed ones.  If another recorder
        attached on top and has not detached yet, restoring our saved
        originals would wipe its wrappers out of the chain and corrupt
        the network's methods — so that raises instead.  Detaching an
        already-detached recorder is a no-op.
        """
        if not self._attached:
            return
        if (
            self.network.rpc != self._rpc
            or self.network.notify != self._notify
            or self.network.ping != self._ping
        ):
            raise TraceAttachError(
                "cannot detach: another recorder is still attached on top "
                "of this one (detach recorders innermost-first)"
            )
        self.network.rpc = self._original_rpc
        self.network.notify = self._original_notify
        self.network.ping = self._original_ping
        self._attached = False

    def shorthand(self, kinds: Optional[Tuple[str, ...]] = None) -> List[str]:
        """Compact ``kind:source->target:detail`` lines for assertions."""
        out = []
        for event in self.events:
            if kinds is not None and event.kind not in kinds:
                continue
            out.append(
                f"{event.kind}:{event.source}->{event.target}:{event.detail}"
            )
        return out

    def transcript(self) -> str:
        return "\n".join(str(event) for event in self.events)

    def __len__(self) -> int:
        return len(self.events)
