"""A concurrent multi-transaction scheduler over the virtual clock.

The paper's experiments (§3) drive one root transaction at a time; the
throughput questions its conclusion raises — how does a compensation +
OCC stack behave *under load*? — need many in-flight transactions
interleaving over the shared :class:`~repro.sim.kernel.EventQueue`.

This module supplies that engine.  Each logical client transaction is a
:class:`TxnSpec`; the :class:`TransactionScheduler` admits specs up to a
``max_inflight`` cap (excess arrivals wait in a FIFO backlog), executes
each spec's operations as individual events spaced ``op_gap`` apart (so
concurrent transactions interleave at operation granularity), and
commits at the end.  An OCC :class:`~repro.txn.occ.ValidationConflict`
at commit is not terminal: the scheduler backs off (seeded exponential
backoff with jitter) and retries with a *fresh* transaction, up to
``max_attempts``.  Failures (a spec's ``fail_at`` knob, or an execution
error) abort and are terminal.

Everything is deterministic: arrivals, backoff jitter and workloads draw
from :class:`~repro.sim.rng.SeededRng` streams, and all interleaving is
decided by the event queue's (time, sequence) order — two runs with the
same seed produce byte-identical metrics and span trees.

Per-transaction accounting lands in the shared metrics collector:

* counters ``sched_admitted`` / ``sched_queued`` / ``sched_retries`` /
  ``sched_committed`` / ``sched_aborted_conflict`` /
  ``sched_aborted_failure``;
* histograms ``txn_latency`` (arrival → commit, committed only),
  ``retries`` (per finished transaction) and ``inflight`` (sampled at
  every admission/completion transition).

Span shape: each logical client transaction owns one detached
``client`` span; every attempt's transaction span nests under it via
``begin_transaction(parent_span=...)`` — so a retried conflict shows up
as *sibling* attempt spans under one client span.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import PeerDisconnected, ReproError
from repro.obs.spans import Span
from repro.p2p.network import SimNetwork
from repro.query.ast import UpdateAction
from repro.sim.rng import SeededRng
from repro.txn.occ import ValidationConflict


@dataclass(frozen=True)
class InvokeOp:
    """A remote service invocation as one scheduled operation.

    Local operations are update actions; an ``InvokeOp`` instead calls
    ``method_name`` on ``target_peer`` under the transaction (enlisting
    the provider — and whatever it delegates to — in the invocation
    tree).  ``params`` accepts a dict and is normalized to a sorted
    tuple of pairs so specs stay hashable and frozen.
    """

    target_peer: str
    method_name: str
    params: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "params", tuple(sorted(dict(self.params).items()))
        )

    @property
    def params_dict(self) -> Dict[str, str]:
        return dict(self.params)


#: One operation of a spec: a parsed action, its XML text, or a remote
#: invocation.
Operation = Union[UpdateAction, str, InvokeOp]

#: Terminal outcomes a transaction can reach under the scheduler.
COMMITTED = "committed"
ABORTED_CONFLICT = "aborted_conflict"
ABORTED_FAILURE = "aborted_failure"


@dataclass(frozen=True)
class TxnSpec:
    """One logical client transaction, ready to be scheduled.

    ``operations`` run in order on the origin peer; ``fail_at`` (an
    operation index) makes the client abandon the transaction right
    before that operation — the injected-failure knob of the throughput
    experiments.
    """

    label: str
    origin: str
    operations: Tuple[Operation, ...]
    fail_at: Optional[int] = None

    def __post_init__(self) -> None:
        # Tolerate lists at construction; store a tuple (frozen value).
        object.__setattr__(self, "operations", tuple(self.operations))


@dataclass(frozen=True)
class TxnResult:
    """The terminal accounting record of one scheduled transaction."""

    label: str
    status: str  # committed | aborted_conflict | aborted_failure
    attempts: int
    arrival_time: float
    finish_time: float
    txn_ids: Tuple[str, ...] = ()

    @property
    def latency(self) -> float:
        return self.finish_time - self.arrival_time

    @property
    def committed(self) -> bool:
        return self.status == COMMITTED

    @property
    def retries(self) -> int:
        return self.attempts - 1


@dataclass
class _TxnState:
    """Mutable bookkeeping for one in-flight logical transaction."""

    spec: TxnSpec
    arrival_time: float
    attempt: int = 0
    txn_id: str = ""
    txn_ids: List[str] = field(default_factory=list)
    client_span: Optional[Span] = None
    on_complete: Optional[Callable[[TxnResult], None]] = None


class TransactionScheduler:
    """Interleaves many root transactions over one simulated network.

    Usage::

        scheduler = TransactionScheduler(network, max_inflight=4, seed=7)
        for spec in specs:
            scheduler.submit(spec, at_time=arrival)
        results = scheduler.run()

    or, closed-loop::

        scheduler.run_closed_loop(
            clients=4, txns_per_client=10, make_spec=..., think_time=0.05
        )
    """

    def __init__(
        self,
        network: SimNetwork,
        max_inflight: int = 4,
        max_attempts: int = 5,
        op_gap: float = 0.01,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        seed: int = 0,
    ):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.network = network
        self.max_inflight = max_inflight
        self.max_attempts = max_attempts
        #: Virtual seconds between consecutive operations of one txn —
        #: the interleaving granularity of the engine.
        self.op_gap = op_gap
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.rng = SeededRng(seed)
        self.results: List[TxnResult] = []
        self._inflight = 0
        self._backlog: List[_TxnState] = []
        #: Transactions :meth:`run` must wait for.  Closed-loop mode
        #: pre-counts its whole plan here, because its later submissions
        #: only materialize as earlier transactions finish.
        self._expected = 0

    # -- arrival generation --------------------------------------------

    def submit(
        self,
        spec: TxnSpec,
        at_time: float = 0.0,
        on_complete: Optional[Callable[[TxnResult], None]] = None,
    ) -> None:
        """Schedule *spec* to arrive at absolute virtual time *at_time*."""
        self._expected += 1
        self._enqueue(spec, at_time, on_complete)

    def _enqueue(
        self,
        spec: TxnSpec,
        at_time: float,
        on_complete: Optional[Callable[[TxnResult], None]] = None,
    ) -> None:
        state = _TxnState(spec, at_time, on_complete=on_complete)
        self.network.events.schedule_at(at_time, lambda: self._arrive(state))

    def submit_open_loop(
        self, specs: Sequence[TxnSpec], rate: float, start: float = 0.0
    ) -> List[float]:
        """Open-loop (Poisson) arrivals: one spec per exponential gap.

        Returns the arrival times (useful for asserting determinism).
        """
        from repro.sim.workload import poisson_arrival_times

        times = poisson_arrival_times(self.rng, rate, len(specs), start=start)
        for spec, at_time in zip(specs, times):
            self.submit(spec, at_time)
        return times

    def run_closed_loop(
        self,
        clients: int,
        txns_per_client: int,
        make_spec: Callable[[int, int], TxnSpec],
        think_time: float = 0.0,
    ) -> None:
        """Closed-loop load: *clients* clients, each running
        *txns_per_client* transactions back-to-back with an exponential
        think time (mean *think_time*) between completions and the next
        submission.  ``make_spec(client_index, txn_index)`` builds each
        transaction.  Call :meth:`run` afterwards to execute.
        """
        # The whole plan counts up-front: later submissions materialize
        # lazily (each client submits txn i+1 only once txn i finished),
        # so run() must not stop at the first momentary results==expected.
        self._expected += clients * txns_per_client

        def think(mean: float) -> float:
            if mean <= 0:
                return 0.0
            return self.rng.expovariate(1.0 / mean)

        def next_txn(client: int, index: int) -> None:
            if index >= txns_per_client:
                return
            spec = make_spec(client, index)

            def done(_result: TxnResult, c: int = client, i: int = index) -> None:
                delay = think(think_time)
                self.network.events.schedule(delay, lambda: next_txn(c, i + 1))

            self._enqueue(spec, self.network.clock.now + think(think_time), done)

        for client in range(clients):
            next_txn(client, 0)

    # -- admission control ---------------------------------------------

    def _arrive(self, state: _TxnState) -> None:
        if self._inflight >= self.max_inflight:
            self._backlog.append(state)
            self.network.metrics.incr("sched_queued")
            return
        self._admit(state)

    def _admit(self, state: _TxnState) -> None:
        self._inflight += 1
        self.network.metrics.incr("sched_admitted")
        self.network.metrics.record_value("inflight", self._inflight)
        self._start_attempt(state)

    def _release_slot(self) -> None:
        self._inflight -= 1
        self.network.metrics.record_value("inflight", self._inflight)
        if self._backlog and self._inflight < self.max_inflight:
            self._admit(self._backlog.pop(0))

    # -- one attempt ----------------------------------------------------

    def _start_attempt(self, state: _TxnState) -> None:
        state.attempt += 1
        spans = self.network.spans
        if state.client_span is None:
            state.client_span = spans.start(
                f"client:{state.spec.label}",
                "client",
                peer=state.spec.origin,
                detached=True,
                label=state.spec.label,
            )
        origin = self.network.get_peer(state.spec.origin)
        transaction = origin.begin_transaction(
            parent_span=state.client_span, attempt=str(state.attempt)
        )
        state.txn_id = transaction.txn_id
        state.txn_ids.append(transaction.txn_id)
        self._schedule_op(state, 0)

    def _schedule_op(self, state: _TxnState, index: int) -> None:
        self.network.events.schedule(self.op_gap, lambda: self._run_op(state, index))

    def _run_op(self, state: _TxnState, index: int) -> None:
        spec = state.spec
        origin = self.network.get_peer(spec.origin)
        if spec.fail_at is not None and index == spec.fail_at:
            # The client abandons mid-transaction: backward recovery.
            self._abort_quietly(origin, state.txn_id)
            self._finish(state, ABORTED_FAILURE)
            return
        if index >= len(spec.operations):
            self._try_commit(state)
            return
        try:
            operation = spec.operations[index]
            if isinstance(operation, InvokeOp):
                target = self._route_invoke(operation)
                origin.invoke(
                    state.txn_id,
                    target,
                    operation.method_name,
                    operation.params_dict,
                )
            else:
                origin.submit(state.txn_id, operation)
        except ReproError:
            # Execution failed (service fault that backward-recovered to
            # the origin, a disconnected provider, update error, ...) —
            # the share is already compensated; account and finish.
            if origin.manager.has_context(state.txn_id):
                context = origin.manager.contexts[state.txn_id]
                if not context.is_finished:
                    self._abort_quietly(origin, state.txn_id)
            self._finish(state, ABORTED_FAILURE)
            return
        self._schedule_op(state, index + 1)

    def _route_invoke(self, operation: InvokeOp) -> str:
        """Pick the peer to invoke, rerouting around a dead primary.

        Legacy (unreplicated) runs are untouched: the spec's target is
        used verbatim.  When the network carries a replication manager
        and the planned target of a *replicated* service is dead at
        dispatch time, the invocation goes straight to the most-preferred
        alive holder instead of failing at the origin and waiting for
        forward recovery to rediscover the same fact.

        Shard-placed services route through the placement directory
        first: under elastic sharding the workload's static target is
        only a hint, and the directory knows where the primary lives
        *now* (possibly mid-migration).  Non-sharded methods fall
        through with ``route_service`` returning ``None``.
        """
        directory = getattr(self.network, "directory", None)
        if directory is not None:
            routed = directory.route_service(operation.method_name)
            if routed is not None:
                return routed
        replication = getattr(self.network, "replication", None)
        if replication is None:
            return operation.target_peer
        if self.network.is_alive(operation.target_peer):
            return operation.target_peer
        if not replication.is_replicated_method(operation.method_name):
            return operation.target_peer
        holder = replication.alive_service_holder(operation.method_name)
        if holder is None:
            return operation.target_peer
        self.network.metrics.incr("scheduler_reroutes")
        return holder

    @staticmethod
    def _abort_quietly(origin, txn_id: str) -> None:
        """Abort, tolerating an origin that died under chaos injection.

        A dead origin takes no actions; its share is settled later
        (``resolve_in_doubt``) when it returns.  Without this guard one
        dead origin would crash the whole scheduler run.
        """
        try:
            origin.abort(txn_id)
        except PeerDisconnected:
            pass

    def _try_commit(self, state: _TxnState) -> None:
        origin = self.network.get_peer(state.spec.origin)
        try:
            origin.commit(state.txn_id)
        except ValidationConflict:
            self._handle_conflict(state)
            return
        except PeerDisconnected:
            # The origin died right before the decision: nobody commits.
            self._finish(state, ABORTED_FAILURE)
            return
        self._finish(state, COMMITTED)

    def _handle_conflict(self, state: _TxnState) -> None:
        """First-committer-wins lost: back off and retry, or give up."""
        if state.attempt >= self.max_attempts:
            self._finish(state, ABORTED_CONFLICT)
            return
        self.network.metrics.incr("sched_retries")
        # Exponential backoff with seeded jitter; the admission slot is
        # held through the backoff (the client is still "in the system").
        delay = (
            self.backoff_base
            * (self.backoff_factor ** (state.attempt - 1))
            * (0.5 + self.rng.random())
        )
        self.network.events.schedule(delay, lambda: self._start_attempt(state))

    # -- completion -----------------------------------------------------

    def _finish(self, state: _TxnState, status: str) -> None:
        now = self.network.clock.now
        result = TxnResult(
            label=state.spec.label,
            status=status,
            attempts=state.attempt,
            arrival_time=state.arrival_time,
            finish_time=now,
            txn_ids=tuple(state.txn_ids),
        )
        self.results.append(result)
        metrics = self.network.metrics
        metrics.incr(f"sched_{status}")
        metrics.record_value("retries", result.retries)
        if status == COMMITTED:
            metrics.record_value("txn_latency", result.latency)
        if state.client_span is not None:
            self.network.spans.end(state.client_span, status=status)
        if state.on_complete is not None:
            state.on_complete(result)
        self._release_slot()

    # -- driving --------------------------------------------------------

    def run(self, max_events: int = 1_000_000) -> List[TxnResult]:
        """Step the event queue until every submitted txn finished.

        Uses the kernel's step-driven primitive so in-flight transactions
        interleave one event at a time, deterministically.
        """
        steps = 0
        while len(self.results) < self._expected:
            if not self.network.events.step():
                raise RuntimeError(
                    f"event queue drained with {self._expected - len(self.results)}"
                    " transactions unfinished"
                )
            steps += 1
            if steps >= max_events:
                raise RuntimeError(f"scheduler storm: more than {max_events} events")
        return list(self.results)

    # -- inspection -----------------------------------------------------

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def backlog_depth(self) -> int:
        return len(self._backlog)

    def outcome_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for result in self.results:
            out[result.status] = out.get(result.status, 0) + 1
        return out
