"""Experiment harness: runs parameter sweeps and prints result tables.

The paper has no quantitative tables (see DESIGN.md); the harness prints
the derived experiment tables EXPERIMENTS.md records, one row per
parameter point, with a fixed column layout so bench output is diffable
across runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs.export import stable_json, write_json_artifact


@dataclass
class ExperimentTable:
    """An ordered collection of result rows with aligned text rendering."""

    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ValueError(f"unknown columns: {sorted(unknown)}")
        for name, value in values.items():
            # Non-finite floats must never reach a row: they would
            # serialize as invalid JSON (Infinity/NaN).  Producers report
            # absent measurements as None (rendered as a dash).
            if isinstance(value, float) and not math.isfinite(value):
                raise ValueError(
                    f"non-finite value {value!r} for column {name!r}; "
                    "use None for absent measurements"
                )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    @staticmethod
    def _format(value: Any) -> str:
        if value is None:
            # Absent measurements (e.g. no detection event) render as a
            # dash; they are exported as JSON null, never Infinity.
            return "-"
        if isinstance(value, float):
            # add_row rejects non-finite floats, so plain formatting is
            # exhaustive here.
            return f"{value:.4g}"
        return str(value)

    def render(self) -> str:
        header = list(self.columns)
        body = [[self._format(row.get(col, "")) for col in header] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for row in body:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.render())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def to_json(self) -> str:
        """Strict JSON (sorted keys, non-finite floats → null)."""
        return stable_json(self.to_dict())

    def write_json(self, path: str) -> str:
        """Write the table as a JSON artifact; returns *path*."""
        return write_json_artifact(path, self.to_dict())


def sweep(
    title: str,
    columns: Sequence[str],
    points: Sequence[Any],
    run_point: Callable[[Any], Dict[str, Any]],
) -> ExperimentTable:
    """Run *run_point* for every parameter point and collect the table."""
    table = ExperimentTable(title, columns)
    for point in points:
        table.add_row(**run_point(point))
    return table


def ratio(numerator: float, denominator: float) -> Optional[float]:
    """A safe ratio for table cells (0/0 → 1.0, x/0 → None).

    ``None`` (an undefined ratio) renders as a dash and exports as JSON
    null — never ``inf``, which :meth:`ExperimentTable.add_row` rejects.
    """
    if denominator == 0:
        return 1.0 if numerator == 0 else None
    return numerator / denominator


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean, NaN-tolerant; 0.0 for empty input."""
    values = [v for v in values if v == v]  # drop NaN
    return sum(values) / len(values) if values else 0.0
