"""Canonical scenarios from the paper.

* :data:`ATPLIST_XML` — the §3.1 running example (ATPList.xml with the
  embedded ``getPoints`` and ``getGrandSlamsWonbyYear`` calls).
* :func:`build_atplist_scenario` — a 3-peer deployment of it: AP1 hosts
  the document; AP2/AP3 provide the two services.
* :func:`build_fig1` — Fig. 1's invocation tree
  (AP1 → {S2@AP2, S3@AP3}, AP3 → {S4@AP4, S5@AP5}, AP5 → S6@AP6).
* :func:`build_fig2` — Fig. 2's tree
  ([AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]).

Every peer in the figure scenarios hosts a small document and a
delegating service that inserts a marker entry locally before invoking
its children — so each peer has real work to compensate, and "number of
XML nodes affected" is a meaningful cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.axml.document import AXMLDocument
from repro.p2p.failure import FailureInjector
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.p2p.replication import ReplicationManager
from repro.services.descriptor import ParamSpec, ServiceDescriptor
from repro.services.service import DelegatingService, FunctionService
from repro.sim.metrics import MetricsCollector

#: The paper's running example (§3.1), verbatim in structure: two
#: embedded calls with previous results, one replace-mode, one merge-mode.
ATPLIST_XML = """<?xml version="1.0" encoding="UTF-8"?>
<ATPList date="18042005">
  <player rank="1">
    <name>
      <firstname>Roger</firstname>
      <lastname>Federer</lastname>
    </name>
    <citizenship>Swiss</citizenship>
    <axml:sc mode="replace" serviceNameSpace="getPoints"
             serviceURL="axml://AP2" methodName="getPoints">
      <axml:params>
        <axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param>
      </axml:params>
      <points>475</points>
    </axml:sc>
    <axml:sc mode="merge" serviceNameSpace="getGrandSlamsWonbyYear"
             serviceURL="axml://AP3" methodName="getGrandSlamsWonbyYear">
      <axml:params>
        <axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param>
        <axml:param name="year"><axml:value>2005</axml:value></axml:param>
      </axml:params>
      <grandslamswon year="2003">A, W</grandslamswon>
      <grandslamswon year="2004">A, U</grandslamswon>
    </axml:sc>
  </player>
  <player rank="2">
    <name>
      <firstname>Rafael</firstname>
      <lastname>Nadal</lastname>
    </name>
    <citizenship>Spanish</citizenship>
  </player>
</ATPList>
"""

#: The paper's Query A (§3.1): needs grandslamswon, not points.
QUERY_A = (
    "Select p/citizenship, p/grandslamswon from p in ATPList//player "
    "where p/name/lastname = Federer;"
)

#: The paper's Query B (§3.1): needs points, not grandslamswon.
QUERY_B = (
    "Select p/citizenship, p/points from p in ATPList//player "
    "where p/name/lastname = Federer;"
)


@dataclass
class Scenario:
    """A built deployment, ready for a test/bench to drive."""

    network: SimNetwork
    injector: FailureInjector
    peers: Dict[str, AXMLPeer]
    replication: ReplicationManager
    #: invocation topology: peer → list of (child_peer, method) it calls.
    topology: Dict[str, List[Tuple[str, str]]] = field(default_factory=dict)

    @property
    def metrics(self) -> MetricsCollector:
        return self.network.metrics

    def peer(self, peer_id: str) -> AXMLPeer:
        return self.peers[peer_id]


def _base(
    hop_latency: float = 0.005,
) -> Tuple[SimNetwork, FailureInjector, ReplicationManager]:
    network = SimNetwork(hop_latency=hop_latency)
    injector = FailureInjector(network)
    replication = ReplicationManager(network)
    return network, injector, replication


# ---------------------------------------------------------------------------
# the ATPList (§3.1) scenario
# ---------------------------------------------------------------------------

def build_atplist_scenario(
    peer_independent: bool = False,
    chaining: bool = True,
    points_value: str = "890",
) -> Scenario:
    """AP1 hosts ATPList.xml; AP2 serves getPoints; AP3 serves
    getGrandSlamsWonbyYear — the §3.1 worked examples, distributed."""
    network, injector, replication = _base()
    peers: Dict[str, AXMLPeer] = {}
    for peer_id in ("AP1", "AP2", "AP3"):
        peers[peer_id] = AXMLPeer(
            peer_id,
            network,
            peer_independent=peer_independent,
            chaining=chaining,
            injector=injector,
        )
    peers["AP1"].host_document(AXMLDocument.from_xml(ATPLIST_XML, name="ATPList"))
    replication.register_primary("ATPList", "AP1")

    peers["AP2"].host_service(
        FunctionService(
            ServiceDescriptor(
                "getPoints",
                kind="function",
                params=(ParamSpec("name"),),
                result_name="points",
                compensatable=False,
            ),
            body=lambda params: [f"<points>{points_value}</points>"],
        )
    )
    replication.register_service("getPoints", "AP2")

    peers["AP3"].host_service(
        FunctionService(
            ServiceDescriptor(
                "getGrandSlamsWonbyYear",
                kind="function",
                params=(ParamSpec("name"), ParamSpec("year")),
                result_name="grandslamswon",
                compensatable=False,
            ),
            body=lambda params: [
                f'<grandslamswon year="{params["year"]}">A, F</grandslamswon>'
            ],
        )
    )
    replication.register_service("getGrandSlamsWonbyYear", "AP3")
    return Scenario(network, injector, peers, replication)


# ---------------------------------------------------------------------------
# figure topologies
# ---------------------------------------------------------------------------

#: Fig. 1 (§3.2): AP1 invokes S2@AP2 and S3@AP3; processing S3, AP3
#: invokes S4@AP4 and S5@AP5; processing S5, AP5 invokes S6@AP6.
FIG1_TOPOLOGY: Dict[str, List[Tuple[str, str]]] = {
    "AP1": [("AP2", "S2"), ("AP3", "S3")],
    "AP3": [("AP4", "S4"), ("AP5", "S5")],
    "AP5": [("AP6", "S6")],
}

#: Fig. 2 (§3.3): [AP1* -> AP2 -> [AP3 -> AP6] || [AP4 -> AP5]].
FIG2_TOPOLOGY: Dict[str, List[Tuple[str, str]]] = {
    "AP1": [("AP2", "S2")],
    "AP2": [("AP3", "S3"), ("AP4", "S4")],
    "AP3": [("AP6", "S6")],
    "AP4": [("AP5", "S5")],
}


def _marker_action(peer_id: str) -> str:
    """The local work of each figure service: insert a marker entry."""
    return (
        f'<action type="insert"><data><entry by="{peer_id}"/></data>'
        f"<location>Select d from d in D{peer_id[2:]}//items;</location></action>"
    )


def _peer_document(peer_id: str) -> str:
    index = peer_id[2:]
    return f"<D{index}><items/></D{index}>"


def build_topology(
    topology: Dict[str, List[Tuple[str, str]]],
    super_peers: Sequence[str] = ("AP1",),
    peer_independent: bool = False,
    chaining: bool = True,
    chain_scope: str = "immediate",
    parent_watch_interval: Optional[float] = None,
    hop_latency: float = 0.005,
    extra_peers: Sequence[str] = (),
) -> Scenario:
    """Build a scenario for an arbitrary invocation topology.

    Every mentioned peer gets a document ``D<i>`` and a service ``S<i>``
    (a :class:`DelegatingService` doing local work, then invoking its
    children in topology order).  ``extra_peers`` creates idle peers
    (replacement/replica targets for recovery experiments).
    """
    network, injector, replication = _base(hop_latency)
    peer_ids: List[str] = []
    for parent, children in topology.items():
        if parent not in peer_ids:
            peer_ids.append(parent)
        for child, _ in children:
            if child not in peer_ids:
                peer_ids.append(child)
    for extra in extra_peers:
        if extra not in peer_ids:
            peer_ids.append(extra)

    peers: Dict[str, AXMLPeer] = {}
    for peer_id in peer_ids:
        peers[peer_id] = AXMLPeer(
            peer_id,
            network,
            super_peer=peer_id in super_peers,
            peer_independent=peer_independent,
            chaining=chaining,
            chain_scope=chain_scope,
            parent_watch_interval=parent_watch_interval,
            injector=injector,
        )
        document = AXMLDocument.from_xml(_peer_document(peer_id), name=f"D{peer_id[2:]}")
        peers[peer_id].host_document(document)
        replication.register_primary(document.name, peer_id)

    for peer_id in peer_ids:
        method = f"S{peer_id[2:]}"
        delegations = topology.get(peer_id, [])
        service = DelegatingService(
            ServiceDescriptor(
                method,
                kind="delegating",
                target_document=f"D{peer_id[2:]}",
                result_name="entry",
            ),
            delegations=delegations,
            local_action_template=_marker_action(peer_id),
            extra_fragments=(f'<done by="{peer_id}" method="{method}"/>',),
        )
        peers[peer_id].host_service(service)
        replication.register_service(method, peer_id)
    return Scenario(network, injector, peers, replication, dict(topology))


def build_fig1(**kwargs) -> Scenario:
    """The Fig. 1 deployment (6 peers, nested invocations)."""
    return build_topology(FIG1_TOPOLOGY, **kwargs)


def build_fig2(**kwargs) -> Scenario:
    """The Fig. 2 deployment (AP1 is a super peer, per the paper's chain)."""
    kwargs.setdefault("super_peers", ("AP1",))
    return build_topology(FIG2_TOPOLOGY, **kwargs)


def run_root_transaction(scenario: Scenario, root: str = "AP1"):
    """Begin a transaction at *root* and fire its topology invocations.

    Returns ``(transaction, error)`` — *error* is the exception that
    reached the origin when recovery ended backward, else None.
    """
    origin = scenario.peer(root)
    transaction = origin.begin_transaction()
    error = None
    try:
        for child, method in scenario.topology.get(root, []):
            origin.invoke(transaction.txn_id, child, method, {})
    except Exception as exc:  # noqa: BLE001 - scenario driver reports it
        error = exc
    return transaction, error
