"""Canonical scenarios from the paper.

* :data:`ATPLIST_XML` — the §3.1 running example (ATPList.xml with the
  embedded ``getPoints`` and ``getGrandSlamsWonbyYear`` calls).
* :func:`build_atplist_scenario` — a 3-peer deployment of it: AP1 hosts
  the document; AP2/AP3 provide the two services.
* :func:`build_fig1` — Fig. 1's invocation tree
  (AP1 → {S2@AP2, S3@AP3}, AP3 → {S4@AP4, S5@AP5}, AP5 → S6@AP6).
* :func:`build_fig2` — Fig. 2's tree
  ([AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]]).

Every peer in the figure scenarios hosts a small document and a
delegating service that inserts a marker entry locally before invoking
its children — so each peer has real work to compensate, and "number of
XML nodes affected" is a meaningful cost.

The ``build_*`` functions and ``run_root_transaction`` are **deprecated
shims**: construction now lives behind the :mod:`repro.api` facade
(:class:`~repro.api.Cluster`), and these delegate to it with a
``DeprecationWarning``.  The scenario *data* (ATPLIST_XML, the queries,
the figure topologies) remains canonical here.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.p2p.failure import FailureInjector
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.p2p.replication import ReplicationManager
from repro.sim.metrics import MetricsCollector

#: The paper's running example (§3.1), verbatim in structure: two
#: embedded calls with previous results, one replace-mode, one merge-mode.
ATPLIST_XML = """<?xml version="1.0" encoding="UTF-8"?>
<ATPList date="18042005">
  <player rank="1">
    <name>
      <firstname>Roger</firstname>
      <lastname>Federer</lastname>
    </name>
    <citizenship>Swiss</citizenship>
    <axml:sc mode="replace" serviceNameSpace="getPoints"
             serviceURL="axml://AP2" methodName="getPoints">
      <axml:params>
        <axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param>
      </axml:params>
      <points>475</points>
    </axml:sc>
    <axml:sc mode="merge" serviceNameSpace="getGrandSlamsWonbyYear"
             serviceURL="axml://AP3" methodName="getGrandSlamsWonbyYear">
      <axml:params>
        <axml:param name="name"><axml:value>Roger Federer</axml:value></axml:param>
        <axml:param name="year"><axml:value>2005</axml:value></axml:param>
      </axml:params>
      <grandslamswon year="2003">A, W</grandslamswon>
      <grandslamswon year="2004">A, U</grandslamswon>
    </axml:sc>
  </player>
  <player rank="2">
    <name>
      <firstname>Rafael</firstname>
      <lastname>Nadal</lastname>
    </name>
    <citizenship>Spanish</citizenship>
  </player>
</ATPList>
"""

#: The paper's Query A (§3.1): needs grandslamswon, not points.
QUERY_A = (
    "Select p/citizenship, p/grandslamswon from p in ATPList//player "
    "where p/name/lastname = Federer;"
)

#: The paper's Query B (§3.1): needs points, not grandslamswon.
QUERY_B = (
    "Select p/citizenship, p/points from p in ATPList//player "
    "where p/name/lastname = Federer;"
)


@dataclass
class Scenario:
    """A built deployment, ready for a test/bench to drive."""

    network: SimNetwork
    injector: FailureInjector
    peers: Dict[str, AXMLPeer]
    replication: ReplicationManager
    #: invocation topology: peer → list of (child_peer, method) it calls.
    topology: Dict[str, List[Tuple[str, str]]] = field(default_factory=dict)

    @property
    def metrics(self) -> MetricsCollector:
        return self.network.metrics

    def peer(self, peer_id: str) -> AXMLPeer:
        return self.peers[peer_id]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} (the repro.api facade) instead",
        DeprecationWarning,
        stacklevel=3,
    )


# ---------------------------------------------------------------------------
# the ATPList (§3.1) scenario
# ---------------------------------------------------------------------------

def build_atplist_scenario(
    peer_independent: bool = False,
    chaining: bool = True,
    points_value: str = "890",
) -> Scenario:
    """Deprecated shim: AP1 hosts ATPList.xml; AP2 serves getPoints; AP3
    serves getGrandSlamsWonbyYear.  Use :meth:`repro.api.Cluster.atplist`."""
    from repro.api import Cluster

    _deprecated("build_atplist_scenario()", "Cluster.atplist()")
    return Cluster.atplist(
        peer_independent=peer_independent,
        chaining=chaining,
        points_value=points_value,
    ).as_scenario()


# ---------------------------------------------------------------------------
# figure topologies
# ---------------------------------------------------------------------------

#: Fig. 1 (§3.2): AP1 invokes S2@AP2 and S3@AP3; processing S3, AP3
#: invokes S4@AP4 and S5@AP5; processing S5, AP5 invokes S6@AP6.
FIG1_TOPOLOGY: Dict[str, List[Tuple[str, str]]] = {
    "AP1": [("AP2", "S2"), ("AP3", "S3")],
    "AP3": [("AP4", "S4"), ("AP5", "S5")],
    "AP5": [("AP6", "S6")],
}

#: Fig. 2 (§3.3): [AP1* -> AP2 -> [AP3 -> AP6] || [AP4 -> AP5]].
FIG2_TOPOLOGY: Dict[str, List[Tuple[str, str]]] = {
    "AP1": [("AP2", "S2")],
    "AP2": [("AP3", "S3"), ("AP4", "S4")],
    "AP3": [("AP6", "S6")],
    "AP4": [("AP5", "S5")],
}


def _marker_action(peer_id: str) -> str:
    """The local work of each figure service: insert a marker entry."""
    return (
        f'<action type="insert"><data><entry by="{peer_id}"/></data>'
        f"<location>Select d from d in D{peer_id[2:]}//items;</location></action>"
    )


def _peer_document(peer_id: str) -> str:
    index = peer_id[2:]
    return f"<D{index}><items/></D{index}>"


def build_topology(
    topology: Dict[str, List[Tuple[str, str]]],
    super_peers: Sequence[str] = ("AP1",),
    peer_independent: bool = False,
    chaining: bool = True,
    chain_scope: str = "immediate",
    parent_watch_interval: Optional[float] = None,
    hop_latency: float = 0.005,
    extra_peers: Sequence[str] = (),
) -> Scenario:
    """Deprecated shim: build a scenario for an arbitrary invocation
    topology.  Use :meth:`repro.api.Cluster.from_topology`."""
    from repro.api import Cluster

    _deprecated("build_topology()", "Cluster.from_topology()")
    return Cluster.from_topology(
        topology,
        super_peers=super_peers,
        peer_independent=peer_independent,
        chaining=chaining,
        chain_scope=chain_scope,
        parent_watch_interval=parent_watch_interval,
        hop_latency=hop_latency,
        extra_peers=extra_peers,
    ).as_scenario()


def build_fig1(**kwargs) -> Scenario:
    """Deprecated shim: the Fig. 1 deployment (6 peers, nested
    invocations).  Use :meth:`repro.api.Cluster.fig1`."""
    from repro.api import Cluster

    _deprecated("build_fig1()", "Cluster.fig1()")
    return Cluster.fig1(**kwargs).as_scenario()


def build_fig2(**kwargs) -> Scenario:
    """Deprecated shim: the Fig. 2 deployment (AP1 is a super peer).
    Use :meth:`repro.api.Cluster.fig2`."""
    from repro.api import Cluster

    _deprecated("build_fig2()", "Cluster.fig2()")
    return Cluster.fig2(**kwargs).as_scenario()


def run_root_transaction(scenario: Scenario, root: str = "AP1"):
    """Deprecated shim: begin a transaction at *root* and fire its
    topology invocations.  Use :meth:`repro.api.Cluster.run_topology`.

    Returns ``(transaction, error)`` — *error* is the exception that
    reached the origin when recovery ended backward, else None.
    """
    from repro.api import Cluster

    _deprecated("run_root_transaction()", "Cluster.run_topology()")
    handle, error = Cluster.wrap(scenario).run_topology(root)
    return handle.txn, error
