"""Seeded randomness for simulations and workload generators.

Every experiment takes an explicit seed; nothing in the library touches
the global :mod:`random` state, so two runs with the same seed produce
byte-identical results.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


def stable_seed(seed: int, label: str) -> int:
    """Mix *label* into *seed* with a process-stable digest.

    Built on :func:`zlib.crc32`, never :func:`hash`: ``hash(str)`` is
    salted per process (``PYTHONHASHSEED``), so seeding with it silently
    breaks reproducibility across runs — every "seeded" experiment would
    draw different streams in different interpreter processes.
    """
    return (seed ^ zlib.crc32(label.encode("utf-8"))) & 0x7FFFFFFF


class SeededRng:
    """A thin, explicit wrapper around :class:`random.Random`."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self._rng.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        return self._rng.choice(items)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        return self._rng.sample(items, k)

    def shuffle(self, items: List[T]) -> None:
        self._rng.shuffle(items)

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival time with the given rate."""
        return self._rng.expovariate(rate)

    def coin(self, probability: float) -> bool:
        """True with the given probability."""
        return self._rng.random() < probability

    def fork(self, salt: int = 1) -> "SeededRng":
        """A child RNG with a derived seed (independent streams)."""
        return SeededRng(self._rng.randrange(2**31) ^ (salt * 0x9E3779B1))
