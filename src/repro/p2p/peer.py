"""The AXML peer: documents + services + the transactional protocols.

"AXML peers: Nodes where the AXML documents and services are hosted"
(§1).  On top of hosting, this class implements the paper's protocols:

* transaction submission, commit and abort (origin role);
* service execution under a transaction context (participant role),
  including the callee side of nested recovery — §3.2 steps 1–2;
* invocation with caller-side forward/backward recovery — §3.2 steps
  3–4 — and peer-independent compensation collection;
* the §3.3 disconnection cases, using the piggybacked active-peer chain
  (or the naive baseline behaviour when ``chaining=False``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.axml.document import AXMLDocument
from repro.axml.faults import parse_fault_handlers
from repro.axml.materialize import InvocationOutcome, Resolver
from repro.axml.service_call import ServiceCall
from repro.errors import (
    P2PError,
    PeerDisconnected,
    ReproError,
    ServiceFault,
    TransactionError,
)
from repro.p2p.chain import PeerChain
from repro.p2p.messages import (
    AbortMessage,
    CommitMessage,
    CompensationRequest,
    DisconnectNotice,
    InvokeRequest,
    InvokeResult,
    RedirectedResult,
    WalShipAck,
    WalShipMessage,
)
from repro.p2p.network import SimNetwork
from repro.query.ast import UpdateAction
from repro.query.parser import parse_action
from repro.services.registry import ServiceRegistry
from repro.services.service import Service, ServiceResponse
from repro.obs.spans import Span
from repro.sim.rng import SeededRng, stable_seed
from repro.txn.manager import TransactionManager
from repro.txn.modes import DurabilityPolicy, RejoinMode, coerce_durability
from repro.txn.operations import OperationOutcome
from repro.txn.recovery import (
    FaultPolicy,
    RecoveryDecision,
    attempt_forward_recovery,
    fault_name_of,
    select_policy,
)
from repro.txn.transaction import Transaction, TransactionContext, TransactionState


class AXMLPeer:
    """One node of the simulated AXML P2P system."""

    def __init__(
        self,
        peer_id: str,
        network: SimNetwork,
        super_peer: bool = False,
        peer_independent: bool = False,
        chaining: bool = True,
        chain_scope: str = "immediate",
        parent_watch_interval: Optional[float] = None,
        occ: bool = False,
        injector=None,
        seed: int = 0,
        durability: Union[None, str, DurabilityPolicy] = None,
    ):
        self.peer_id = peer_id
        self.network = network
        self.super_peer = super_peer
        #: §3.2's peer-independent compensation mode.
        self.peer_independent = peer_independent
        #: §3.3's chaining; False gives the naive baseline.
        self.chaining = chaining
        #: Notification breadth on detected disconnections: "immediate"
        #: (parent/children/siblings, the paper's protocol) or "extended"
        #: (plus grandparent/uncles/cousins — the conclusion's extension).
        self.chain_scope = chain_scope
        #: Orphan self-defense (§3.3's ping/keep-alive): a participant
        #: that finished its service keeps probing its invoker every this
        #: many simulated seconds until the commit/abort decision arrives;
        #: a dead invoker triggers local backward recovery.  This covers
        #: the case chain notices cannot: the detector's chain view never
        #: learned about a subtree that was still in flight when its root
        #: died.  ``None`` disables the watch.
        self.parent_watch_interval = parent_watch_interval
        self.injector = injector
        self.disconnected = False
        self.documents: Dict[str, AXMLDocument] = {}
        self.registry = ServiceRegistry(peer_id)
        validator = None
        if occ:
            from repro.txn.occ import OptimisticValidator

            validator = OptimisticValidator()
        self.manager = TransactionManager(
            peer_id, self.get_axml_document, validator=validator
        )
        #: Crash durability: a directory path or a
        #: :class:`~repro.txn.modes.DurabilityPolicy` enables the
        #: on-disk WAL (:mod:`repro.txn.durable_wal`); ``None`` keeps
        #: the log memory-only and peers fail by disconnecting, never
        #: crashing.  Bare strings are coerced to a policy with default
        #: knobs (PR 5 behaviour); the original value stays visible as
        #: ``self.durability`` for old call-sites.
        self.durability = durability
        self.durability_policy = coerce_durability(durability)
        self.wal = None
        if self.durability_policy is not None:
            from repro.txn.durable_wal import DurableWal

            policy = self.durability_policy
            self.wal = DurableWal(
                policy.directory,
                peer_id=peer_id,
                metrics=network.metrics,
                segment_max_frames=policy.segment_max_frames,
                batch_size=policy.wal_batch,
                flush_interval=policy.flush_interval,
                events=network.events,
                checkpoint_every=policy.checkpoint_every,
                document_source=self._snapshot_documents,
            )
            self.manager.log.sink = self.wal
        # Per-peer stream derived with a process-stable digest — never
        # hash(), whose per-process salting (PYTHONHASHSEED) would make
        # "seeded" runs irreproducible across interpreter processes.
        self.rng = SeededRng(stable_seed(seed, peer_id))
        #: Caller-side fault policies per remote method (§3.2 handlers).
        self.fault_policies: Dict[str, List[FaultPolicy]] = {}
        #: txn id → this peer's view of the active-peer chain (§3.3).
        self.chains: Dict[str, PeerChain] = {}
        #: Results redirected past a dead peer, awaiting reuse:
        #: (txn_id, method) → fragments (§3.3b).
        self.reusable_results: Dict[Tuple[str, str], List[str]] = {}
        #: Reuse fragments that arrived piggybacked on an InvokeRequest.
        self._incoming_reuse: Dict[Tuple[str, str], List[str]] = {}
        #: Completed executions of *replicated* services, for
        #: exactly-once re-delegation: (txn_id, method, params) →
        #: InvokeResult.  A parent that failed over re-runs its
        #: delegations; a child that already did the work returns its
        #: previous result instead of applying the share twice.
        self._completed_invokes: Dict[
            Tuple[str, str, Tuple[Tuple[str, str], ...]], object
        ] = {}
        #: Transactions this peer learned are doomed (disconnection
        #: notices); pending continuous work for them is wasted effort.
        self.known_doomed: Set[str] = set()
        #: txn id → remaining continuous work units (see add_pending_work).
        self._pending_work: Dict[str, List] = {}
        #: Transactions currently executing on this peer (services run
        #: synchronously, so a stack suffices).
        self._txn_stack_storage: List[str] = []
        #: txn id → the origin-side transaction span (detached root).
        self._txn_spans: Dict[str, Span] = {}
        self.manager.bind_observability(network.spans)
        network.register(self)

    # ------------------------------------------------------------------
    # hosting
    # ------------------------------------------------------------------

    def host_document(self, axml_document: AXMLDocument) -> AXMLDocument:
        """Host a document locally; it becomes query/update-able here."""
        self.documents[axml_document.name] = axml_document
        return axml_document

    def host_service(self, service: Service) -> Service:
        return self.registry.register(service)

    def get_axml_document(self, name: str) -> AXMLDocument:
        try:
            return self.documents[name]
        except KeyError:
            raise P2PError(f"peer {self.peer_id!r} does not host document {name!r}")

    def hosts_document(self, name: str) -> bool:
        return name in self.documents

    def _snapshot_documents(self) -> Dict[str, str]:
        """Serialized hosted documents, for the WAL's checkpointer."""
        return {name: doc.to_xml() for name, doc in self.documents.items()}

    def _wal_barrier(self) -> None:
        """The ``flush_on_prepare`` barrier: buffered WAL frames must be
        durable before this peer sends a message another peer acts on
        (share hand-off, invocation requests).  No-op without group
        commit or with the barrier disabled."""
        if self.wal is None:
            return
        policy = self.durability_policy
        if policy is not None and not policy.flush_on_prepare:
            return
        self.wal.flush()

    def set_fault_policy(
        self, method_name: str, policies: Sequence[FaultPolicy]
    ) -> None:
        """Caller-side handlers for invocations of *method_name*."""
        self.fault_policies[method_name] = list(policies)

    # ------------------------------------------------------------------
    # ServiceHost protocol (what hosted services may ask of us)
    # ------------------------------------------------------------------

    def random(self) -> float:
        return self.rng.random()

    def record_changes(self, records, document_name: str, action_xml: str) -> None:
        """ServiceHost hook: log tree changes as the service makes them."""
        txn_id = self._current_txn()
        if txn_id is None or not records:
            return
        self.manager.record_service_changes(
            txn_id,
            document_name,
            action_xml=action_xml,
            records=records,
            timestamp=self.network.clock.now,
        )

    def materialization_resolver(self) -> Optional[Resolver]:
        """Resolver for embedded service calls in hosted documents.

        Local calls (``serviceURL`` empty or naming this peer) execute
        in-process; remote calls go through :meth:`invoke` under the
        current transaction, with any ``axml:catch`` handlers on the sc
        element adapted to caller-side fault policies.
        """
        txn_id = self._current_txn()
        if txn_id is None:
            return None

        def resolve(call: ServiceCall, params: Dict[str, str]) -> InvocationOutcome:
            target = call.peer_hint
            policies = [
                FaultPolicy.from_handler(h)
                for h in parse_fault_handlers(call.element)
            ]
            if target in ("", self.peer_id):
                response = self._execute_local_service(
                    txn_id, call.method_name, params
                )
                return InvocationOutcome(
                    response.fragments, provider_peer=self.peer_id
                )
            fragments = self.invoke(
                txn_id, target, call.method_name, params, policies=policies or None
            )
            return InvocationOutcome(fragments, provider_peer=target)

        return resolve

    def invoke_remote(
        self, target_peer: str, method_name: str, params: Dict[str, str]
    ) -> List[str]:
        """ServiceHost hook used by delegating services mid-execution."""
        txn_id = self._current_txn()
        if txn_id is None:
            raise TransactionError(
                f"peer {self.peer_id!r} invoked {method_name!r} outside a transaction"
            )
        reuse_key = (txn_id, method_name)
        if reuse_key in self._incoming_reuse:
            # §3.3(b): the invoker passed us a dead peer's already
            # materialized results; reuse instead of re-invoking.
            fragments = self._incoming_reuse.pop(reuse_key)
            self.network.metrics.record_reused_invocation()
            return fragments
        return self.invoke(txn_id, target_peer, method_name, params)

    def _current_txn(self) -> Optional[str]:
        return self._txn_stack[-1] if self._txn_stack else None

    @property
    def _txn_stack(self) -> List[str]:
        return self._txn_stack_storage

    # ------------------------------------------------------------------
    # origin role: begin / submit / invoke / commit / abort
    # ------------------------------------------------------------------

    def begin_transaction(
        self, parent_span: Optional[Span] = None, **span_attrs: str
    ) -> Transaction:
        """Begin a transaction with this peer as origin (§3.2).

        ``parent_span`` nests the transaction span under a caller-owned
        span — the scheduler uses this to group retry attempts of one
        logical client transaction as siblings; ``span_attrs`` (e.g.
        ``attempt="2"``) are attached to the transaction span.
        """
        transaction = Transaction.begin(self.peer_id)
        self.manager.begin(transaction)
        self.chains[transaction.txn_id] = PeerChain(self.peer_id, self.super_peer)
        # The transaction span is the detached root of this txn's span
        # tree; invocations outside any open span attach themselves here.
        self._txn_spans[transaction.txn_id] = self.network.spans.start(
            f"txn:{transaction.txn_id}",
            "transaction",
            peer=self.peer_id,
            txn_id=transaction.txn_id,
            parent=parent_span,
            detached=True,
            **span_attrs,
        )
        return transaction

    def _end_txn_span(self, txn_id: str, status: str) -> None:
        span = self._txn_spans.pop(txn_id, None)
        if span is not None:
            self.network.spans.end(span, status=status)

    def _exception_status(self, exc: BaseException) -> str:
        if isinstance(exc, PeerDisconnected):
            return "disconnected"
        if isinstance(exc, ServiceFault):
            return "fault"
        return "error"

    def submit(
        self,
        txn_id: str,
        action,
        document_name: Optional[str] = None,
        evaluation: str = "lazy",
    ) -> OperationOutcome:
        """Execute one local operation under the transaction.

        ``action`` is an :class:`UpdateAction` or its XML text.  Queries
        lazily materialize embedded calls — possibly invoking remote
        peers, which enlists them in the transaction.
        """
        self._check_alive()
        if isinstance(action, str):
            action = parse_action(action)
        document_name = document_name or action.location.document_name
        self._txn_stack.append(txn_id)
        try:
            outcome = self.manager.execute(
                txn_id,
                action,
                document_name,
                resolver=self.materialization_resolver(),
                evaluation=evaluation,
                timestamp=self.network.clock.now,
            )
        finally:
            self._txn_stack.pop()
        self.network.metrics.record_forward_cost(outcome.nodes_affected)
        return outcome

    def invoke(
        self,
        txn_id: str,
        target_peer: str,
        method_name: str,
        params: Optional[Dict[str, str]] = None,
        policies: Optional[Sequence[FaultPolicy]] = None,
        reused_fragments: Optional[Dict[str, List[str]]] = None,
    ) -> List[str]:
        """Invoke a service on another peer under the transaction.

        Implements the caller side of nested recovery (§3.2): on failure,
        try the fault policies (forward recovery — retry, replica,
        absorb, hook); if unhandled, perform backward recovery (abort the
        local share, send "Abort T" to other invoked peers) and re-raise
        so the failure propagates toward the origin.
        """
        self._check_alive()
        params = dict(params or {})
        directory = getattr(self.network, "directory", None)
        if directory is not None:
            # Shard-placed methods follow the placement directory, not
            # the (possibly stale) static target — delegations written
            # against the build-time topology keep working after a live
            # migration moves the primary.
            routed = directory.route_service(method_name)
            if routed is not None:
                target_peer = routed
        context = self.manager.context(txn_id)
        context.require_active()
        spans = self.network.spans
        span = spans.start(
            f"invoke:{method_name}",
            "invoke",
            peer=self.peer_id,
            txn_id=txn_id,
            parent=spans.current() or self._txn_spans.get(txn_id),
            target=target_peer,
        )
        status = "ok"
        try:
            edge = context.record_invocation(target_peer, method_name)
            chain = self.chains.get(txn_id)
            if chain is not None and self.chaining and not chain.contains(target_peer):
                chain.add_invocation(
                    self.peer_id, target_peer, self._peer_is_super(target_peer)
                )
            reuse = dict(reused_fragments or {})
            stored = self.reusable_results.pop((txn_id, method_name), None)
            if stored is not None:
                # We hold redirected results for this very method: no need to
                # re-invoke at all (§3.3b reuse at the recovering peer).
                self.network.metrics.record_reused_invocation()
                edge.completed = True
                status = "reused"
                return stored
            request = InvokeRequest(
                txn_id=txn_id,
                origin_peer=context.transaction.origin_peer,
                sender=self.peer_id,
                method_name=method_name,
                params=params,
                chain_text=chain.to_text() if (chain is not None and self.chaining) else "",
                reused_fragments=reuse,
            )
            self.network.metrics.record_invocation()
            self._wal_barrier()
            try:
                result = self.network.rpc(self.peer_id, target_peer, request)
            except (ServiceFault, PeerDisconnected) as exc:
                if isinstance(exc, PeerDisconnected) and exc.peer_id == self.peer_id:
                    raise  # we are the dead one; nothing to recover
                decision = self._try_forward_recovery(
                    txn_id, target_peer, method_name, params, exc, policies
                )
                if decision.handled:
                    edge.completed = True
                    self.network.metrics.incr("forward_recoveries")
                    if decision.used_alternative:
                        self.network.metrics.incr("replica_retries")
                    status = "recovered"
                    return decision.fragments
                edge.failed = True
                # The failed peer already aborted its whole share
                # (exclude it, §3.2) — unless partial recovery kept an
                # enclosing co-located share alive there, in which case
                # only this Abort notice can settle it.
                exclude = (
                    "" if getattr(exc, "share_retained", False) else target_peer
                )
                self._backward_recover(txn_id, exclude_peer=exclude)
                raise
            edge.completed = True
            for provider, plan_xml in result.compensations:
                context.record_compensation_definition(provider, plan_xml)
            if result.chain_text and chain is not None and self.chaining:
                # Fold the callee's deeper invocations into our view so later
                # siblings receive the complete active-peer list (§3.3).
                chain.merge(PeerChain.from_text(result.chain_text))
            if chain is not None and self.chaining:
                self.network.metrics.record_value("chain_length", len(chain.peers()))
            self.network.metrics.record_forward_cost(result.nodes_affected)
            return result.fragments
        except BaseException as exc:
            status = self._exception_status(exc)
            raise
        finally:
            spans.end(span, status=status)

    def commit(self, txn_id: str) -> None:
        """Origin-side commit: release local state, tell participants.

        Under OCC a commit may fail validation.  The conflict is
        *surfaced*, not swallowed: the local share is already aborted and
        compensated by the manager, the other participants are told to
        abort theirs, the transaction is accounted as
        ``aborted_conflict``, and the :class:`ValidationConflict`
        re-raises so the caller (e.g. the scheduler) can back off and
        retry with a fresh transaction.
        """
        from repro.txn.occ import ValidationConflict

        self._check_alive()
        context = self.manager.context(txn_id)
        if not context.is_origin:
            raise TransactionError(
                f"peer {self.peer_id!r} is not the origin of {txn_id!r}"
            )
        try:
            self._commit_local_and_ship(txn_id)
        except ValidationConflict:
            chain = self.chains.get(txn_id)
            for peer_id in (
                [p for p in chain.peers() if p != self.peer_id] if chain else []
            ):
                self.network.notify(
                    self.peer_id, peer_id, AbortMessage(txn_id, self.peer_id)
                )
            self._cancel_pending_work(txn_id)
            self.network.metrics.incr("occ_conflicts")
            self.network.metrics.record_txn_outcome(txn_id, "aborted_conflict")
            self._end_txn_span(txn_id, "conflict")
            raise
        chain = self.chains.get(txn_id)
        participants = (
            [p for p in chain.peers() if p != self.peer_id] if chain else []
        )
        for peer_id in participants:
            self.network.notify(
                self.peer_id, peer_id, CommitMessage(txn_id, self.peer_id)
            )
        self._cancel_pending_work(txn_id)
        self.network.metrics.record_txn_outcome(txn_id, "committed")
        self._end_txn_span(txn_id, "committed")

    def _commit_local_and_ship(self, txn_id: str) -> None:
        """Commit the local share, then stream its committed WAL entries
        to every replica holder (WAL shipping; docs/REPLICATION.md).

        Entries are captured *before* ``commit_local`` because its
        truncate tombstone drops them from the in-memory log — and the
        tombstone's flush barrier also makes them durable on disk first,
        so everything shipped already satisfies the write-ahead rule.
        Nothing ships when the commit raises (OCC conflict) or when the
        share was already settled.
        """
        replication = getattr(self.network, "replication", None)
        entries = ()
        if (
            replication is not None
            and replication.has_replicas()
            and self.manager.has_context(txn_id)
            and not self.manager.contexts[txn_id].is_finished
        ):
            entries = self.manager.log.entries_for(txn_id)
        self.manager.commit_local(txn_id)
        if entries:
            replication.on_committed(self.peer_id, txn_id, entries)

    def abort(self, txn_id: str) -> bool:
        """Origin-initiated abort; returns True if compensation fully ran.

        Peer-dependent mode cascades "Abort T" so every participant
        compensates its own share; peer-independent mode (§3.2) executes
        the received compensating-service definitions directly, falling
        back to a replica holder when the original provider is gone.
        """
        self._check_alive()
        context = self.manager.context(txn_id)
        complete = True
        if self.peer_independent and context.received_compensations:
            complete = self._apply_peer_independent(context)
            self._drop_completed_invokes(txn_id)
            self.manager.abort_local(txn_id)
        else:
            self._backward_recover(txn_id)
            if not self.peer_independent:
                complete = self._participants_all_reached(txn_id)
        self.network.metrics.record_txn_outcome(
            txn_id, "aborted" if complete else "abort_incomplete"
        )
        self._end_txn_span(txn_id, "aborted" if complete else "abort_incomplete")
        return complete

    def _participants_all_reached(self, txn_id: str) -> bool:
        chain = self.chains.get(txn_id)
        if chain is None:
            return True
        return all(
            self.network.is_alive(p) for p in chain.peers() if p != self.peer_id
        )

    def _apply_peer_independent(self, context: TransactionContext) -> bool:
        """Send compensating definitions to providers (newest first)."""
        complete = True
        replication = getattr(self.network, "replication", None)
        for provider, plan_xml in reversed(context.received_compensations):
            message = CompensationRequest(context.txn_id, plan_xml, self.peer_id)
            if self.network.notify(self.peer_id, provider, message):
                continue
            # Provider is gone: try a replica holder of the plan's document.
            delivered = False
            if replication is not None:
                from repro.txn.compensation import CompensationPlan

                document_name = CompensationPlan.from_xml(plan_xml).document_name
                for holder in replication.holders(document_name):
                    if holder != provider and self.network.notify(
                        self.peer_id, holder, message
                    ):
                        self.network.metrics.incr("compensations_via_replica")
                        delivered = True
                        break
            if not delivered:
                self.network.metrics.incr("compensation_failures")
                complete = False
        return complete

    # ------------------------------------------------------------------
    # participant role: service execution (callee side of §3.2)
    # ------------------------------------------------------------------

    def handle_invoke(self, request: InvokeRequest) -> InvokeResult:
        """Execute a service for a remote invoker under its transaction."""
        if self.disconnected:
            raise PeerDisconnected(self.peer_id)
        injector = self.injector
        if injector is not None:
            injector.check_disconnect(self.peer_id, request.method_name, "before_execute")
            if self.disconnected:
                raise PeerDisconnected(self.peer_id)
        dedup_key = (
            request.txn_id,
            request.method_name,
            tuple(sorted(request.params.items())),
        )
        cached = self._completed_invokes.get(dedup_key)
        if cached is not None:
            # Exactly-once across failover: a parent that failed over
            # re-runs its delegations, and this peer already completed
            # this exact invocation for the same transaction.  Return
            # the previous result — the §3.3(b) "reuse, don't redo"
            # idea applied callee-side.
            self.network.metrics.incr("invocations_deduped")
            return cached
        # Snapshot what this peer already holds for the transaction: a
        # rerouted or failed-over service can land on a peer that also
        # executes one of its (transitive) delegates, and a fault in
        # this frame must then only undo THIS frame's work, not the
        # enclosing share's (see _partial_backward_recover).
        prior_seq = 0
        prior_edges = 0
        if self.manager.has_context(request.txn_id):
            enclosing = self.manager.contexts[request.txn_id]
            if not enclosing.is_finished:
                prior_edges = len(enclosing.invocations)
                prior_seq = max(
                    (e.seq for e in self.manager.log.entries_for(request.txn_id)),
                    default=0,
                )
        transaction = Transaction(request.txn_id, request.origin_peer)
        context = self.manager.begin(
            transaction, parent_peer=request.sender, service_name=request.method_name
        )
        if request.chain_text:
            self.chains[request.txn_id] = PeerChain.from_text(request.chain_text)
        for method, fragments in request.reused_fragments.items():
            self._incoming_reuse[(request.txn_id, method)] = list(fragments)
        span = self.network.spans.start(
            f"service:{request.method_name}",
            "service",
            peer=self.peer_id,
            txn_id=request.txn_id,
            sender=request.sender,
        )
        status = "ok"
        self._txn_stack.append(request.txn_id)
        try:
            if injector is not None:
                fault_name = injector.check_fault(self.peer_id, request.method_name)
                if fault_name is not None:
                    raise ServiceFault(
                        fault_name,
                        f"injected fault in {request.method_name}@{self.peer_id}",
                    )
            response = self._execute_local_service(
                request.txn_id, request.method_name, request.params
            )
            if injector is not None:
                fault_name = injector.check_fault(
                    self.peer_id, request.method_name, "after_execute"
                )
                if fault_name is not None:
                    # Fig. 1's failure shape: the peer fails *while
                    # processing* the service, after nested invocations.
                    raise ServiceFault(
                        fault_name,
                        f"injected fault in {request.method_name}@{self.peer_id}",
                    )
                injector.check_disconnect(
                    self.peer_id, request.method_name, "after_local_work"
                )
                if self.disconnected:
                    raise PeerDisconnected(self.peer_id)
            compensations = self._collect_compensations(
                request.txn_id, context, response
            )
            if injector is not None:
                injector.check_disconnect(
                    self.peer_id, request.method_name, "before_return"
                )
            if self.parent_watch_interval is not None:
                self._arm_parent_watch(request.txn_id, context)
            my_chain = self.chains.get(request.txn_id)
            # Share hand-off: the entries behind these fragments must be
            # durable before the invoker acts on the result.
            self._wal_barrier()
            result = InvokeResult(
                fragments=response.fragments,
                provider_peer=self.peer_id,
                compensations=compensations,
                nodes_affected=response.nodes_affected,
                chain_text=(
                    my_chain.to_text() if (my_chain and self.chaining) else ""
                ),
            )
            replication = getattr(self.network, "replication", None)
            if replication is not None and replication.is_replicated_method(
                request.method_name
            ):
                # Only replicated services can be legitimately re-invoked
                # (a failed-over parent re-running its delegations); for
                # them, remember the outcome for exactly-once dedup.
                self._completed_invokes[dedup_key] = result
            return result
        except ServiceFault as fault:
            # §3.2 steps 1-2, callee side: abort my share and tell the
            # peers whose services I invoked; then let the fault travel
            # back to my invoker.
            status = "fault"
            if not self.disconnected:
                if prior_seq > 0 or prior_edges > 0:
                    # This peer also holds an *enclosing* active share of
                    # the same transaction (co-located via reroute or
                    # failover): only this frame's work may be undone.
                    # The flag tells the invoker this peer still has a
                    # live share to settle if the fault goes unhandled.
                    self._partial_backward_recover(request, prior_seq, prior_edges)
                    fault.share_retained = True
                else:
                    self._backward_recover(
                        request.txn_id, exclude_peer=request.sender
                    )
            raise
        except PeerDisconnected:
            # Either I died mid-execution (do nothing — dead peers take
            # no actions) or an unrecoverable child failure already
            # triggered my backward recovery in invoke().
            status = "disconnected"
            raise
        finally:
            self._txn_stack.pop()
            self.network.spans.end(span, status=status)

    def _execute_local_service(
        self, txn_id: str, method_name: str, params: Dict[str, str]
    ) -> ServiceResponse:
        # Services log their own changes through record_changes() the
        # moment they make them (see ServiceHost), so nothing is logged
        # here — by return time the log already covers this execution.
        from repro.errors import ServiceError, ServiceNotFound, UpdateError

        try:
            service = self.registry.lookup(method_name)
            response = service.execute(params, self)
        except ServiceFault:
            raise
        except (ServiceNotFound, UpdateError, ServiceError) as exc:
            # Surface execution problems as *named faults* so the §3.2
            # machinery handles them: the callee aborts its share and the
            # caller's handlers (retry, alternative peer, …) get a shot.
            raise ServiceFault(type(exc).__name__, str(exc)) from exc
        self.network.metrics.record_forward_cost(response.nodes_affected)
        return response

    def _collect_compensations(
        self, txn_id: str, context: TransactionContext, response: ServiceResponse
    ) -> List[tuple]:
        """Own compensating definition + those gathered from children."""
        if not self.peer_independent:
            return []
        compensations: List[tuple] = list(context.received_compensations)
        context.received_compensations = []
        if response.records:
            plan_xml = self.manager.build_compensation_xml(
                txn_id, response.records, response.document_name
            )
            compensations.append((self.peer_id, plan_xml))
        return compensations

    # ------------------------------------------------------------------
    # recovery internals
    # ------------------------------------------------------------------

    def _try_forward_recovery(
        self,
        txn_id: str,
        target_peer: str,
        method_name: str,
        params: Dict[str, str],
        exc: ReproError,
        policies: Optional[Sequence[FaultPolicy]],
    ) -> RecoveryDecision:
        fault_name = fault_name_of(exc)
        available = list(policies or self.fault_policies.get(method_name, []))
        policy = select_policy(available, fault_name)
        if policy is None:
            return RecoveryDecision.unhandled()

        def reinvoke(peer: str, method: str, p: Dict[str, str]) -> List[str]:
            # Hand any redirected results we hold (§3.3b) to the retry
            # target so orphaned children's work is reused, not redone.
            reuse: Dict[str, List[str]] = {}
            for (t, reusable_method), fragments in list(self.reusable_results.items()):
                if t == txn_id:
                    reuse[reusable_method] = fragments
                    del self.reusable_results[(t, reusable_method)]
            chain = self.chains.get(txn_id)
            request = InvokeRequest(
                txn_id=txn_id,
                origin_peer=self.manager.context(txn_id).transaction.origin_peer,
                sender=self.peer_id,
                method_name=method,
                params=p,
                chain_text=chain.to_text() if (chain and self.chaining) else "",
                reused_fragments=reuse,
            )
            self.network.metrics.record_invocation()
            self._wal_barrier()
            result = self.network.rpc(self.peer_id, peer, request)
            for provider, plan_xml in result.compensations:
                self.manager.context(txn_id).record_compensation_definition(
                    provider, plan_xml
                )
            return result.fragments

        # The replication layer offers "the most-caught-up live replica"
        # as a per-retry failover target — only for services it actually
        # replicated, and only when the policy names no explicit
        # alternative (an explicit ``axml:sc`` replica always wins).
        select_alternative = None
        replication = getattr(self.network, "replication", None)
        if replication is not None and not policy.alternative_peer:
            select_alternative = replication.failover_selector(
                target_peer, method_name
            )
        decision = attempt_forward_recovery(
            policy,
            target_peer,
            method_name,
            params,
            reinvoke=reinvoke,
            wait=self.network.clock.advance,
            original_target_alive=lambda: self.network.is_alive(target_peer),
            select_alternative=select_alternative,
        )
        if (
            decision.handled
            and decision.alternative_used
            and select_alternative is not None
            and not policy.alternative_peer
        ):
            # §3.3 rewrite: route the transaction's chain around the dead
            # primary so commit/abort traffic reaches the replica that now
            # owns the share — including when the dead peer was an
            # interior node (its subtree re-parents onto the replica).
            chain = self.chains.get(txn_id)
            if chain is not None and self.chaining:
                if chain.substitute(
                    target_peer,
                    decision.alternative_used,
                    self._peer_is_super(decision.alternative_used),
                ):
                    self.network.metrics.incr("chains_rewritten")
        return decision

    def _partial_backward_recover(
        self, request: InvokeRequest, prior_seq: int, prior_edges: int
    ) -> None:
        """Backward-recover only the failed invocation's share.

        A replica reroute or failover can execute a service on a peer
        that also runs one of its delegates under the same transaction.
        The usual callee-side recovery (``_backward_recover``) aborts
        the peer's *whole* local share — which here would silently
        destroy the enclosing invocation's completed work while that
        invocation carries on and commits.  Instead: compensate only the
        log tail this frame appended (``seq > prior_seq``) and tell only
        the children this frame invoked to abort theirs.
        """
        txn_id = request.txn_id
        if not self.manager.has_context(txn_id):
            return
        context = self.manager.contexts[txn_id]
        if context.is_finished:
            return
        executed = self.manager.abort_invocation_tail(txn_id, prior_seq)
        self.network.metrics.record_value("compensation_depth", executed)
        self.network.metrics.incr("partial_aborts")
        frame_edges = context.invocations[prior_edges:]
        del context.invocations[prior_edges:]
        for peer_id in {
            e.target_peer for e in frame_edges
            if e.target_peer not in (request.sender, self.peer_id)
        }:
            self.network.notify(
                self.peer_id,
                peer_id,
                AbortMessage(txn_id, self.peer_id, request.method_name),
            )

    def _backward_recover(self, txn_id: str, exclude_peer: str = "") -> None:
        """Abort my share and notify the peers whose services I invoked.

        ``exclude_peer`` is the peer the failure came from (it has
        already recovered itself) or the parent (the re-raise informs it).
        """
        if not self.manager.has_context(txn_id):
            return
        context = self.manager.contexts[txn_id]
        if context.is_finished:
            return
        discarded = sum(1 for e in context.invocations if e.completed)
        if discarded:
            self.network.metrics.record_discarded_invocation(discarded)
        self._drop_completed_invokes(txn_id)
        executed = self.manager.abort_local(txn_id)
        self.network.metrics.record_value("compensation_depth", executed)
        self.network.metrics.incr("local_aborts")
        if context.is_origin:
            self.network.metrics.record_txn_outcome(txn_id, "aborted")
            self._end_txn_span(txn_id, "aborted")
        for peer_id in context.invoked_peers():
            if peer_id == exclude_peer:
                continue
            self.network.notify(
                self.peer_id,
                peer_id,
                AbortMessage(txn_id, self.peer_id, context.service_name or ""),
            )
        self._cancel_pending_work(txn_id)

    def _arm_parent_watch(self, txn_id: str, context: TransactionContext) -> None:
        """Probe the invoker until the commit/abort decision arrives.

        A participant whose invoker dies *after* the results were
        delivered is an in-doubt orphan: no Abort can reach it (the dead
        peer was the only one who knew about it).  The keep-alive probe
        is its §3.3 self-defense — on detecting the invoker's death it
        aborts and compensates its own share, cascading to its children.
        """
        parent = context.parent_peer
        if parent is None:
            return
        interval = self.parent_watch_interval

        def probe() -> None:
            current = self.manager.contexts.get(txn_id)
            if (
                self.disconnected
                or current is not context
                or context.is_finished
            ):
                return
            if self.network.ping(self.peer_id, parent):
                self.network.events.schedule(interval, probe)
                return
            self.known_doomed.add(txn_id)
            self._backward_recover(txn_id)
            self.network.metrics.incr("orphan_self_aborts")

        self.network.events.schedule(interval, probe)

    # ------------------------------------------------------------------
    # disconnection handling (§3.3)
    # ------------------------------------------------------------------

    def on_return_failure(self, request: InvokeRequest, result: InvokeResult) -> None:
        """§3.3(b): we finished a service but our invoker died.

        With chaining: push the results (and compensating definitions) up
        the chain to the first alive ancestor — "as soon as AP6 detects
        the disconnection of AP3, it can send the results directly to
        AP2" — trying "the next closest peer … or the closest super peer"
        when AP2 is gone too.  Without chaining: the work is discarded
        (the naive baseline's loss of effort).
        """
        txn_id = request.txn_id
        self.known_doomed.add(txn_id)
        chain = self.chains.get(txn_id)
        if not self.chaining or chain is None:
            self._discard_own_work(txn_id)
            return
        dead_parent = request.sender
        notice = DisconnectNotice(
            txn_id, dead_parent, self.peer_id, self.network.clock.now
        )
        redirect = RedirectedResult(
            txn_id,
            self.peer_id,
            dead_parent,
            request.method_name,
            list(result.fragments),
            list(result.compensations),
        )
        # Candidate receivers: ancestors of the dead parent, nearest
        # first, then the closest super peer as the last resort.
        candidates = chain.ancestors_of(dead_parent)
        closest_super = chain.closest_super_peer(dead_parent)
        if closest_super and closest_super not in candidates:
            candidates.append(closest_super)
        for ancestor in candidates:
            if ancestor == self.peer_id or not self.network.is_alive(ancestor):
                continue
            self.network.notify(self.peer_id, ancestor, notice)
            self.network.notify(self.peer_id, ancestor, redirect)
            self.network.metrics.incr("results_redirected")
            return
        self._discard_own_work(txn_id)

    def _discard_own_work(self, txn_id: str) -> None:
        if self.manager.has_context(txn_id):
            context = self.manager.contexts[txn_id]
            if any(e.completed for e in context.invocations) or context.log_seqs:
                self.network.metrics.record_discarded_invocation()
            self._drop_completed_invokes(txn_id)
            self.manager.abort_local(txn_id)
        self._cancel_pending_work(txn_id)

    def _drop_completed_invokes(self, txn_id: str) -> None:
        """Invalidate the exactly-once cache for an aborted share.

        Once the share is compensated, a cached :class:`InvokeResult`
        would make a later legitimate re-invocation return stale results
        without redoing the (now undone) work.
        """
        for key in [k for k in self._completed_invokes if k[0] == txn_id]:
            del self._completed_invokes[key]

    def check_child_liveness(self, txn_id: str) -> List[str]:
        """§3.3(c): ping my chain children; handle any detected death.

        Returns the dead children found.  For each, the chain tells us
        the orphaned descendants: we inform them (preventing wasted
        effort) and can reuse any redirected results they already sent.
        """
        self._check_alive()
        chain = self.chains.get(txn_id)
        if chain is None:
            return []
        dead: List[str] = []
        for child in chain.children_of(self.peer_id):
            if not self.network.ping(self.peer_id, child):
                dead.append(child)
                self._on_child_death(txn_id, child)
        return dead

    def _on_child_death(self, txn_id: str, dead_child: str) -> None:
        self.known_doomed.add(txn_id)
        chain = self.chains.get(txn_id)
        if chain is None or not self.chaining:
            return
        notice = DisconnectNotice(
            txn_id, dead_child, self.peer_id, self.network.clock.now
        )
        targets = list(chain.descendants_of(dead_child))
        if self.chain_scope == "extended":
            # Conclusion's extension: also alert the dead peer's wider
            # family so parallel branches stop wasting effort sooner.
            for relative in chain.relatives_of(dead_child, "extended"):
                if relative not in targets and relative != self.peer_id:
                    targets.append(relative)
        for target in targets:
            if self.network.notify(self.peer_id, target, notice):
                self.network.metrics.incr("descendants_informed")

    def report_stream_timeout(self, txn_id: str, silent_sibling: str) -> None:
        """§3.3(d): a sibling's continuous data stream went silent.

        "A sibling would be aware of another sibling's disconnection if
        it doesn't receive data at the specified interval."  We verify
        with a ping, then use the chain to notify the dead sibling's
        parent and children.
        """
        self._check_alive()
        if self.network.ping(self.peer_id, silent_sibling):
            return  # false alarm: the stream was merely late
        chain = self.chains.get(txn_id)
        if chain is None or not self.chaining:
            return
        notice = DisconnectNotice(
            txn_id, silent_sibling, self.peer_id, self.network.clock.now
        )
        for relative in chain.relatives_of(silent_sibling, self.chain_scope):
            if relative != self.peer_id:
                self.network.notify(self.peer_id, relative, notice)

    # ------------------------------------------------------------------
    # notifications
    # ------------------------------------------------------------------

    def on_notify(self, message: object) -> None:
        if self.disconnected:
            return
        if isinstance(message, AbortMessage):
            self._on_abort_message(message)
        elif isinstance(message, CommitMessage):
            if self.manager.has_context(message.txn_id):
                self._commit_local_and_ship(message.txn_id)
            self._cancel_pending_work(message.txn_id)
        elif isinstance(message, CompensationRequest):
            # §3.2: execute without knowing it is compensation.
            self.manager.apply_compensation_xml(message.plan_xml)
            self.network.metrics.incr("peer_independent_compensations")
        elif isinstance(message, DisconnectNotice):
            self._on_disconnect_notice(message)
        elif isinstance(message, RedirectedResult):
            self.reusable_results[(message.txn_id, message.method_name)] = list(
                message.fragments
            )
            if self.manager.has_context(message.txn_id):
                context = self.manager.contexts[message.txn_id]
                for provider, plan_xml in message.compensations:
                    context.record_compensation_definition(provider, plan_xml)
            self.network.metrics.incr("redirected_results_received")
        elif isinstance(message, WalShipMessage):
            replication = getattr(self.network, "replication", None)
            if replication is not None:
                replication.on_ship(self.peer_id, message)
        elif isinstance(message, WalShipAck):
            replication = getattr(self.network, "replication", None)
            if replication is not None:
                replication.on_ack(self.peer_id, message)

    def _on_abort_message(self, message: AbortMessage) -> None:
        """§3.2 step 2: a peer whose invoker aborted compensates its
        share and cascades to its own children."""
        txn_id = message.txn_id
        if not self.manager.has_context(txn_id):
            self._cancel_pending_work(txn_id)
            return
        context = self.manager.contexts[txn_id]
        if context.is_finished:
            return
        self.network.metrics.incr("aborts_received")
        self._backward_recover(txn_id, exclude_peer=message.from_peer)

    def _on_disconnect_notice(self, message: DisconnectNotice) -> None:
        """A peer involved in one of our transactions disconnected.

        Stop burning effort on the doomed transaction (the §3.3(c)
        rationale: "prevent them from wasting effort").  Recovery itself
        is driven by whichever peer owns the failed invocation edge.
        """
        self.known_doomed.add(message.txn_id)
        self._cancel_pending_work(message.txn_id)
        self.network.metrics.incr("disconnect_notices_received")

    # ------------------------------------------------------------------
    # continuous (subscription) work — effort accounting for §3.3
    # ------------------------------------------------------------------

    def add_pending_work(
        self, txn_id: str, units: int, unit_duration: float = 0.01
    ) -> None:
        """Schedule *units* of ongoing work for the transaction.

        Each unit consumes virtual time when it fires; units belonging to
        a transaction this peer knows is doomed are counted as wasted —
        unless a notification cancelled them first.  This is the §3.3
        effort model: early notification saves the un-fired units.
        """
        handles = []
        for i in range(units):
            handle = self.network.events.schedule(
                (i + 1) * unit_duration, lambda t=txn_id: self._do_work_unit(t)
            )
            handles.append(handle)
        self._pending_work.setdefault(txn_id, []).extend(handles)

    def _do_work_unit(self, txn_id: str) -> None:
        if self.disconnected:
            return
        self.network.metrics.incr("work_units_done")
        if txn_id in self.known_doomed:
            self.network.metrics.incr("work_units_wasted")

    def _cancel_pending_work(self, txn_id: str) -> None:
        for handle in self._pending_work.pop(txn_id, []):
            handle.cancel()

    # ------------------------------------------------------------------
    # crash (process death: volatile state lost, disk survives)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Kill this peer's process: every volatile structure is lost.

        Unlike a *disconnection* (state intact, links down), a crash
        drops the in-memory operation log, transaction contexts, chain
        views, reuse caches and pending work.  Hosted documents model
        the peer's durable store and survive, as does the on-disk WAL
        directory when ``durability`` is enabled — that WAL is the only
        route back to compensating in-flight shares after a restart
        (:meth:`rejoin` with ``mode="in_doubt"``).

        The executing-transaction stack is deliberately left alone: a
        crash mid-service unwinds through ``handle_invoke``'s normal
        exception path, which pops its own frame.
        """
        self.network.disconnect(self.peer_id)
        self.disconnected = True
        self.manager.contexts.clear()
        from repro.txn.wal import OperationLog

        self.manager.log = OperationLog(self.peer_id)
        if self.wal is not None:
            # Group commit: frames still buffered in memory die with the
            # process.  Their document effects must die too — the
            # restarted peer's WAL has no record to compensate them from
            # — so undo them here (the write-ahead rule, enforced late).
            unflushed = self.wal.discard_unflushed()
            if unflushed:
                self._undo_unflushed(unflushed)
            self.wal.close()
        self.chains.clear()
        self.reusable_results.clear()
        self._incoming_reuse.clear()
        self._completed_invokes.clear()
        self.known_doomed.clear()
        for txn_id in list(self._pending_work):
            self._cancel_pending_work(txn_id)
        self._txn_spans.clear()
        self.network.metrics.incr("peer_crashes")

    def _undo_unflushed(self, entries) -> None:
        """Roll the durable store back over entries lost with the
        group-commit buffer.  Safe because the ``flush_on_prepare``
        barrier guarantees an unflushed entry belongs to a share whose
        result was never handed off — the invoker saw this crash as a
        failed invocation, so no other peer depends on the effect."""
        from repro.txn.operations import build_compensation
        from repro.txn.wal import OperationLog

        log = OperationLog.from_entries(self.peer_id, entries)
        for txn_id in sorted({e.txn_id for e in entries}):
            for plan in build_compensation(log, txn_id):
                if plan.document_name not in self.documents:
                    continue
                plan.execute(
                    self.get_axml_document(plan.document_name).document
                )

    # ------------------------------------------------------------------
    # rejoin (the P2P churn story: peers "joining and leaving arbitrarily")
    # ------------------------------------------------------------------

    def rejoin(
        self,
        restored_log_text: Optional[str] = None,
        mode: Union[str, RejoinMode] = RejoinMode.COMPENSATE,
    ) -> int:
        """Rejoin the network, compensating in-flight transactions.

        While this peer was gone, the rest of the system treated it as
        dead: its in-flight transactions were aborted (or completed
        around it via replicas).  A rejoining peer therefore compensates
        every local share that never saw a commit — its log has
        everything needed (§3.1's logging discipline pays off here).

        ``restored_log_text`` replays a log serialized with
        :meth:`repro.txn.wal.OperationLog.to_text`; with no text but a
        durable WAL attached (``durability=``), the log is recovered
        from disk (:meth:`repro.txn.durable_wal.DurableWal.reload`) —
        the restart-from-disk story, where in-memory contexts are gone
        but the log survives.

        ``mode`` (a :class:`~repro.txn.modes.RejoinMode`; the old
        strings are coerced) decides what happens to the recovered
        transactions:

        * :attr:`RejoinMode.COMPENSATE` (default): compensate every
          recovered share immediately — correct when the rest of the
          system already aborted around the dead peer.
        * :attr:`RejoinMode.IN_DOUBT`: rebuild an ``ACTIVE`` context per
          recovered transaction and leave the decision to a later
          :meth:`resolve_in_doubt`.  Required after a *crash*: a share
          whose invocation completed before the crash may belong to a
          transaction that globally committed — compensating it
          unconditionally would undo committed work.

        With checkpointing enabled, recovery restores any document
        snapshot the latest valid checkpoint carried for a document this
        peer no longer holds in memory (hosted documents normally model
        the durable store and survive a crash, so existing documents are
        never overwritten).

        Returns the number of transactions compensated (or, in
        ``"in_doubt"`` mode, rebuilt as in-doubt).
        """
        from repro.txn.wal import OperationLog

        mode = RejoinMode.coerce(mode)
        self.network.reconnect(self.peer_id)
        self.disconnected = False
        compensated = 0
        restored = None
        if restored_log_text is not None:
            restored = OperationLog.from_text(restored_log_text)
        elif self.wal is not None:
            restored = OperationLog.from_entries(
                self.peer_id, self.wal.reload()
            )
            restored.sink = self.wal
            recovery = self.wal.last_recovery
            if recovery is not None:
                for name, xml in sorted(recovery.documents.items()):
                    if name not in self.documents:
                        self.documents[name] = AXMLDocument.from_xml(
                            xml, name=name
                        )
        if restored is not None:
            self.manager.log = restored
            txn_ids = sorted({entry.txn_id for entry in restored})
            if mode is RejoinMode.IN_DOUBT:
                for txn_id in txn_ids:
                    context = self.manager.begin(
                        Transaction(txn_id, self.peer_id)
                    )
                    context.log_seqs = [
                        e.seq for e in restored.entries_for(txn_id)
                    ]
                    compensated += 1
            else:
                for txn_id in txn_ids:
                    from repro.txn.operations import build_compensation

                    for plan in build_compensation(restored, txn_id):
                        document = self.get_axml_document(
                            plan.document_name
                        ).document
                        plan.execute(document)
                    restored.truncate(txn_id)
                    compensated += 1
                    self.network.metrics.incr("recovery_replays")
                    # Rebuild a finished context so later messages are
                    # ignored.
                    context = self.manager.contexts.get(txn_id)
                    if context is not None and not context.is_finished:
                        self.manager.mark_aborted_without_compensation(txn_id)
                # Volatile contexts that never wrote a log entry have
                # nothing on disk; abort them too.
                for txn_id in list(self.manager.active_transactions()):
                    self.manager.abort_local(txn_id)
                    compensated += 1
        else:
            for txn_id in list(self.manager.active_transactions()):
                self.manager.abort_local(txn_id)
                compensated += 1
        self.network.metrics.incr("peer_rejoins")
        replication = getattr(self.network, "replication", None)
        if replication is not None:
            # Replica copies on this peer may have missed ships while it
            # was gone; schedule them for a settlement resync.
            replication.on_peer_rejoined(self.peer_id)
        return compensated

    # ------------------------------------------------------------------
    # settlement (driven by external harnesses, e.g. repro.chaos)
    # ------------------------------------------------------------------

    def resolve_in_doubt(self, txn_id: str, committed: bool) -> str:
        """Settle a share left without a decision; returns what was done.

        A participant that was disconnected (or whose decision message
        was lost) ends the run with an ``ACTIVE`` context.  Once the
        transaction's global outcome is known — from the origin, which
        under the paper's protocol is the single commit point — the
        share either commits locally (log truncated, effects kept) or
        compensates.  Returns ``"committed"``, ``"aborted"`` or
        ``"noop"`` (no context / already settled).
        """
        if not self.manager.has_context(txn_id):
            return "noop"
        context = self.manager.contexts[txn_id]
        if context.is_finished:
            return "noop"
        if committed and context.state is TransactionState.ACTIVE:
            self._commit_local_and_ship(txn_id)
            return "committed"
        self._drop_completed_invokes(txn_id)
        self.manager.abort_local(txn_id)
        return "aborted"

    def forget_transaction(self, txn_id: str) -> None:
        """Drop per-transaction protocol state for a settled transaction.

        Chain views, doomed-markers and redirected-result caches are
        kept after commit/abort so late protocol traffic (and the
        paper's reuse cases) still resolve; a harness that *knows* the
        transaction is globally settled calls this to release them.
        """
        self.chains.pop(txn_id, None)
        self.known_doomed.discard(txn_id)
        for key in [k for k in self.reusable_results if k[0] == txn_id]:
            del self.reusable_results[key]
        for key in [k for k in self._incoming_reuse if k[0] == txn_id]:
            del self._incoming_reuse[key]
        self._drop_completed_invokes(txn_id)
        self._cancel_pending_work(txn_id)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def _peer_is_super(self, peer_id: str) -> bool:
        try:
            peer = self.network.get_peer(peer_id)
        except ReproError:
            return False
        return bool(getattr(peer, "super_peer", False))

    def _check_alive(self) -> None:
        if self.disconnected:
            raise PeerDisconnected(self.peer_id)

    def __repr__(self) -> str:
        flags = []
        if self.super_peer:
            flags.append("super")
        if self.disconnected:
            flags.append("disconnected")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return (
            f"AXMLPeer({self.peer_id!r}, docs={len(self.documents)}, "
            f"services={len(self.registry)}{suffix})"
        )
