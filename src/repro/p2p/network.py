"""The simulated P2P network.

Service invocations are synchronous calls with virtual-time latency
(the caller blocks, as in SOAP); aborts/notices/redirects are one-way
notifications; pings probe liveness.  Peer disconnection is modelled by
a flag checked at every interaction point, so a peer can "die" at any
protocol step — including *between* a service finishing and its results
returning (the §3.3(b) window).

The network knows nothing about transactions; peers implement the
protocols on top of these primitives.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Union

from repro.errors import PeerDisconnected, ServiceFault, UnknownPeer
from repro.obs.spans import SpanCollector
from repro.p2p.messages import InvokeRequest, InvokeResult, message_kind
from repro.sim.kernel import Clock, EventQueue
from repro.sim.metrics import MetricsCollector


class NetworkPeer(Protocol):
    """What the network requires of a registered peer."""

    peer_id: str
    disconnected: bool

    def handle_invoke(self, request: InvokeRequest) -> InvokeResult: ...

    def on_notify(self, message: object) -> None: ...

    def on_return_failure(self, request: InvokeRequest, result: InvokeResult) -> None: ...


#: Verdict a message hook may return for one notification: ``None``
#: (deliver normally), ``"drop"`` (lose the message), or a positive
#: float (deliver after that many extra virtual seconds).
MessageVerdict = Union[None, str, float]

#: ``hook(source_id, target_id, message) -> MessageVerdict``.
MessageHook = Callable[[str, str, object], MessageVerdict]


class SimNetwork:
    """Synchronous-RPC network over a virtual clock."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        metrics: Optional[MetricsCollector] = None,
        hop_latency: float = 0.005,
        spans: Optional[SpanCollector] = None,
    ):
        self.clock = clock or Clock()
        self.events = EventQueue(self.clock)
        self.metrics = metrics or MetricsCollector()
        self.spans = spans or SpanCollector(now=lambda: self.clock.now)
        self.hop_latency = hop_latency
        self._peers: Dict[str, NetworkPeer] = {}
        #: Virtual time each peer disconnected at (for detection latency).
        self.disconnect_times: Dict[str, float] = {}
        #: Optional chaos hook consulted for every one-way notification
        #: (see :meth:`set_message_hook`); ``None`` = pristine network.
        self.message_hook: Optional[MessageHook] = None
        #: The placement directory (set by
        #: :class:`~repro.p2p.sharding.PlacementDirectory` on
        #: construction); routing layers consult it when present.
        self.directory = None
        #: Run-scoped fragment serial (see :func:`next_fragment_serial`):
        #: a module-global counter here would leak across sweep cells in
        #: one process while forked parallel workers start fresh,
        #: breaking serial↔parallel summary byte-identity.
        self._fragment_serial = 0

    def next_fragment_serial(self) -> int:
        """The next distribution serial for this network (1-based)."""
        self._fragment_serial += 1
        return self._fragment_serial

    # -- membership -------------------------------------------------------

    def register(self, peer: NetworkPeer) -> NetworkPeer:
        self._peers[peer.peer_id] = peer
        return peer

    def get_peer(self, peer_id: str) -> NetworkPeer:
        try:
            return self._peers[peer_id]
        except KeyError:
            raise UnknownPeer(f"no peer {peer_id!r} in the network")

    def peers(self) -> List[str]:
        return list(self._peers)

    def disconnect(self, peer_id: str) -> None:
        """Mark *peer_id* as having left the network (§1: arbitrarily)."""
        peer = self.get_peer(peer_id)
        if not peer.disconnected:
            peer.disconnected = True
            self.disconnect_times[peer_id] = self.clock.now
            self.metrics.incr("disconnections")

    def reconnect(self, peer_id: str) -> None:
        """Bring a peer back (it keeps its documents but lost txn state)."""
        self.get_peer(peer_id).disconnected = False

    def is_alive(self, peer_id: str) -> bool:
        peer = self._peers.get(peer_id)
        return peer is not None and not peer.disconnected

    # -- detection bookkeeping ----------------------------------------------

    def record_detection(self, disconnected_peer: str, detected_by: str) -> None:
        self.metrics.record_detection(
            disconnected_peer,
            detected_by,
            self.disconnect_times.get(disconnected_peer, self.clock.now),
            self.clock.now,
        )

    # -- primitives -----------------------------------------------------------

    def rpc(self, source_id: str, target_id: str, request: InvokeRequest) -> InvokeResult:
        """Synchronous service invocation with latency accounting.

        Raises :class:`PeerDisconnected` naming whichever peer's death
        broke the call: the target (detected by the caller) or — after a
        successful execution whose results cannot be delivered because
        the *caller* died — the source (§3.3b; the target's
        ``on_return_failure`` hook has then already run).

        Every call gets a span (kind ``rpc``) and a sample in the
        ``rpc_latency`` histogram, success or failure alike.
        """
        self.metrics.record_message("invoke")
        span = self.spans.start(
            f"rpc:{request.method_name}",
            "rpc",
            peer=source_id,
            txn_id=request.txn_id,
            target=target_id,
        )
        started = self.clock.now
        try:
            result = self._rpc_deliver(source_id, target_id, request)
        except PeerDisconnected as exc:
            self.spans.end(span, status="disconnected", dead_peer=exc.peer_id)
            raise
        except ServiceFault as fault:
            self.spans.end(span, status="fault", fault_name=fault.fault_name)
            raise
        except Exception:
            self.spans.end(span, status="error")
            raise
        else:
            self.spans.end(span, status="ok")
            return result
        finally:
            self.metrics.record_value("rpc_latency", self.clock.now - started)

    def _rpc_deliver(
        self, source_id: str, target_id: str, request: InvokeRequest
    ) -> InvokeResult:
        """The unobserved RPC protocol: deliver, execute, return."""
        self.clock.advance(self.hop_latency)
        target = self.get_peer(target_id)
        if target.disconnected:
            self.record_detection(target_id, source_id)
            raise PeerDisconnected(target_id)
        try:
            result = target.handle_invoke(request)
        except PeerDisconnected as exc:
            if target.disconnected and exc.peer_id != target_id:
                # The target died mid-execution; normalize so the caller
                # sees its own callee as the disconnected party.
                self.record_detection(target_id, source_id)
                raise PeerDisconnected(target_id) from exc
            raise
        if target.disconnected:
            # Died between finishing and returning: caller sees a death.
            self.record_detection(target_id, source_id)
            raise PeerDisconnected(target_id)
        self.clock.advance(self.hop_latency)
        source = self.get_peer(source_id)
        if source.disconnected:
            # §3.3(b): the child holds results it cannot deliver.
            self.record_detection(source_id, target_id)
            target.on_return_failure(request, result)
            raise PeerDisconnected(source_id)
        self.metrics.record_message("result")
        return result

    def set_message_hook(self, hook: Optional[MessageHook]) -> None:
        """Install (or clear) the chaos hook for one-way notifications.

        The hook sees every :meth:`notify` before delivery and may drop
        it (``"drop"``) or delay it (a positive float of extra virtual
        seconds, delivered through the event queue).  RPC traffic is
        *not* hooked: synchronous invocations already have first-class
        failure modes (faults and disconnections); the hook models the
        lossy-asynchronous-messaging dimension on top.
        """
        self.message_hook = hook

    def notify(self, source_id: str, target_id: str, message: object) -> bool:
        """One-way message; returns False when the target is unreachable.

        Message kinds are recorded under their lowercase protocol names
        (``messages.abort``, ``messages.disconnect_notice``, …) — the
        same scheme :meth:`rpc` uses for ``messages.invoke``/``result``.

        With a message hook installed, a notification may be dropped
        (``True`` is *not* returned: the sender learns nothing was
        delivered, as with a dead target) or delayed — then ``True`` is
        returned optimistically (fire-and-forget semantics) and the
        delivery re-checks both endpoints' liveness when it fires.
        """
        self.metrics.record_message(message_kind(message))
        self.clock.advance(self.hop_latency)
        if self.message_hook is not None:
            verdict = self.message_hook(source_id, target_id, message)
            if verdict == "drop":
                self.metrics.incr("messages_chaos_dropped")
                self.metrics.incr("messages_dropped")
                return False
            if isinstance(verdict, (int, float)) and not isinstance(verdict, bool) \
                    and verdict > 0:
                self.metrics.incr("messages_chaos_delayed")
                self.events.schedule(
                    float(verdict),
                    lambda: self._deliver_notify(source_id, target_id, message),
                )
                return True
        return self._deliver_notify(source_id, target_id, message)

    def _deliver_notify(self, source_id: str, target_id: str, message: object) -> bool:
        """Final delivery step (shared by immediate and delayed paths)."""
        peer = self._peers.get(target_id)
        if peer is None or peer.disconnected:
            self.metrics.incr("messages_dropped")
            return False
        if source_id in self._peers and self._peers[source_id].disconnected:
            # A dead peer sends nothing.
            self.metrics.incr("messages_dropped")
            return False
        peer.on_notify(message)
        return True

    def ping(self, source_id: str, target_id: str) -> bool:
        """Keep-alive probe (§3.3: "Related P2P research relies on ping
        (or keep-alive) messages to detect peer disconnection")."""
        self.metrics.record_message("ping")
        self.metrics.incr("pings")
        self.clock.advance(2 * self.hop_latency)
        alive = self.is_alive(target_id)
        if not alive and target_id in self._peers:
            self.record_detection(target_id, source_id)
        return alive
