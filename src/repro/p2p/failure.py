"""Failure injection and liveness monitoring.

:class:`FailureInjector` scripts the failures an experiment wants:
named service faults (consumed by §3.2's fault handlers) and peer
disconnections triggered either at protocol points — *before* a service
executes, *after* its local work, *before its results return* (the
§3.3(b) window) — or at absolute virtual times.

:class:`PingMonitor` implements keep-alive detection for the cases where
nobody is blocked on the dead peer (§3.3(c): "AP2 detects the
disconnection of AP3 via ping (or keep-alive) messages").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.p2p.network import SimNetwork

#: Injection points inside a service execution.
POINTS = ("before_execute", "after_local_work", "before_return")


@dataclass
class _FaultScript:
    fault_name: str
    remaining: int  # how many invocations still fault (-1 = forever)


class FailureInjector:
    """Deterministic, scripted failures for one simulation run."""

    def __init__(self, network: SimNetwork):
        self.network = network
        self._faults: Dict[Tuple[str, str, str], _FaultScript] = {}
        #: (trigger_peer, method, point) → peer to disconnect ("" = spent).
        self._disconnects: Dict[Tuple[str, str, str], str] = {}
        #: (trigger_peer, method, point) → (dead peer, restart delay);
        #: "" as dead peer = spent.
        self._crashes: Dict[Tuple[str, str, str], Tuple[str, float, bool]] = {}

    # -- scripting ---------------------------------------------------------

    def fault_service(
        self,
        peer_id: str,
        method_name: str,
        fault_name: str,
        times: int = 1,
        point: str = "before_execute",
    ) -> None:
        """Make the next *times* executions of the service raise a fault.

        ``times=-1`` faults every execution — the shape that defeats
        bounded retry and forces backward recovery.  ``point`` selects
        *when* the fault strikes: ``before_execute`` (no work done) or
        ``after_execute`` — the Fig. 1 shape, where AP5 "fails while
        processing S5" after having already invoked S6 on AP6.
        """
        if point not in ("before_execute", "after_execute"):
            raise ValueError(f"unknown fault point {point!r}")
        self._faults[(peer_id, method_name, point)] = _FaultScript(fault_name, times)

    def disconnect_during(
        self, peer_id: str, method_name: str, point: str = "after_local_work"
    ) -> None:
        """Disconnect *peer_id* when it reaches *point* of *method_name*.

        ``point="before_return"`` models a peer dying with its work
        complete but undelivered.
        """
        self.disconnect_peer_during(peer_id, peer_id, method_name, point)

    def disconnect_peer_during(
        self,
        dead_peer: str,
        trigger_peer: str,
        method_name: str,
        point: str = "after_local_work",
    ) -> None:
        """Disconnect *dead_peer* when *trigger_peer* reaches an execution
        point of *method_name*.

        This expresses §3.3(b) exactly: script
        ``disconnect_peer_during("AP3", "AP6", "S6")`` and AP3 dies while
        AP6 is still processing S6 — AP6 then "detects the disconnection
        of AP3 while trying to return the results of processing service
        S6".
        """
        if point not in POINTS:
            raise ValueError(f"unknown injection point {point!r}; use one of {POINTS}")
        self._disconnects[(trigger_peer, method_name, point)] = dead_peer

    def crash_peer_during(
        self,
        peer_id: str,
        method_name: str,
        point: str = "after_local_work",
        restart_delay: float = 0.5,
        tear_checkpoint: bool = False,
    ) -> None:
        """Crash *peer_id* when it reaches an execution point of
        *method_name*, then restart it *restart_delay* later.

        A crash (``AXMLPeer.crash``) loses all volatile state — unlike a
        scripted disconnection, which only severs links.  The restart
        drives ``rejoin(mode="in_doubt")``: the peer recovers its
        operation log from the durable WAL and rebuilds in-doubt
        contexts for a later commit/abort decision.

        ``tear_checkpoint`` models the crash landing *inside* a
        checkpoint publish: the newest checkpoint file is truncated to
        half its length, so recovery must detect the torn file and fall
        back to the previous checkpoint with a longer replay.
        """
        if point not in POINTS:
            raise ValueError(f"unknown injection point {point!r}; use one of {POINTS}")
        self._crashes[(peer_id, method_name, point)] = (
            peer_id, restart_delay, tear_checkpoint
        )

    def disconnect_at(self, peer_id: str, time: float) -> None:
        """Disconnect *peer_id* at an absolute virtual time."""
        self.network.events.schedule_at(
            time, lambda: self.network.disconnect(peer_id)
        )

    def kill_at(
        self, peer_id: str, time: float, restart_delay: float = 0.5
    ) -> None:
        """Crash *peer_id* at an absolute virtual time, restart it later.

        The timed analogue of :meth:`crash_peer_during` — the chaos
        planner's ``kill_primary`` fault uses it to take a replicated
        primary down regardless of what it is executing, forcing any
        in-flight invocation onto its replicas.  A peer already dead at
        the fire time is left alone; the restart (``rejoin`` with
        ``mode="in_doubt"``) is scheduled unconditionally so no killed
        peer stays down past settlement.
        """

        def fire() -> None:
            peer = self.network.get_peer(peer_id)
            if peer.disconnected:
                return
            peer.crash()
            self.network.events.schedule(
                restart_delay,
                lambda: peer.rejoin(mode="in_doubt") if peer.disconnected else None,
            )

        self.network.events.schedule_at(time, fire)

    def clear(self) -> None:
        """Drop every un-fired fault/disconnect/crash script."""
        self._faults.clear()
        self._disconnects.clear()
        self._crashes.clear()

    # -- hooks consulted by peers -----------------------------------------------

    def check_fault(
        self, peer_id: str, method_name: str, point: str = "before_execute"
    ) -> Optional[str]:
        """The fault name to raise now, or None.  Consumes one charge."""
        script = self._faults.get((peer_id, method_name, point))
        if script is None or script.remaining == 0:
            return None
        if script.remaining > 0:
            script.remaining -= 1
        return script.fault_name

    def check_disconnect(self, peer_id: str, method_name: str, point: str) -> bool:
        """Fire any disconnect scripted for this execution point (one-shot).

        Returns True when the *executing* peer itself was disconnected.
        """
        key = (peer_id, method_name, point)
        crash = self._crashes.get(key)
        if crash and crash[0]:
            dead_peer, delay, tear = crash
            self._crashes[key] = ("", 0.0, False)
            peer = self.network.get_peer(dead_peer)
            peer.crash()
            if tear and peer.wal is not None:
                # The crash lands mid-publish: tear the newest
                # checkpoint so recovery exercises the fallback path.
                from repro.txn.checkpoint import CheckpointStore

                CheckpointStore(
                    peer.wal.directory, peer.peer_id
                ).tear_newest()
            # Restart is unconditional: settlement's run_all() fires it
            # even when nothing else is pending, so no crashed peer is
            # left dead (and un-recovered) at oracle time.
            self.network.events.schedule(
                delay,
                lambda p=peer: p.rejoin(mode="in_doubt") if p.disconnected else None,
            )
            if dead_peer == peer_id:
                return True
        dead_peer = self._disconnects.get(key)
        if not dead_peer:
            return False
        self._disconnects[key] = ""
        self.network.disconnect(dead_peer)
        return dead_peer == peer_id


class PingMonitor:
    """Periodic keep-alive probing of a watch list."""

    def __init__(
        self,
        network: SimNetwork,
        watcher_peer: str,
        interval: float = 0.05,
    ):
        self.network = network
        self.watcher_peer = watcher_peer
        self.interval = interval
        #: peer id → callback fired once on detected death.
        self._watched: Dict[str, Callable[[str], None]] = {}
        self._notified: set = set()

    def watch(self, peer_id: str, on_death: Callable[[str], None]) -> None:
        self._watched[peer_id] = on_death
        self._schedule(peer_id)

    def _schedule(self, peer_id: str) -> None:
        self.network.events.schedule(self.interval, lambda: self._probe(peer_id))

    def _probe(self, peer_id: str) -> None:
        if peer_id not in self._watched or peer_id in self._notified:
            return
        if not self.network.is_alive(self.watcher_peer):
            return  # a dead watcher probes nothing
        if self.network.ping(self.watcher_peer, peer_id):
            self._schedule(peer_id)
            return
        self._notified.add(peer_id)
        callback = self._watched.pop(peer_id)
        callback(peer_id)

    def unwatch(self, peer_id: str) -> None:
        self._watched.pop(peer_id, None)
