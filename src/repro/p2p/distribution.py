"""Distributed storage of AXML document fragments (§1).

"The distributed aspect follows from … 2) distributed storage of parts
of an AXML document across multiple peers [2].  In case of distributed
storage, if a query Q on peer AP1 is interested in part of an AXML
document stored on peer AP2 then there are two options: a) the query Q
is decomposed and the relevant sub-query sent to the peer AP2 for
evaluation, or b) the required fragment of the AXML document is copied
to the peer AP1 and the query Q evaluated locally.  Both the above
options require invoking a service on the remote peer and as such are
similar in functionality to (1)."

The paper's own observation — that both options reduce to a service
invocation — is exactly how we implement them:

* :func:`distribute_fragment` moves a subtree from the host document to
  a fresh document on another peer and replaces it with an embedded
  service call to a generated ``getFragment_*`` query service there.
* Option (b), fragment copying, is then ordinary lazy materialization:
  a query touching the fragment's names pulls it over the network and
  evaluates locally.  Transactionally this is the interesting path —
  the copy is a tree change with change records, so aborting the query
  un-copies the fragment (dynamic query compensation, §3.1).
* Option (a), sub-query shipping, is :func:`remote_subquery`: the
  relevant Select is sent to the fragment's host and evaluated there;
  the local document is never touched, so nothing needs compensation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.axml.document import AXMLDocument
from repro.axml.service_call import install_service_call
from repro.errors import P2PError
from repro.p2p.peer import AXMLPeer
from repro.query.ast import SelectQuery
from repro.services.descriptor import ServiceDescriptor
from repro.services.service import QueryService
from repro.xmlstore.nodes import Document, Element
from repro.xmlstore.path import parse_path
from repro.xmlstore.serializer import serialize

@dataclass
class FragmentPlacement:
    """Where a distributed fragment lives and how to reach it."""

    host_document: str
    fragment_document: str
    fragment_peer: str
    method_name: str
    root_name: str


def distribute_fragment(
    owner: AXMLPeer,
    document_name: str,
    fragment_path: str,
    target: AXMLPeer,
) -> FragmentPlacement:
    """Move the subtree at *fragment_path* to *target*, leaving a call.

    The subtree (exactly one match required) becomes a standalone
    document ``<doc>_frag<N>`` hosted by *target*, exposed through a
    generated ``getFragment_<N>`` query service.  The owner's document
    gets an ``axml:sc`` in its place whose ``resultName`` is the
    fragment root's name — so lazy evaluation fetches the fragment only
    for queries that actually need it.
    """
    axml_document = owner.get_axml_document(document_name)
    matches = [
        node
        for node in parse_path(fragment_path).evaluate(axml_document.document)
        if isinstance(node, Element)
    ]
    if len(matches) != 1:
        raise P2PError(
            f"fragment path {fragment_path!r} must match exactly one element, "
            f"matched {len(matches)}"
        )
    subtree = matches[0]
    if subtree.parent is None:
        raise P2PError("cannot distribute the document root")
    parent = subtree.parent
    index = subtree.index_in_parent()
    # Run-scoped serial (the network owns it): a module-global
    # itertools.count here survived across sweep cells in one process
    # while forked parallel workers started fresh, threatening
    # serial↔parallel summary byte-identity.
    serial = owner.network.next_fragment_serial()
    fragment_doc_name = f"{document_name}_frag{serial}"
    method_name = f"getFragment_{serial}"

    # Build the fragment document on the target peer.
    fragment_document = Document(fragment_doc_name)
    fragment_document.root = subtree.clone_into(fragment_document, preserve_ids=False)
    target.host_document(AXMLDocument(fragment_document, name=fragment_doc_name))
    target.host_service(
        QueryService(
            ServiceDescriptor(
                method_name,
                kind="query",
                target_document=fragment_doc_name,
                result_name=subtree.name.local,
                description=f"serves the distributed fragment of {document_name}",
            ),
            # The fragment document is addressed by its document name (its
            # root element keeps the subtree's original name).
            f"Select f from f in {fragment_doc_name};",
        )
    )
    replication = getattr(owner.network, "replication", None)
    if replication is not None:
        replication.register_primary(fragment_doc_name, target.peer_id)
        replication.register_service(method_name, target.peer_id)

    # Replace the subtree with an embedded call to the fragment service.
    # The placeholder declares *every* element name inside the fragment,
    # so lazy evaluation fetches it for any query that needs fragment
    # content — not just the fragment's root name.
    contained_names = sorted({e.name.local for e in subtree.iter_elements()})
    subtree.detach()
    placeholder_parent = parent
    call = install_service_call(
        placeholder_parent,
        method_name=method_name,
        service_url=f"axml://{target.peer_id}",
        mode="replace",
        result_name=subtree.name.local,
    )
    call.element.attributes["resultNames"] = " ".join(contained_names)
    # The placeholder is storage, not a dynamic service: once fetched,
    # the copy is authoritative for the rest of the transaction.
    call.element.attributes["fetchOnce"] = "true"
    # Move the sc element to the subtree's original position.
    call.element.detach()
    placeholder_parent.insert_at(index, call.element)
    return FragmentPlacement(
        host_document=document_name,
        fragment_document=fragment_doc_name,
        fragment_peer=target.peer_id,
        method_name=method_name,
        root_name=subtree.name.local,
    )


def remote_subquery(
    requester: AXMLPeer,
    txn_id: str,
    placement: FragmentPlacement,
    subquery: SelectQuery,
) -> List[str]:
    """Option (a): ship a sub-query to the fragment's host peer.

    The sub-query must range over the fragment document.  Returns the
    serialized result fragments.  Because evaluation happens remotely
    and the local document is untouched, the requester logs nothing —
    only the remote peer's own materializations (if any) enter *its*
    log.
    """
    if subquery.document_name != placement.fragment_document:
        raise P2PError(
            f"sub-query ranges over {subquery.document_name!r}, expected "
            f"{placement.fragment_document!r}"
        )
    method = f"query_{placement.fragment_document}"
    host = requester.network.get_peer(placement.fragment_peer)
    if not host.registry.has(method):
        host.host_service(
            QueryService(
                ServiceDescriptor(
                    method,
                    kind="query",
                    target_document=placement.fragment_document,
                    result_name="result",
                ),
                "$q",
            )
        )
    return requester.invoke(
        txn_id, placement.fragment_peer, method, {"q": str(subquery)}
    )
