"""Message types exchanged between peers.

Invocations are synchronous in the simulation (the caller blocks for the
result, as a SOAP call would); everything else — aborts, disconnect
notices, redirected results, pings — travels as one-way notifications.
All messages are plain dataclasses; the network layer counts and
delivers them.

Every message class carries a lowercase protocol ``KIND`` — the single
naming scheme used by metrics keys (``messages.abort``) and trace
details, matching the ``invoke``/``result``/``ping`` names the RPC path
already used.  :func:`message_kind` resolves it for any message object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional, Sequence

from repro.outcome import Outcome


def message_kind(message: object) -> str:
    """The lowercase protocol name of *message* (``abort``, ``commit``, …).

    Falls back to the lowercased class name for foreign message types so
    metrics keys stay in one scheme even for test doubles.
    """
    kind = getattr(type(message), "KIND", None)
    if isinstance(kind, str) and kind:
        return kind
    return type(message).__name__.lower()


@dataclass
class InvokeRequest:
    """A service invocation: "Invoke method M for transaction T".

    ``chain_text`` piggybacks the active-peer chain (§3.3); empty when
    chaining is disabled (the naive baseline).
    """

    KIND: ClassVar[str] = "invoke"

    txn_id: str
    origin_peer: str
    sender: str
    method_name: str
    params: Dict[str, str] = field(default_factory=dict)
    chain_text: str = ""
    #: Pre-materialized parameter results reused from an orphaned child
    #: (§3.3b: "passing the materialized results directly while invoking
    #: S3 on APX").
    reused_fragments: Dict[str, List[str]] = field(default_factory=dict)


#: The reply to an :class:`InvokeRequest` — now the unified, frozen
#: :class:`repro.outcome.Outcome` (its ``KIND`` stays ``"result"``).
#: ``compensations`` carries compensating-service definitions when
#: peer-independent compensation is enabled — ``(provider_peer,
#: plan_xml)`` pairs (§3.2); ``chain_text`` is the provider's final chain
#: view, merged back into the caller's (§3.3).  The old name remains
#: importable here as a deprecated alias.
InvokeResult = Outcome


@dataclass
class AbortMessage:
    """"Abort T_A" (§3.2's nested recovery protocol)."""

    KIND: ClassVar[str] = "abort"

    txn_id: str
    from_peer: str
    failed_method: str = ""
    reason: str = ""


@dataclass
class DisconnectNotice:
    """Notification that a peer was observed disconnected (§3.3)."""

    KIND: ClassVar[str] = "disconnect_notice"

    txn_id: str
    disconnected_peer: str
    detected_by: str
    detect_time: float = 0.0


@dataclass
class RedirectedResult:
    """Results a child pushes past its dead parent (§3.3b).

    When AP6 cannot return S6's results to the disconnected AP3, it sends
    them up the chain to AP2: the grandparent can reuse the work when it
    forward-recovers S3 on a replacement peer.
    """

    KIND: ClassVar[str] = "redirected_result"

    txn_id: str
    from_peer: str
    dead_parent: str
    method_name: str
    fragments: List[str] = field(default_factory=list)
    compensations: List[tuple] = field(default_factory=list)


@dataclass
class CommitMessage:
    """Origin → participants: the transaction committed; release state."""

    KIND: ClassVar[str] = "commit"

    txn_id: str
    from_peer: str


@dataclass
class CompensationRequest:
    """Peer-independent compensation (§3.2): "a peer trying to perform
    recovery … can directly invoke the compensating services on their
    original peers".  The receiver executes the plan without knowing it
    is compensation."""

    KIND: ClassVar[str] = "compensation"

    txn_id: str
    plan_xml: str
    from_peer: str


@dataclass
class WalShipMessage:
    """Primary → replica: a batch of committed, shipped WAL entries.

    Each element of ``entries_xml`` is one ``entry_to_xml``
    frame — the same per-entry codec the on-disk WAL uses, so the wire
    format and the disk format cannot drift.  ``first_seq``/``last_seq``
    bound the batch in the source peer's seq space."""

    KIND: ClassVar[str] = "wal_ship"

    from_peer: str
    to_peer: str
    entries_xml: List[str] = field(default_factory=list)
    first_seq: int = 0
    last_seq: int = 0


@dataclass
class WalShipAck:
    """Replica → primary: the acked high-water mark of one ship channel.

    "I have applied your entries up to ``acked_seq``"."""

    KIND: ClassVar[str] = "wal_ship_ack"

    from_peer: str
    to_peer: str
    acked_seq: int = 0


@dataclass
class PingMessage:
    """Keep-alive probe; the reply is implicit in the network call."""

    KIND: ClassVar[str] = "ping"

    from_peer: str
    to_peer: str
