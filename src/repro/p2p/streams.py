"""Sibling-to-sibling data streams (§3.3(d)) over the simulated network.

"For data intensive applications, it is often the case that data is
passed directly between siblings (rather than sibling A - parent -
sibling B).  In an AXML scenario, this is particularly relevant for
subscription based continuous [1] services … Thus, a sibling would be
aware of another sibling's disconnection if it doesn't receive data at
the specified interval."

:class:`SiblingStream` wires a producer peer to a consumer peer: the
producer pushes one :class:`StreamData` notification per interval on the
event queue; the consumer checks for overdue data and, on silence,
triggers its §3.3(d) handler (``report_stream_timeout``) — which uses
the transaction's chain to notify the dead producer's parent and
children.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.axml.continuous import StreamSubscription
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer


@dataclass
class StreamData:
    """One datum pushed from producer to consumer."""

    txn_id: str
    from_peer: str
    sequence: int
    payload_xml: str = ""


class SiblingStream:
    """A periodic producer→consumer data flow with silence detection."""

    def __init__(
        self,
        network: SimNetwork,
        txn_id: str,
        producer: AXMLPeer,
        consumer: AXMLPeer,
        interval: float = 0.1,
        grace: float = 0.5,
        payload_xml: str = "<datum/>",
    ):
        self.network = network
        self.txn_id = txn_id
        self.producer = producer
        self.consumer = consumer
        self.interval = interval
        self.payload_xml = payload_xml
        self.sequence = 0
        self.received: List[StreamData] = []
        self.silence_reported = False
        self.subscription = StreamSubscription(
            producer.peer_id,
            consumer.peer_id,
            interval=interval,
            grace=grace,
            on_silence=self._on_silence,
        )
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin producing and watching."""
        self._running = True
        self.subscription.last_delivery = self.network.clock.now
        self._schedule_production()
        self._schedule_check()

    def stop(self) -> None:
        self._running = False

    # -- producer side ---------------------------------------------------------

    def _schedule_production(self) -> None:
        self.network.events.schedule(self.interval, self._produce)

    def _produce(self) -> None:
        if not self._running:
            return
        if self.producer.disconnected:
            return  # a dead producer streams nothing — the silence begins
        self.sequence += 1
        datum = StreamData(
            self.txn_id, self.producer.peer_id, self.sequence, self.payload_xml
        )
        self.network.notify(self.producer.peer_id, self.consumer.peer_id, datum)
        self._schedule_production()

    # -- consumer side -----------------------------------------------------------

    def deliver(self, datum: StreamData) -> None:
        """Called by the consumer peer when a datum arrives."""
        self.received.append(datum)
        self.subscription.deliver(self.network.clock.now)

    def _schedule_check(self) -> None:
        self.network.events.schedule(self.interval, self._check)

    def _check(self) -> None:
        if not self._running or self.consumer.disconnected:
            return
        self.subscription.check(self.network.clock.now)
        if not self.subscription.silent:
            self._schedule_check()

    def _on_silence(self, producer_peer: str) -> None:
        """§3.3(d): the consumer reports the silent sibling through the
        chain (after the ping confirmation inside report_stream_timeout)."""
        if self.silence_reported:
            return
        self.silence_reported = True
        self.network.metrics.incr("stream_silences")
        self.consumer.report_stream_timeout(self.txn_id, producer_peer)
        if not self.network.is_alive(producer_peer):
            self.stop()
        else:
            # False alarm (late data): resume watching.
            self.silence_reported = False
            self.subscription.silent = False
            self._schedule_check()


def open_stream(
    network: SimNetwork,
    txn_id: str,
    producer: AXMLPeer,
    consumer: AXMLPeer,
    interval: float = 0.1,
    **kwargs,
) -> SiblingStream:
    """Create, register and start a sibling stream.

    The consumer's notification handler is extended to route
    :class:`StreamData` into the stream object.
    """
    stream = SiblingStream(network, txn_id, producer, consumer, interval, **kwargs)
    original_on_notify = consumer.on_notify

    def on_notify(message):
        if isinstance(message, StreamData) and message.txn_id == txn_id:
            stream.deliver(message)
            return
        original_on_notify(message)

    consumer.on_notify = on_notify
    stream.start()
    return stream
