"""Elastic sharding: consistent-hash placement and live shard migration.

The paper's §1 storage model spreads AXML documents across peers, but
the seed placement was *static*: topology fixed at build time, replicas
picked once at registration, routing frozen against that map.  This
module makes placement elastic:

* :class:`ShardRing` — a seeded, deterministic consistent-hash ring
  (virtual nodes, crc32 point hashing, never builtin ``hash()`` whose
  ``PYTHONHASHSEED`` salting would leak nondeterminism into placement).
  ``lookup(key)`` walks the ring clockwise and returns the primary plus
  the replica set; adding or removing a member moves only the keys that
  land on the new/old arcs (≈ K/N of them), never shuffles the rest.

* :class:`PlacementDirectory` — the single source of routing truth.
  :class:`~repro.p2p.replication.ReplicationManager` stores its holder
  maps *in* the directory, the scheduler's ``_route_invoke`` and
  ``AXMLPeer.invoke`` consult it before dispatch, and migrations flip
  ownership here in one step.

* :class:`ShardCoordinator` — elastic membership (``add_peer`` /
  ``retire_peer`` recompute ring ownership and emit a minimal migration
  plan) and **live shard migration** with an atomic cutover: the source
  ships the document plus the committed WAL tail over the existing
  replication ship channels, defers in-flight transactions at a
  quiescence barrier, flips directory ownership in one step, and
  rewrites §3.3 peer chains around the old holder.  Every point is
  crash-safe (the ``crash_during_migration`` chaos fault kind): a crash
  parks the migration and settlement reconciles placement with the ring.

Correctness invariant: a migration target only ever receives *clean*
state.  The copy phase runs at a quiescence barrier (no in-flight
transaction touches the shard at the source), so the clone carries no
uncommitted effects; between copy and cutover the target is an ordinary
replica and only *committed* entries ship to it.  Aborts therefore
never need to chase a migrated copy.
"""

from __future__ import annotations

import bisect
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import P2PError
from repro.obs.prof import PROF


class ShardRing:
    """A seeded consistent-hash ring with virtual nodes.

    Every member contributes ``vnodes`` points on a 32-bit ring; a key
    hashes to a point and is owned by the next ``1 + replicas`` distinct
    members clockwise.  All hashing is :func:`zlib.crc32` over strings
    that include the ring *seed*, so the assignment is a pure function
    of ``(seed, members, key)`` — byte-stable across processes and
    immune to ``PYTHONHASHSEED``.
    """

    def __init__(
        self,
        seed: int,
        members: Sequence[str] = (),
        vnodes: int = 16,
        replicas: int = 0,
    ):
        if vnodes < 1:
            raise P2PError(f"vnodes must be >= 1, got {vnodes}")
        if replicas < 0:
            raise P2PError(f"replicas must be >= 0, got {replicas}")
        self.seed = seed
        self.vnodes = vnodes
        self.replicas = replicas
        self._members: List[str] = []
        #: Sorted ``(point, member)`` pairs — the ring itself.
        self._points: List[Tuple[int, str]] = []
        for member in members:
            self.add_member(member)

    # -- hashing ---------------------------------------------------------

    def _member_point(self, member: str, index: int) -> int:
        return zlib.crc32(f"ring:{self.seed}:{member}#{index}".encode("utf-8"))

    def _key_point(self, key: str) -> int:
        return zlib.crc32(f"key:{self.seed}:{key}".encode("utf-8"))

    # -- membership ------------------------------------------------------

    @property
    def members(self) -> List[str]:
        return list(self._members)

    def add_member(self, member: str) -> None:
        if member in self._members:
            return
        self._members.append(member)
        for index in range(self.vnodes):
            bisect.insort(self._points, (self._member_point(member, index), member))

    def remove_member(self, member: str) -> None:
        if member not in self._members:
            return
        self._members.remove(member)
        self._points = [p for p in self._points if p[1] != member]

    # -- lookup ----------------------------------------------------------

    def lookup(self, key: str, count: Optional[int] = None) -> List[str]:
        """The ``count`` (default ``1 + replicas``) distinct members that
        own *key*, primary first, walking clockwise from the key's point.
        """
        if not self._points:
            return []
        want = (1 + self.replicas) if count is None else count
        want = min(want, len(self._members))
        start = bisect.bisect_right(self._points, (self._key_point(key), "￿"))
        owners: List[str] = []
        for offset in range(len(self._points)):
            member = self._points[(start + offset) % len(self._points)][1]
            if member not in owners:
                owners.append(member)
                if len(owners) == want:
                    break
        return owners

    def primary(self, key: str) -> Optional[str]:
        owners = self.lookup(key, count=1)
        return owners[0] if owners else None

    def assignment(self, keys: Sequence[str]) -> Dict[str, List[str]]:
        """``{key: lookup(key)}`` for every key — the placement table."""
        return {key: self.lookup(key) for key in keys}

    def __repr__(self) -> str:
        return (
            f"ShardRing(seed={self.seed}, members={self._members}, "
            f"vnodes={self.vnodes}, replicas={self.replicas})"
        )


def moved_keys(
    before: Dict[str, List[str]], after: Dict[str, List[str]]
) -> List[str]:
    """Keys whose owner list changed between two assignments, sorted."""
    return sorted(
        key for key in after if after[key] != before.get(key, [])
    )


class PlacementDirectory:
    """The single source of routing truth for documents and services.

    The directory owns the holder maps that
    :class:`~repro.p2p.replication.ReplicationManager` historically kept
    private (the manager's ``_document_holders`` / ``_service_holders``
    now delegate here), plus the *sharded* registries: which documents
    are placed by the ring, and which service method co-locates with
    each.  Routing layers (the scheduler's ``_route_invoke``,
    ``AXMLPeer.invoke``) ask :meth:`route_service` before dispatching —
    for non-sharded methods that is a no-op ``None``, keeping legacy
    behaviour byte-identical.
    """

    def __init__(self, network):
        self.network = network
        #: document name → peer ids holding a copy (primary first).
        self.document_map: Dict[str, List[str]] = {}
        #: method name → peer ids hosting the service.
        self.service_map: Dict[str, List[str]] = {}
        #: sharded document → co-located service method ("" when none).
        self.sharded_docs: Dict[str, str] = {}
        #: sharded service method → its document key.
        self.sharded_methods: Dict[str, str] = {}
        #: ``(document, target)`` pairs with a migration copy in flight —
        #: committed entries shipped to these targets are counted as
        #: ``migration_entries_shipped`` (the WAL tail of the migration).
        self.active_migration_routes: Set[Tuple[str, str]] = set()
        #: The ring placing the sharded documents (set by the
        #: coordinator; the oracle's ``directory_stale`` predicate
        #: compares holder lists against it).
        self.ring: Optional[ShardRing] = None
        # Make the directory discoverable by routing layers.
        network.directory = self

    # -- shard registry --------------------------------------------------

    def mark_sharded(self, document: str, method: str = "") -> None:
        self.sharded_docs[document] = method
        if method:
            self.sharded_methods[method] = document

    def is_sharded(self, document: str) -> bool:
        return document in self.sharded_docs

    # -- lookups ---------------------------------------------------------

    def document_holders(self, document: str) -> List[str]:
        return list(self.document_map.get(document, []))

    def service_holders(self, method: str) -> List[str]:
        return list(self.service_map.get(method, []))

    def primary(self, document: str) -> Optional[str]:
        holders = self.document_map.get(document, [])
        return holders[0] if holders else None

    def route_service(self, method: str) -> Optional[str]:
        """Where an invocation of *method* should go, or ``None`` when
        the method is not shard-placed (caller keeps its own target).

        Sharded methods route to the current primary, falling back to
        the first alive holder when the primary is down (the holder list
        is kept primary-first by :meth:`flip_primary` and failover).
        """
        if method not in self.sharded_methods:
            return None
        PROF.incr("directory_lookups")
        holders = self.service_map.get(method, [])
        for holder in holders:
            if self.network.is_alive(holder):
                return holder
        return holders[0] if holders else None

    # -- ownership flips -------------------------------------------------

    def flip_primary(self, document: str, new_primary: str) -> None:
        """Atomic cutover: *new_primary* becomes first in the document's
        holder list and in its co-located service's holder list.  A
        single in-place reorder — every routing layer reads these lists,
        so the flip is one step for the whole system.
        """
        holders = self.document_map.get(document, [])
        if new_primary in holders:
            holders.remove(new_primary)
            holders.insert(0, new_primary)
        method = self.sharded_docs.get(document, "")
        if method:
            service_holders = self.service_map.get(method, [])
            if new_primary in service_holders:
                service_holders.remove(new_primary)
                service_holders.insert(0, new_primary)


@dataclass
class ShardMigration:
    """One live migration of a shard (document + co-located service)."""

    document: str
    method: str
    source: str
    target: str
    #: ``pending`` → ``copied`` → ``done`` | ``aborted``.
    state: str = "pending"
    #: Barrier rechecks consumed so far (bounded by ``max_defers``).
    defer_count: int = 0
    #: Distinct in-flight transactions the barrier deferred behind.
    deferred: Set[str] = field(default_factory=set)
    stage_path: Optional[str] = None


class ShardCoordinator:
    """Elastic membership and live migration over a :class:`ShardRing`.

    ``add_peer``/``retire_peer`` recompute ring ownership, count the
    moved keys (``ring_moves``) and start one :class:`ShardMigration`
    per shard whose primary changed.  A migration proceeds in two
    barrier-guarded phases, both scheduled on the simulation clock:

    1. **copy** — waits until no in-flight transaction touches the shard
       at the source, then clones document + service onto the target
       (clean state only) and registers the target as a holder.  From
       here to cutover the target is an ordinary replica: committed
       entries ship to it over the normal channels (counted as
       ``migration_entries_shipped`` — the WAL tail).
    2. **cutover** — waits for quiescence again (newly arrived
       transactions are counted as ``migration_deferred_txns``), then
       flips directory ownership in one step and rewrites §3.3 peer
       chains around the old holder.

    A crash of source or target at either point (the
    ``crash_during_migration`` fault) aborts the migration;
    :meth:`settle` reconciles the directory with the ring afterwards, so
    placement always converges.
    """

    def __init__(
        self,
        network,
        replication,
        ring: ShardRing,
        scratch=None,
        cutover_delay: float = 0.05,
        defer_delay: float = 0.05,
        max_defers: int = 12,
    ):
        self.network = network
        self.replication = replication
        self.directory: PlacementDirectory = replication.directory
        self.directory.ring = ring
        self.ring = ring
        self.scratch = scratch
        self.cutover_delay = cutover_delay
        self.defer_delay = defer_delay
        self.max_defers = max_defers
        self._migrations: List[ShardMigration] = []
        #: FIFO of armed ``crash_during_migration`` faults:
        #: ``(role, point, restart_delay)`` consumed when a migration
        #: reaches that point.
        self._armed: List[Tuple[str, str, float]] = []

    # -- shard registry --------------------------------------------------

    def register_shard(self, document: str, method: str = "") -> None:
        self.directory.mark_sharded(document, method)

    # -- elastic membership ----------------------------------------------

    def add_peer(self, peer_id: str) -> None:
        """Join *peer_id* into the ring and migrate the shards it now owns."""
        if peer_id in self.ring.members:
            return
        before = self._assignment()
        self.ring.add_member(peer_id)
        self.network.metrics.incr("shard_joins")
        self._rebalance(before)

    def retire_peer(self, peer_id: str) -> None:
        """Drain *peer_id* out of the ring (its shards migrate away).

        Refused when retiring would leave fewer members than the
        replication factor needs — the ring never shrinks below
        ``1 + replicas`` members.
        """
        if peer_id not in self.ring.members:
            return
        if len(self.ring.members) <= 1 + self.ring.replicas:
            return
        before = self._assignment()
        self.ring.remove_member(peer_id)
        self.network.metrics.incr("shard_retires")
        self._rebalance(before)

    def _assignment(self) -> Dict[str, List[str]]:
        return self.ring.assignment(sorted(self.directory.sharded_docs))

    def _rebalance(self, before: Dict[str, List[str]]) -> None:
        after = self._assignment()
        moves = moved_keys(before, after)
        if moves:
            self.network.metrics.incr("ring_moves", len(moves))
        for document in sorted(after):
            owners = after[document]
            if not owners:
                continue
            current = self.directory.primary(document)
            if current is not None and current != owners[0]:
                self.start_migration(document, owners[0])
        # Replica-set-only changes (no primary move) are reconciled at
        # settlement — they carry no routing urgency mid-run.

    # -- live migration --------------------------------------------------

    def start_migration(self, document: str, target: str) -> Optional[ShardMigration]:
        if any(m.document == document for m in self._migrations):
            return None  # one migration per shard; settle reconciles the rest
        source = self.directory.primary(document)
        if source is None or source == target:
            return None
        method = self.directory.sharded_docs.get(document, "")
        migration = ShardMigration(document, method, source, target)
        self._migrations.append(migration)
        self.network.events.schedule(0.0, lambda: self._try_copy(migration))
        return migration

    def _try_copy(self, migration: ShardMigration) -> None:
        if migration not in self._migrations:
            return
        self._consume_armed("copy", migration)
        if not self._endpoints_alive(migration):
            self._abort(migration)
            return
        blocked = self._inflight_txns(migration)
        if blocked:
            if not self._defer(migration, blocked, self._try_copy):
                self._abort(migration)
            return
        self._copy_shard(migration)
        migration.state = "copied"
        self.directory.active_migration_routes.add(
            (migration.document, migration.target)
        )
        self.network.events.schedule(
            self.cutover_delay, lambda: self._try_cutover(migration)
        )

    def _try_cutover(self, migration: ShardMigration) -> None:
        if migration not in self._migrations:
            return
        self._consume_armed("cutover", migration)
        if not self._endpoints_alive(migration):
            self._abort(migration)
            return
        blocked = self._inflight_txns(migration)
        if blocked:
            if not self._defer(migration, blocked, self._try_cutover):
                self._abort(migration)
            return
        self._finish(migration)

    def _copy_shard(self, migration: ShardMigration) -> None:
        """Ship the shard to the target: document clone (ids preserved,
        clean state — the quiescence barrier already held) plus the
        co-located service, and a staging marker in the scratch space
        that the cutover removes (crash diagnostics)."""
        if migration.target not in self.directory.document_map.get(
            migration.document, []
        ):
            self.replication.replicate_document(migration.document, migration.target)
        if migration.method and migration.target not in self.directory.service_map.get(
            migration.method, []
        ):
            self.replication.replicate_service(migration.method, migration.target)
        if self.scratch is not None:
            path = os.path.join(
                self.scratch.path("migrations"),
                f"{migration.document}.stage",
            )
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(f"{migration.source} -> {migration.target}\n")
            migration.stage_path = path

    def _finish(self, migration: ShardMigration) -> None:
        """Atomic cutover: flip directory ownership in one step, rewrite
        §3.3 chains around the old holder, drop the staging marker.

        The source *remains* a holder — a crashed source resolving an
        in-doubt share later must still ship its entries, which requires
        holder membership on the commit path; settlement trims holder
        lists back to the ring's assignment.
        """
        self.directory.flip_primary(migration.document, migration.target)
        self._rewrite_chains(migration)
        self.directory.active_migration_routes.discard(
            (migration.document, migration.target)
        )
        self._remove_stage(migration)
        migration.state = "done"
        self._migrations.remove(migration)
        self.network.metrics.incr("migrations")

    def _abort(self, migration: ShardMigration) -> None:
        migration.state = "aborted"
        self.directory.active_migration_routes.discard(
            (migration.document, migration.target)
        )
        self._remove_stage(migration)
        self._migrations.remove(migration)
        self.network.metrics.incr("migration_aborts")

    # -- barriers --------------------------------------------------------

    def _defer(self, migration, blocked: Set[str], retry) -> bool:
        """Count newly deferred transactions and reschedule the phase;
        False when the defer budget is spent (the migration parks and
        settlement takes over)."""
        fresh = blocked - migration.deferred
        if fresh:
            self.network.metrics.incr("migration_deferred_txns", len(fresh))
            migration.deferred |= fresh
        migration.defer_count += 1
        if migration.defer_count > self.max_defers:
            return False
        self.network.events.schedule(self.defer_delay, lambda: retry(migration))
        return True

    def _inflight_txns(self, migration: ShardMigration) -> Set[str]:
        """Unfinished transactions at the source with log entries
        touching the migrating document — the quiescence predicate."""
        peer = self.network.get_peer(migration.source)
        blocked: Set[str] = set()
        for txn_id, context in peer.manager.contexts.items():
            if context.is_finished:
                continue
            if any(
                entry.document_name == migration.document
                for entry in peer.manager.log.entries_for(txn_id)
            ):
                blocked.add(txn_id)
        return blocked

    def _endpoints_alive(self, migration: ShardMigration) -> bool:
        return self.network.is_alive(migration.source) and self.network.is_alive(
            migration.target
        )

    # -- chain rewrite (§3.3 around the old holder) ----------------------

    def _rewrite_chains(self, migration: ShardMigration) -> None:
        """Substitute the target for the source in every transaction
        chain where the source no longer has an unfinished share — so
        future disconnection routing flows around the old holder."""
        source_peer = self.network.get_peer(migration.source)
        target_super = bool(
            getattr(self.network.get_peer(migration.target), "super_peer", False)
        )
        for peer_id in sorted(self.network.peers()):
            peer = self.network.get_peer(peer_id)
            if peer.disconnected:
                continue
            chains = getattr(peer, "chains", None)
            if not chains:
                continue
            for txn_id in sorted(chains):
                if (
                    source_peer.manager.has_context(txn_id)
                    and not source_peer.manager.contexts[txn_id].is_finished
                ):
                    continue
                chain = chains[txn_id]
                if chain.contains(migration.source) and chain.substitute(
                    migration.source, migration.target, target_super
                ):
                    self.network.metrics.incr("chains_rewritten")

    # -- crash faults ----------------------------------------------------

    def arm_crash(self, role: str, point: str, restart_delay: float) -> None:
        """Queue a ``crash_during_migration`` fault: when the next
        migration reaches *point* (``copy``/``cutover``), crash its
        *role* endpoint (``source``/``target``) and schedule an
        in-doubt rejoin after *restart_delay*."""
        self._armed.append((role, point, restart_delay))

    def _consume_armed(self, point: str, migration: ShardMigration) -> None:
        for index, (role, armed_point, delay) in enumerate(self._armed):
            if armed_point != point:
                continue
            del self._armed[index]
            victim = migration.source if role == "source" else migration.target
            self._crash_peer(victim, delay)
            return

    def _crash_peer(self, peer_id: str, restart_delay: float) -> None:
        peer = self.network.get_peer(peer_id)
        if peer.disconnected:
            return
        peer.crash()

        def restart() -> None:
            if peer.disconnected:
                peer.rejoin(mode="in_doubt")

        self.network.events.schedule(restart_delay, restart)

    # -- settlement ------------------------------------------------------

    def settle(self) -> None:
        """Reconcile placement with the ring after the run drains.

        Parked/aborted migrations, crash-interrupted copies and
        replica-set changes all converge here: every sharded key ends up
        held by exactly its ring assignment (primary first), stray
        copies are dropped, missing copies are cloned from a surviving
        holder.  Runs after ``ReplicationManager.settle`` so clone
        sources are already converged.
        """
        for migration in list(self._migrations):
            self._abort(migration)
        self._armed.clear()
        for document in sorted(self.directory.sharded_docs):
            want = self.ring.lookup(document)
            if not want:
                continue
            holders = self.directory.document_map.setdefault(document, [])
            method = self.directory.sharded_docs.get(document, "")
            for target in want:
                target_peer = self.network.get_peer(target)
                if document not in target_peer.documents:
                    source = next(
                        (
                            h
                            for h in holders
                            if self.network.is_alive(h)
                            and document in self.network.get_peer(h).documents
                        ),
                        None,
                    )
                    if source is None:
                        continue  # no surviving copy: the oracle flags shard_lost
                    self._clone(document, source, target)
                if method and target not in self.directory.service_map.get(method, []):
                    self.replication.replicate_service(method, target)
            if holders and holders[0] != want[0]:
                # The primary move a parked migration never finished.
                self.network.metrics.incr("migrations")
            for stray in holders:
                if stray not in want:
                    self.network.get_peer(stray).documents.pop(document, None)
            holders[:] = list(want)
            if method:
                service_holders = self.directory.service_map.setdefault(method, [])
                service_holders[:] = list(want)
        self.directory.active_migration_routes.clear()

    def _clone(self, document: str, source: str, target: str) -> None:
        from repro.axml.document import AXMLDocument

        source_doc = self.network.get_peer(source).get_axml_document(document)
        copy = source_doc.document.clone_tree(
            preserve_ids=True, name=document, parse_equivalent=True
        )
        self.network.get_peer(target).host_document(
            AXMLDocument(copy, name=document)
        )

    def _remove_stage(self, migration: ShardMigration) -> None:
        if migration.stage_path and os.path.exists(migration.stage_path):
            os.remove(migration.stage_path)
        migration.stage_path = None
