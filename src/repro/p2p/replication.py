"""Document and service replication across peers.

"AXML documents (or fragments of the documents) and services may be
replicated on multiple peers" [2].  Replication matters transactionally
in two places:

* forward recovery may retry an invocation "using a replicated peer"
  (§3.2's ``axml:retry`` with an alternative ``axml:sc``);
* peer-independent compensation can be executed against a replica when
  the original provider disconnected — the combination that makes
  atomicity guaranteeable for non-super peers (see
  :mod:`repro.txn.spheres`).

Originally the manager kept replicas *content-synchronized at
replication time* only, which made retry-on-replica succeed strictly by
construction.  It is now a real subsystem (see ``docs/REPLICATION.md``):

* **WAL shipping** — when a holder commits a transaction share, the
  committed :class:`~repro.txn.wal.LogEntry` frames touching replicated
  documents are streamed to every other holder over the simulated
  network (:class:`~repro.p2p.messages.WalShipMessage`, batched by
  ``ship_batch``), re-using the exact per-entry XML codec the on-disk
  WAL uses.  Replicas apply the frames to their copies and return
  acked high-water marks (:class:`~repro.p2p.messages.WalShipAck`).
* **Deterministic failover** — when a primary dies mid-transaction,
  :func:`repro.txn.recovery.attempt_forward_recovery` asks
  :meth:`failover_selector` for a replacement: the most-caught-up live
  replica, ties broken by peer id (never dict-iteration order).  The
  chosen replica first replays its shipped-but-unapplied tail, then
  becomes the new primary for the dead peer's replicated documents.
* **Settlement** — :meth:`settle` flushes every pending ship buffer,
  lifts lag, applies remaining inboxes, and re-synchronizes stale
  holders (crash-restarted peers) by full content copy from the current
  primary, so the chaos oracle's ``replica_diverged`` predicate can
  demand byte-equal replica content after every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.axml.document import AXMLDocument
from repro.errors import P2PError
from repro.p2p.messages import WalShipAck, WalShipMessage
from repro.p2p.network import SimNetwork
from repro.query.parser import parse_action
from repro.query.update import apply_action
from repro.txn.wal import LogEntry, entry_bytes, entry_from_xml, entry_to_xml


@dataclass
class _ShipChannel:
    """Shipping state of one (source holder → replica holder) pair.

    Seq numbers live in the *source* peer's WAL seq space.  ``pending``
    holds committed entries not yet put on the wire (the ship batch);
    ``inbox`` holds delivered frames the replica has not applied yet
    (it is lagging, or delivery raced settlement).
    """

    source: str
    replica: str
    pending: List[LogEntry] = field(default_factory=list)
    inbox: List[LogEntry] = field(default_factory=list)
    #: Highest seq put on the wire / acked by the replica / applied.
    shipped_seq: int = 0
    acked_seq: int = 0
    applied_seq: int = 0
    #: Seqs shipped but not yet acked (the in-flight window).
    unacked: List[int] = field(default_factory=list)

    @property
    def received_seq(self) -> int:
        """How far the replica *could* catch up by replaying its inbox."""
        inbox_max = max((e.seq for e in self.inbox), default=0)
        return max(self.applied_seq, inbox_max)


class ReplicationManager:
    """Replica placement, WAL shipping, and deterministic failover.

    Tracks which peers hold which documents/services, ships committed
    WAL entries between holders, and selects failover targets
    (``docs/REPLICATION.md``)."""

    def __init__(self, network: SimNetwork, ship_batch: int = 1):
        self.network = network
        if ship_batch < 1:
            raise P2PError(f"ship_batch must be >= 1, got {ship_batch}")
        #: Committed entries per channel buffered before one ship message.
        self.ship_batch = ship_batch
        #: The placement directory — the single source of routing truth.
        #: The manager's holder maps live *in* the directory (the
        #: ``_document_holders`` / ``_service_holders`` properties
        #: delegate), so shard migrations flipping directory ownership
        #: are instantly visible to replication, failover and routing.
        from repro.p2p.sharding import PlacementDirectory

        self.directory = PlacementDirectory(network)
        #: Methods that were explicitly *replicated* (not merely hosted
        #: on several peers) — the only ones failover may retarget.
        self._replicated_methods: Set[str] = set()
        #: (source peer, replica peer) → shipping channel.
        self._channels: Dict[Tuple[str, str], _ShipChannel] = {}
        #: Replicas currently refusing to apply/ack (the ``lag_replica``
        #: chaos fault); frames accumulate in their inboxes.
        self._lagged: Set[str] = set()
        #: (document, holder) pairs whose replica content must be
        #: re-synchronized from the primary at settlement (crash
        #: restarts, failed ship deliveries).
        self._stale: Set[Tuple[str, str]] = set()
        #: Logical operations already present on a peer — the dedup set
        #: that keeps a failed-over share from being applied twice when
        #: both the old and the new primary eventually ship it.
        self._applied_keys: Set[Tuple[str, str, str, str]] = set()
        # Make the manager discoverable by peers (peer-independent
        # compensation fallback looks it up on the network).
        network.replication = self

    @property
    def _document_holders(self) -> Dict[str, List[str]]:
        """document name → peer ids holding a replica (primary first)."""
        return self.directory.document_map

    @property
    def _service_holders(self) -> Dict[str, List[str]]:
        """method name → peer ids hosting the service."""
        return self.directory.service_map

    # -- documents ---------------------------------------------------------

    def register_primary(self, document_name: str, peer_id: str) -> None:
        self._document_holders.setdefault(document_name, [])
        holders = self._document_holders[document_name]
        if peer_id not in holders:
            holders.insert(0, peer_id)

    def replicate_document(self, document_name: str, to_peer_id: str) -> AXMLDocument:
        """Copy the document (with node ids) onto another peer.

        Preserved ids are what make a replica usable for compensation:
        compensating actions address nodes by id, and the replica resolves
        the same ids.
        """
        holders = self.holders(document_name)
        if not holders:
            raise P2PError(f"no peer holds document {document_name!r}")
        source_peer = self.network.get_peer(holders[0])
        target_peer = self.network.get_peer(to_peer_id)
        source_doc = source_peer.get_axml_document(document_name)
        # Structural clone preserving ids: identical trees with identical
        # node identities, independent storage (parse_equivalent keeps the
        # copy byte-for-byte what the old serialize→parse route produced).
        copy = source_doc.document.clone_tree(
            preserve_ids=True, name=document_name, parse_equivalent=True
        )
        replica = AXMLDocument(copy, name=document_name)
        target_peer.host_document(replica)
        if to_peer_id not in self._document_holders[document_name]:
            self._document_holders[document_name].append(to_peer_id)
        self.network.metrics.incr("documents_replicated")
        return replica

    def holders(self, document_name: str) -> List[str]:
        """Peers holding the document, primary first."""
        return list(self._document_holders.get(document_name, []))

    def alive_holder(self, document_name: str) -> Optional[str]:
        for peer_id in self.holders(document_name):
            if self.network.is_alive(peer_id):
                return peer_id
        return None

    def replicated_documents(self) -> List[str]:
        """Names of documents with more than one holder, sorted."""
        return sorted(
            name for name, holders in self._document_holders.items()
            if len(holders) > 1
        )

    def has_replicas(self) -> bool:
        """Whether anything is actually replicated (the commit path's
        fast guard: without replicas, shipping is a no-op)."""
        return bool(self._replicated_methods) or any(
            len(holders) > 1 for holders in self._document_holders.values()
        )

    # -- services -------------------------------------------------------------

    def register_service(self, method_name: str, peer_id: str) -> None:
        holders = self._service_holders.setdefault(method_name, [])
        if peer_id not in holders:
            holders.append(peer_id)

    def replicate_service(self, method_name: str, to_peer_id: str) -> None:
        """Mirror a service implementation onto another peer."""
        holders = self._service_holders.get(method_name, [])
        if not holders:
            raise P2PError(f"no peer hosts service {method_name!r}")
        source_peer = self.network.get_peer(holders[0])
        target_peer = self.network.get_peer(to_peer_id)
        service = source_peer.registry.lookup(method_name)
        target_peer.host_service(service)
        self.register_service(method_name, to_peer_id)
        self._replicated_methods.add(method_name)
        self.network.metrics.incr("services_replicated")

    def is_replicated_method(self, method_name: str) -> bool:
        """Whether the service was explicitly replicated (failover- and
        dedup-eligible); merely hosting it on several peers is not."""
        return method_name in self._replicated_methods

    def service_holders(self, method_name: str) -> List[str]:
        return list(self._service_holders.get(method_name, []))

    def alive_service_holder(self, method_name: str) -> Optional[str]:
        for peer_id in self.service_holders(method_name):
            if self.network.is_alive(peer_id):
                return peer_id
        return None

    # -- WAL shipping: primary side ----------------------------------------

    def _channel(self, source: str, replica: str) -> _ShipChannel:
        key = (source, replica)
        channel = self._channels.get(key)
        if channel is None:
            channel = _ShipChannel(source=source, replica=replica)
            self._channels[key] = channel
        return channel

    @staticmethod
    def _entry_key(peer_id: str, entry: LogEntry) -> Tuple[str, str, str, str]:
        return (peer_id, entry.txn_id, entry.document_name, entry.action_xml)

    def on_committed(
        self, source_peer: str, txn_id: str, entries: Sequence[LogEntry]
    ) -> None:
        """A holder committed its share of *txn_id*: route the committed
        entries that touch replicated documents to every other holder.

        Called by the peer **after** ``commit_local`` succeeded (whose
        truncate tombstone is itself a WAL flush barrier, so every
        shipped entry is already durable at the source — the write-ahead
        rule extends across the wire).
        """
        # Write-ahead across the wire: nothing ships unless it is durable
        # at the source.  Normally the commit tombstone's flush barrier
        # already guarantees this; the explicit flush is the safety net
        # for callers that bypass the truncate path.
        wal = getattr(self.network.get_peer(source_peer), "wal", None)
        if wal is not None and entries:
            if max(e.seq for e in entries) > wal.last_durable_seq:
                wal.flush()
        shipped_any = False
        for entry in entries:
            holders = self._document_holders.get(entry.document_name, [])
            if len(holders) < 2 or source_peer not in holders:
                continue
            # The committing peer's own copy already shows this logical
            # operation; remember that so a later failover ship of the
            # same operation from another holder is not applied twice.
            self._applied_keys.add(self._entry_key(source_peer, entry))
            for holder in holders:
                if holder == source_peer:
                    continue
                channel = self._channel(source_peer, holder)
                channel.pending.append(entry)
                if (
                    entry.document_name,
                    holder,
                ) in self.directory.active_migration_routes:
                    # The WAL tail of a live shard migration: committed
                    # between the copy barrier and the cutover.
                    self.network.metrics.incr("migration_entries_shipped")
                shipped_any = True
        if not shipped_any:
            return
        for (source, _replica), channel in sorted(self._channels.items()):
            if source == source_peer and len(channel.pending) >= self.ship_batch:
                self._ship(channel)

    def _ship(self, channel: _ShipChannel) -> None:
        """Put one channel's pending batch on the wire."""
        if not channel.pending:
            return
        batch = list(channel.pending)
        channel.pending.clear()
        message = WalShipMessage(
            from_peer=channel.source,
            to_peer=channel.replica,
            entries_xml=[entry_to_xml(e) for e in batch],
            first_seq=batch[0].seq,
            last_seq=batch[-1].seq,
        )
        metrics = self.network.metrics
        metrics.incr("ship_frames", len(batch))
        metrics.incr("ship_bytes", sum(entry_bytes(e) for e in batch))
        # Record the in-flight window *before* the send: delivery is
        # synchronous in the simulator, so the replica's ack can arrive
        # inside the notify call — seqs added afterwards would never be
        # pruned and the window would read as permanently lagged.
        channel.shipped_seq = max(channel.shipped_seq, batch[-1].seq)
        shipped_seqs = [e.seq for e in batch]
        channel.unacked.extend(shipped_seqs)
        metrics.record_value("ship_lag", float(len(channel.unacked)))
        delivered = self.network.notify(channel.source, channel.replica, message)
        if not delivered:
            # Receiver (or sender) dead: re-queue the batch in order so
            # the next ship attempt (at the latest, settlement's flush
            # after every peer reconnected) retries it.  Dropping the
            # frames here would silently under-replicate a holder that
            # may later be *promoted* — resync can't repair the primary.
            channel.pending[:0] = batch
            channel.unacked = [
                s for s in channel.unacked if s not in shipped_seqs
            ]
            metrics.incr("ship_failures")
            return

    # -- WAL shipping: replica side ----------------------------------------

    def on_ship(self, replica_peer: str, message: WalShipMessage) -> None:
        """A replica received a batch of shipped frames."""
        channel = self._channel(message.from_peer, replica_peer)
        channel.inbox.extend(entry_from_xml(x) for x in message.entries_xml)
        if replica_peer in self._lagged:
            return  # frames accumulate; no apply, no ack
        self._apply_inbox(channel)
        self._send_ack(channel)

    def _apply_inbox(self, channel: _ShipChannel) -> None:
        """Apply a channel's delivered-but-unapplied frames in seq order.

        Frames for a (txn, document) the receiver itself holds live log
        entries for are *deferred*, not dropped: the receiver's own share
        is a different operation of the same transaction (shipping it now
        would race the receiver's own commit/abort decision), so the
        frame stays in the inbox until that share resolves — at the
        latest, settlement's apply pass after every in-doubt share was
        decided.  Dropping it instead would silently lose a sibling
        operation's effect on this replica.
        """
        if not channel.inbox:
            return
        peer = self.network.get_peer(channel.replica)
        metrics = self.network.metrics
        deferred: List[LogEntry] = []
        for entry in sorted(channel.inbox, key=lambda e: e.seq):
            key = self._entry_key(channel.replica, entry)
            if key in self._applied_keys:
                # Already present: this peer executed the same logical
                # operation itself (it was the failover target) or got it
                # from another holder.
                channel.applied_seq = max(channel.applied_seq, entry.seq)
                metrics.incr("ship_dedup_skips")
                continue
            if self._has_own_share(peer, entry):
                # The receiving holder has its own in-doubt log entries
                # for this (txn, document): don't pre-apply — keep the
                # frame for after the receiver's share resolves.
                deferred.append(entry)
                metrics.incr("ship_deferred_entries")
                continue
            channel.applied_seq = max(channel.applied_seq, entry.seq)
            if entry.kind == "query":
                # Replaying a query would re-materialize embedded service
                # calls on the replica; queries don't carry replicable
                # forward effects of their own.
                metrics.incr("ship_skipped_queries")
                continue
            self._applied_keys.add(key)
            document = peer.get_axml_document(entry.document_name)
            apply_action(document.document, parse_action(entry.action_xml))
            metrics.incr("replica_applied_entries")
        channel.inbox[:] = deferred

    @staticmethod
    def _has_own_share(peer, entry: LogEntry) -> bool:
        manager = getattr(peer, "manager", None)
        if manager is None:
            return False
        return any(
            own.document_name == entry.document_name
            for own in manager.log.entries_for(entry.txn_id)
        )

    def _send_ack(self, channel: _ShipChannel) -> None:
        ack = WalShipAck(
            from_peer=channel.replica,
            to_peer=channel.source,
            acked_seq=channel.applied_seq,
        )
        self.network.notify(channel.replica, channel.source, ack)

    def on_ack(self, source_peer: str, message: WalShipAck) -> None:
        """The primary learned a replica's applied high-water mark."""
        channel = self._channel(source_peer, message.from_peer)
        channel.acked_seq = max(channel.acked_seq, message.acked_seq)
        channel.unacked = [s for s in channel.unacked if s > channel.acked_seq]

    # -- lag fault ---------------------------------------------------------

    def lag_replica(self, peer_id: str, duration: float = 0.0) -> None:
        """Chaos fault: *peer_id* stops applying/acking shipped frames
        (they pile up in its inboxes) until *duration* virtual seconds
        pass — or settlement, whichever comes first."""
        self._lagged.add(peer_id)
        self.network.metrics.incr("replica_lag_events")
        if duration > 0:
            self.network.events.schedule(
                duration, lambda: self.unlag_replica(peer_id)
            )

    def unlag_replica(self, peer_id: str) -> None:
        if peer_id not in self._lagged:
            return
        self._lagged.discard(peer_id)
        for (_source, replica), channel in sorted(self._channels.items()):
            if replica != peer_id or not channel.inbox:
                continue
            if not self.network.is_alive(peer_id):
                continue
            self._apply_inbox(channel)
            self._send_ack(channel)

    def is_lagged(self, peer_id: str) -> bool:
        return peer_id in self._lagged

    # -- failover ----------------------------------------------------------

    def caught_up_seq(self, source_peer: str, replica_peer: str) -> int:
        """How far *replica_peer* can catch up with *source_peer*'s WAL
        (applied frames plus the replayable inbox tail)."""
        channel = self._channels.get((source_peer, replica_peer))
        if channel is None:
            return 0
        return channel.received_seq

    def failover_selector(
        self, dead_peer: str, method_name: str
    ) -> Optional[Callable[[], Optional[str]]]:
        """A per-retry selector for ``attempt_forward_recovery`` — or
        ``None`` when the service was never replicated (a method merely
        *hosted* on several peers is not failover-eligible), so legacy
        (no-replication) paths are byte-identical."""
        if method_name not in self._replicated_methods:
            return None
        others = [
            p for p in self._service_holders.get(method_name, []) if p != dead_peer
        ]
        if not others:
            return None
        return lambda: self.select_failover(dead_peer, method_name)

    def select_failover(self, dead_peer: str, method_name: str) -> Optional[str]:
        """Pick and prepare the failover target for *method_name* after
        *dead_peer* died: the most-caught-up live replica, ties broken by
        peer id (deterministic — never dict-iteration order).  The chosen
        replica replays its shipped tail first and is promoted to primary
        for the dead peer's replicated documents."""
        candidates = [
            p
            for p in self._service_holders.get(method_name, [])
            if p != dead_peer and self.network.is_alive(p)
        ]
        if not candidates:
            return None
        ranked = sorted(
            candidates, key=lambda p: (-self.caught_up_seq(dead_peer, p), p)
        )
        chosen = ranked[0]
        metrics = self.network.metrics
        chosen_seq = self.caught_up_seq(dead_peer, chosen)
        for passed in ranked[1:]:
            if self.caught_up_seq(dead_peer, passed) < chosen_seq:
                # A naive pick could have landed on this less-caught-up
                # replica and served stale state.
                metrics.incr("stale_reads_prevented")
        self._catch_up(dead_peer, chosen)
        self._promote(dead_peer, chosen)
        metrics.incr("failovers")
        return chosen

    def _catch_up(self, dead_peer: str, chosen: str) -> None:
        """Replay the shipped-but-unapplied tail on the failover target."""
        self._lagged.discard(chosen)
        channel = self._channels.get((dead_peer, chosen))
        if channel is None:
            return
        replayed = len(channel.inbox)
        if replayed:
            self._apply_inbox(channel)
            self.network.metrics.incr("failover_replay_entries", replayed)

    def _promote(self, dead_peer: str, chosen: str) -> None:
        """Make *chosen* the primary for every replicated document whose
        current primary is unavailable (and that *chosen* also holds).

        "Unavailable" covers both *dead_peer* itself and a previously
        promoted primary that has since died (the double-failover case:
        invocations still name the original provider, so the selector is
        asked about *dead_peer* while ``holders[0]`` is someone else)."""
        for name in sorted(self._document_holders):
            holders = self._document_holders[name]
            if len(holders) < 2 or chosen not in holders:
                continue
            primary = holders[0]
            if primary == dead_peer or not self.network.is_alive(primary):
                holders.remove(chosen)
                holders.insert(0, chosen)

    # -- membership events -------------------------------------------------

    def on_peer_rejoined(self, peer_id: str) -> None:
        """A crash-restarted peer's replica copies may have missed ships
        (and its own in-doubt shares resolve against a possibly moved
        primary): schedule every replicated document it holds for a
        settlement resync."""
        for name, holders in self._document_holders.items():
            if len(holders) > 1 and peer_id in holders:
                self._stale.add((name, peer_id))

    # -- settlement --------------------------------------------------------

    def settle(self, drain: Optional[Callable[[], None]] = None) -> None:
        """Deterministic end-of-run convergence.

        1. lift every lag fault (applying accumulated inboxes);
        2. flush every pending ship buffer;
        3. *drain* the event queue (delayed deliveries), then apply any
           frames that were still in flight;
        4. re-synchronize stale holders by full content copy from the
           current primary.

        After this, every alive holder of a replicated document must
        equal its primary — the oracle's ``replica_diverged`` predicate.
        """
        for peer_id in sorted(self._lagged):
            self.unlag_replica(peer_id)
        for _key, channel in sorted(self._channels.items()):
            self._ship(channel)
        if drain is not None:
            drain()
        for _key, channel in sorted(self._channels.items()):
            if channel.inbox and self.network.is_alive(channel.replica):
                self._apply_inbox(channel)
                self._send_ack(channel)
        if drain is not None:
            drain()
        for name, holder in sorted(self._stale):
            self._resync(name, holder)
        self._stale.clear()

    def _resync_source(self, document_name: str, holder: str) -> Optional[str]:
        """The holder to copy from: the first alive holder that is NOT
        itself stale.

        The primary is preferred (holders order), but it is not always
        eligible — a replica promoted by failover and then crashed is
        still ``holders[0]`` yet missed ships while it was down.  Every
        alive non-stale holder is a superset at this point: ships route
        all-to-all per document and the pending buffers were flushed
        before the resync phase, so its content is the converged state.
        """
        for candidate in self._document_holders.get(document_name, []):
            if candidate == holder or (document_name, candidate) in self._stale:
                continue
            if self.network.is_alive(candidate):
                return candidate
        return None

    def _resync(self, document_name: str, holder: str) -> None:
        """State transfer: overwrite *holder*'s replica content with a
        current holder's (crash restarts can leave a holder beyond
        incremental repair — e.g. its share was resolved after the
        primary role moved)."""
        holders = self._document_holders.get(document_name, [])
        if holder not in holders:
            return
        if not self.network.is_alive(holder):
            return
        source = self._resync_source(document_name, holder)
        if source is None:
            return
        primary = self.network.get_peer(source)
        target = self.network.get_peer(holder)
        source_doc = primary.get_axml_document(document_name)
        copy = source_doc.document.clone_tree(
            preserve_ids=True, name=document_name, parse_equivalent=True
        )
        target.host_document(AXMLDocument(copy, name=document_name))
        self.network.metrics.incr("replica_resyncs")
