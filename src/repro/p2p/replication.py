"""Document and service replication across peers.

"AXML documents (or fragments of the documents) and services may be
replicated on multiple peers" [2].  Replication matters transactionally
in two places:

* forward recovery may retry an invocation "using a replicated peer"
  (§3.2's ``axml:retry`` with an alternative ``axml:sc``);
* peer-independent compensation can be executed against a replica when
  the original provider disconnected — the combination that makes
  atomicity guaranteeable for non-super peers (see
  :mod:`repro.txn.spheres`).

The manager keeps replicas *content-synchronized at replication time*;
continuous synchronization is out of the paper's scope (its replication
citation [2] owns that problem), so experiments re-replicate when they
need fresh replicas.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.axml.document import AXMLDocument
from repro.errors import P2PError
from repro.p2p.network import SimNetwork
from repro.xmlstore.serializer import rebind_ids, serialize


class ReplicationManager:
    """Tracks which peers hold which documents/services."""

    def __init__(self, network: SimNetwork):
        self.network = network
        #: document name → peer ids holding a replica (in creation order).
        self._document_holders: Dict[str, List[str]] = {}
        #: method name → peer ids hosting the service.
        self._service_holders: Dict[str, List[str]] = {}
        # Make the manager discoverable by peers (peer-independent
        # compensation fallback looks it up on the network).
        network.replication = self

    # -- documents ---------------------------------------------------------

    def register_primary(self, document_name: str, peer_id: str) -> None:
        self._document_holders.setdefault(document_name, [])
        holders = self._document_holders[document_name]
        if peer_id not in holders:
            holders.insert(0, peer_id)

    def replicate_document(self, document_name: str, to_peer_id: str) -> AXMLDocument:
        """Copy the document (with node ids) onto another peer.

        Preserved ids are what make a replica usable for compensation:
        compensating actions address nodes by id, and the replica resolves
        the same ids.
        """
        holders = self.holders(document_name)
        if not holders:
            raise P2PError(f"no peer holds document {document_name!r}")
        source_peer = self.network.get_peer(holders[0])
        target_peer = self.network.get_peer(to_peer_id)
        source_doc = source_peer.get_axml_document(document_name)
        # Serialize with ids and rebind on the copy: identical trees with
        # identical node identities, independent storage.
        text = serialize(source_doc.document, include_ids=True)
        from repro.xmlstore.parser import parse_document

        copy = parse_document(text, name=document_name)
        rebind_ids(copy)
        replica = AXMLDocument(copy, name=document_name)
        target_peer.host_document(replica)
        if to_peer_id not in self._document_holders[document_name]:
            self._document_holders[document_name].append(to_peer_id)
        self.network.metrics.incr("documents_replicated")
        return replica

    def holders(self, document_name: str) -> List[str]:
        """Peers holding the document, primary first."""
        return list(self._document_holders.get(document_name, []))

    def alive_holder(self, document_name: str) -> Optional[str]:
        for peer_id in self.holders(document_name):
            if self.network.is_alive(peer_id):
                return peer_id
        return None

    # -- services -------------------------------------------------------------

    def register_service(self, method_name: str, peer_id: str) -> None:
        holders = self._service_holders.setdefault(method_name, [])
        if peer_id not in holders:
            holders.append(peer_id)

    def replicate_service(self, method_name: str, to_peer_id: str) -> None:
        """Mirror a service implementation onto another peer."""
        holders = self._service_holders.get(method_name, [])
        if not holders:
            raise P2PError(f"no peer hosts service {method_name!r}")
        source_peer = self.network.get_peer(holders[0])
        target_peer = self.network.get_peer(to_peer_id)
        service = source_peer.registry.lookup(method_name)
        target_peer.host_service(service)
        self.register_service(method_name, to_peer_id)
        self.network.metrics.incr("services_replicated")

    def service_holders(self, method_name: str) -> List[str]:
        return list(self._service_holders.get(method_name, []))

    def alive_service_holder(self, method_name: str) -> Optional[str]:
        for peer_id in self.service_holders(method_name):
            if self.network.is_alive(peer_id):
                return peer_id
        return None
