"""The simulated P2P substrate: peers, network, chains, replication.

"In true P2P style, we consider that the set of peers in the AXML system
keeps changing with peers joining and leaving the system arbitrarily"
(§1).  This package provides the network the transactional protocols
run on: synchronous service invocation with virtual-time latency,
asynchronous notifications, ping-based liveness, scripted disconnection
injection, super peers, document/service replication, and the
active-peer chains of §3.3.
"""

from repro.p2p.chain import ChainNode, PeerChain
from repro.p2p.messages import (
    AbortMessage,
    DisconnectNotice,
    InvokeRequest,
    InvokeResult,
    RedirectedResult,
)
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.p2p.replication import ReplicationManager
from repro.p2p.failure import FailureInjector, PingMonitor
from repro.p2p.distribution import (
    FragmentPlacement,
    distribute_fragment,
    remote_subquery,
)
from repro.p2p.streams import SiblingStream, StreamData, open_stream
from repro.p2p.sharding import PlacementDirectory, ShardCoordinator, ShardRing

__all__ = [
    "ChainNode",
    "PeerChain",
    "AbortMessage",
    "DisconnectNotice",
    "InvokeRequest",
    "InvokeResult",
    "RedirectedResult",
    "SimNetwork",
    "AXMLPeer",
    "ReplicationManager",
    "FailureInjector",
    "PingMonitor",
    "FragmentPlacement",
    "distribute_fragment",
    "remote_subquery",
    "SiblingStream",
    "StreamData",
    "open_stream",
    "PlacementDirectory",
    "ShardCoordinator",
    "ShardRing",
]
