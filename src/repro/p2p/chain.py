"""Active-peer chains (§3.3).

"A more efficient solution can be achieved if AP3 passes the list of
active peers [AP1* → AP2 → [AP3 → AP6] || [AP4 → AP5]] also while
invoking the service S6 of AP6."

The chain is the invocation tree of one transaction, piggybacked on
every invocation so that *any* peer detecting a disconnection can route
around it: children find their grandparent or the closest super peer,
parents find the orphaned descendants, siblings find everybody.

The bracket notation round-trips through :meth:`PeerChain.to_text` /
:meth:`PeerChain.from_text` (we write ``->`` for the arrow); super peers
carry the paper's ``*`` suffix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import P2PError


@dataclass
class ChainNode:
    """One peer in the invocation tree."""

    peer_id: str
    super_peer: bool = False
    children: List["ChainNode"] = field(default_factory=list)
    parent: Optional["ChainNode"] = None

    def add_child(self, peer_id: str, super_peer: bool = False) -> "ChainNode":
        child = ChainNode(peer_id, super_peer, parent=self)
        self.children.append(child)
        return child

    def iter(self) -> Iterator["ChainNode"]:
        yield self
        for child in self.children:
            yield from child.iter()

    @property
    def label(self) -> str:
        return f"{self.peer_id}*" if self.super_peer else self.peer_id


class PeerChain:
    """The active-peer list of one transaction."""

    def __init__(self, root_peer: str, root_super: bool = False):
        self.root = ChainNode(root_peer, root_super)

    # -- construction -----------------------------------------------------

    def add_invocation(
        self, parent_peer: str, child_peer: str, child_super: bool = False
    ) -> ChainNode:
        """Record that *parent_peer* invoked a service on *child_peer*."""
        parent = self.find(parent_peer)
        if parent is None:
            raise P2PError(f"peer {parent_peer!r} is not in the chain")
        return parent.add_child(child_peer, child_super)

    # -- lookup --------------------------------------------------------------

    def find(self, peer_id: str) -> Optional[ChainNode]:
        for node in self.root.iter():
            if node.peer_id == peer_id:
                return node
        return None

    def contains(self, peer_id: str) -> bool:
        return self.find(peer_id) is not None

    def parent_of(self, peer_id: str) -> Optional[str]:
        node = self.find(peer_id)
        if node is None or node.parent is None:
            return None
        return node.parent.peer_id

    def children_of(self, peer_id: str) -> List[str]:
        node = self.find(peer_id)
        if node is None:
            return []
        return [c.peer_id for c in node.children]

    def siblings_of(self, peer_id: str) -> List[str]:
        """Other children of the same parent (§3.3d's data-passing peers)."""
        node = self.find(peer_id)
        if node is None or node.parent is None:
            return []
        return [c.peer_id for c in node.parent.children if c.peer_id != peer_id]

    def descendants_of(self, peer_id: str) -> List[str]:
        node = self.find(peer_id)
        if node is None:
            return []
        return [n.peer_id for n in node.iter() if n.peer_id != peer_id]

    def ancestors_of(self, peer_id: str) -> List[str]:
        """Ancestors nearest-first — the fallback order of §3.3(b):
        "AP6 can try the next closest peer (AP1) or the closest super
        peer … in the list"."""
        node = self.find(peer_id)
        out: List[str] = []
        if node is None:
            return out
        current = node.parent
        while current is not None:
            out.append(current.peer_id)
            current = current.parent
        return out

    def closest_super_peer(self, peer_id: str) -> Optional[str]:
        """Nearest super-peer ancestor of *peer_id* (or None)."""
        node = self.find(peer_id)
        if node is None:
            return None
        current = node.parent
        while current is not None:
            if current.super_peer:
                return current.peer_id
            current = current.parent
        return None

    # -- extended relations (the conclusion's future-work chaining) ---------

    def uncles_of(self, peer_id: str) -> List[str]:
        """Siblings of the peer's parent.

        The paper's conclusion: "Currently, the 'chaining' mechanism is
        restricted to the parent, children and sibling peers.  We are
        exploring the feasibility of extending the same to uncles,
        cousins, etc." — implemented here as an optional scope.
        """
        node = self.find(peer_id)
        if node is None or node.parent is None:
            return []
        return self.siblings_of(node.parent.peer_id)

    def cousins_of(self, peer_id: str) -> List[str]:
        """Children of the peer's uncles."""
        out: List[str] = []
        for uncle in self.uncles_of(peer_id):
            out.extend(self.children_of(uncle))
        return out

    def relatives_of(self, peer_id: str, scope: str = "immediate") -> List[str]:
        """The peers the disconnection of *peer_id* should be reported to.

        ``immediate`` — parent, children, siblings (the paper's §3.3
        protocol); ``extended`` — additionally the grandparent, uncles
        and cousins (the conclusion's extension).  The dead peer itself
        is never included; duplicates are removed preserving order.
        """
        if scope not in ("immediate", "extended"):
            raise P2PError(f"unknown chain scope {scope!r}")
        candidates: List[str] = []
        parent = self.parent_of(peer_id)
        if parent:
            candidates.append(parent)
        candidates.extend(self.children_of(peer_id))
        candidates.extend(self.siblings_of(peer_id))
        if scope == "extended":
            grandparent = self.parent_of(parent) if parent else None
            if grandparent:
                candidates.append(grandparent)
            candidates.extend(self.uncles_of(peer_id))
            candidates.extend(self.cousins_of(peer_id))
        seen = set()
        out: List[str] = []
        for candidate in candidates:
            if candidate != peer_id and candidate not in seen:
                seen.add(candidate)
                out.append(candidate)
        return out

    def peers(self) -> List[str]:
        return [n.peer_id for n in self.root.iter()]

    # -- failover rewrite (§3.3 around a dead primary) ----------------------

    def substitute(
        self, old_peer: str, new_peer: str, super_peer: bool = False
    ) -> bool:
        """Rewrite the chain around a dead peer: *new_peer* takes over
        *old_peer*'s position (parent edge and all child edges), so the
        tree keeps routing for every descendant of the replaced node —
        including interior §3.3 nodes, not just leaves.

        If *new_peer* already participates in the transaction, the dead
        node is spliced out instead and its children are grafted under
        the existing node.  Returns False when *old_peer* is not in the
        chain (nothing to rewrite).
        """
        node = self.find(old_peer)
        if node is None or old_peer == new_peer:
            return False
        existing = self.find(new_peer)
        if existing is None:
            node.peer_id = new_peer
            node.super_peer = super_peer
            return True
        if node.parent is None:
            # The root (origin) cannot be spliced out; leave it alone.
            return False
        for child in node.children:
            child.parent = existing
            existing.children.append(child)
        node.children = []
        node.parent.children.remove(node)
        node.parent = None
        return True

    # -- serialization (piggybacked on invocations) -----------------------------

    def to_text(self) -> str:
        return f"[{self._format(self.root)}]"

    def _format(self, node: ChainNode) -> str:
        if not node.children:
            return node.label
        if len(node.children) == 1:
            return f"{node.label} -> {self._format(node.children[0])}"
        parts = " || ".join(f"[{self._format(c)}]" for c in node.children)
        return f"{node.label} -> {parts}"

    @classmethod
    def from_text(cls, text: str) -> "PeerChain":
        parser = _ChainParser(text)
        root = parser.parse()
        chain = cls.__new__(cls)
        chain.root = root
        return chain

    def merge(self, other: "PeerChain") -> int:
        """Fold *other*'s edges into this chain; returns edges added.

        Used when an invocation returns: the callee's view may contain
        deeper invocations this peer has not seen.  Edges whose parent is
        unknown here are skipped (they will arrive once their own parent
        edge does).
        """
        added = 0
        # Breadth-first so parents are inserted before their children.
        pending = [other.root]
        while pending:
            node = pending.pop(0)
            for child in node.children:
                pending.append(child)
                if self.contains(child.peer_id) or not self.contains(node.peer_id):
                    continue
                self.add_invocation(node.peer_id, child.peer_id, child.super_peer)
                added += 1
        return added

    def copy(self) -> "PeerChain":
        """Independent deep copy of the chain.

        A direct structural copy of the node tree — equivalent to (and
        pinned against, in ``tests/test_p2p_chain.py``) the historical
        ``from_text``-of-``to_text`` round trip, without the
        format/parse cost on every piggybacked invocation.
        """
        chain = PeerChain.__new__(PeerChain)
        chain.root = _copy_chain_node(self.root, None)
        return chain

    def __repr__(self) -> str:
        return f"PeerChain({self.to_text()})"


def _copy_chain_node(
    node: ChainNode, parent: Optional[ChainNode]
) -> ChainNode:
    copy = ChainNode(node.peer_id, node.super_peer, parent=parent)
    copy.children = [_copy_chain_node(child, copy) for child in node.children]
    return copy


class _ChainParser:
    """Recursive-descent parser for the bracket notation."""

    def __init__(self, text: str):
        self.text = text.strip()
        self.pos = 0

    def parse(self) -> ChainNode:
        self._expect("[")
        node = self._parse_node()
        self._expect("]")
        self._skip_ws()
        if self.pos != len(self.text):
            raise P2PError(f"trailing characters in chain text: {self.text!r}")
        return node

    def _parse_node(self) -> ChainNode:
        label = self._parse_label()
        super_peer = label.endswith("*")
        node = ChainNode(label.rstrip("*"), super_peer)
        self._skip_ws()
        if self.text.startswith("->", self.pos):
            self.pos += 2
            self._skip_ws()
            if self.text.startswith("[", self.pos):
                while True:
                    self._expect("[")
                    child = self._parse_node()
                    self._expect("]")
                    child.parent = node
                    node.children.append(child)
                    self._skip_ws()
                    if self.text.startswith("||", self.pos):
                        self.pos += 2
                        self._skip_ws()
                    else:
                        break
            else:
                child = self._parse_node()
                child.parent = node
                node.children.append(child)
        return node

    def _parse_label(self) -> str:
        self._skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-*."
        ):
            self.pos += 1
        if start == self.pos:
            raise P2PError(
                f"expected a peer label at position {self.pos} in {self.text!r}"
            )
        return self.text[start : self.pos]

    def _expect(self, token: str) -> None:
        self._skip_ws()
        if not self.text.startswith(token, self.pos):
            raise P2PError(
                f"expected {token!r} at position {self.pos} in {self.text!r}"
            )
        self.pos += len(token)

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t":
            self.pos += 1
