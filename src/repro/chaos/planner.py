"""Seed-driven fault planning for the chaos harness.

A :class:`FaultPlanner` samples a :class:`FaultPlan` — a list of
:class:`FaultEvent` — from the simulation RNG.  Four event kinds cover
the failure dimensions of §3.2–§3.3:

* ``service_fault`` — a scripted :class:`~repro.errors.ServiceFault` at
  a random depth of the invocation tree (``before_execute`` = no work
  done, ``after_execute`` = the Fig. 1 shape);
* ``disconnect`` — a peer leaves at a random virtual time (§1:
  "joining and leaving the system arbitrarily");
* ``disconnect_point`` — a peer dies at a protocol point of a
  *neighbour's* execution: scripting ``dead=parent, trigger=child``
  at ``after_local_work``/``before_return`` opens the §3.3(b) window
  (completed work that cannot be returned);
* ``message_chaos`` — one-way notifications are dropped/delayed via the
  network message hook.  Only the §3.3 effort-optimization messages
  (``DisconnectNotice``, ``RedirectedResult``) are interfered with: the
  paper's protocol treats them as best-effort, while commit/abort
  decisions are assumed reliable (see ``docs/CHAOS.md``);
* ``crash`` — a provider's *process* dies at a protocol point, losing
  all volatile state (contexts, in-memory log, chains); it restarts
  ``delay`` later and recovers from its durable WAL
  (``rejoin(mode="in_doubt")``, see ``docs/DURABILITY.md``).  Only
  planned when the run enables ``durability``, and sampled from a
  *separate* RNG stream so existing seeds' plans keep their exact
  event prefix;
* ``kill_primary`` / ``lag_replica`` — replication faults (see
  ``docs/REPLICATION.md``): a whole-process crash of a replicated
  primary at an absolute time, and a replica whose WAL-apply loop is
  suspended so it falls behind the shipped stream.  Only planned when
  the run hosts replicas, again from a separate RNG stream;
* ``shard_join`` / ``shard_retire`` / ``crash_during_migration`` —
  elastic-sharding faults (see ``docs/SHARDING.md``): a spare peer
  joins the consistent-hash ring (triggering live shard migrations), a
  member drains out of it, and a migration endpoint crashes at the
  ``copy`` or ``cutover`` barrier.  Only planned when the run enables
  ``sharding``, from the dedicated ``"shardplan"`` stream appended
  after every existing kind — old seeds keep their exact plan prefix.

Every event is a plain dataclass that round-trips through JSON, so a
plan can be minimized (``repro.chaos.shrink``) and replayed from a
repro file byte-for-byte.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.sim.rng import SeededRng, stable_seed

#: The fault name every planned service fault raises; chaos clusters
#: with ``handlers=True`` install retry policies keyed on it.
CHAOS_FAULT = "ChaosFault"

KINDS = (
    "service_fault",
    "disconnect",
    "disconnect_point",
    "message_chaos",
    "crash",
    "kill_primary",
    "lag_replica",
    "shard_join",
    "shard_retire",
    "crash_during_migration",
)


@dataclass(frozen=True)
class FaultEvent:
    """One planned failure.  Unused fields stay at their defaults."""

    kind: str
    peer: str = ""          # faulted / disconnected peer
    method: str = ""        # service method involved
    point: str = ""         # injection point
    time: float = 0.0       # absolute virtual time (kind=disconnect)
    trigger: str = ""       # executing peer (kind=disconnect_point)
    fault_name: str = CHAOS_FAULT
    drop_rate: float = 0.0  # kind=message_chaos
    delay_rate: float = 0.0
    max_delay: float = 0.0
    delay: float = 0.0      # restart delay (kind=crash)
    #: kind=crash with checkpointing: the crash lands mid-publish and
    #: tears the newest checkpoint file (recovery must fall back).
    tear_checkpoint: bool = False

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict with defaulted fields elided (stable, compact)."""
        out: Dict[str, object] = {}
        for key, value in asdict(self).items():
            if key == "kind" or value != FaultEvent.__dataclass_fields__[key].default:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        return cls(**data)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPlan:
    """An ordered fault schedule (frozen; shrink builds new plans)."""

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __len__(self) -> int:
        return len(self.events)

    def without(self, index: int) -> "FaultPlan":
        """The same plan minus the event at *index* (for shrinking)."""
        return FaultPlan(
            tuple(e for i, e in enumerate(self.events) if i != index)
        )

    def to_dict(self) -> Dict[str, object]:
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        return cls(
            tuple(FaultEvent.from_dict(e) for e in data.get("events", []))
        )


class FaultPlanner:
    """Samples a deterministic fault schedule for one chaos run.

    All randomness comes from ``stable_seed(seed, "plan")`` so the plan
    depends only on the seed and the knobs — never on ``PYTHONHASHSEED``
    or wall-clock anything.
    """

    def __init__(
        self,
        seed: int,
        providers: Sequence[str],
        provider_methods: Dict[str, str],
        txns: int,
        fault_rate: float,
        horizon: float,
        disconnect_origins: bool = False,
        crash_rate: float = 0.0,
        checkpoints: bool = False,
        replicas: int = 0,
        sharding: bool = False,
        spares: Sequence[str] = (),
    ):
        self.seed = seed
        self.providers = list(providers)
        self.provider_methods = dict(provider_methods)
        self.txns = txns
        self.fault_rate = fault_rate
        self.horizon = horizon
        self.disconnect_origins = disconnect_origins
        self.crash_rate = crash_rate
        #: Sample mid-checkpoint crash variants (``tear_checkpoint``).
        #: Off by default: the extra draw would perturb the crashplan
        #: stream of existing checkpoint-less seeds.
        self.checkpoints = checkpoints
        #: Replicas per provider document in the cluster.  > 0 adds the
        #: replication fault kinds (``kill_primary``/``lag_replica``)
        #: from their own RNG stream, appended last — existing seeds'
        #: plans keep their exact event prefix.
        self.replicas = replicas
        #: Elastic sharding: plan ring joins/retires for the *spares*
        #: and migration-point crashes, from the ``"shardplan"`` stream
        #: appended after every existing kind — plans for existing
        #: seeds without sharding are byte-identical to before.
        self.sharding = sharding
        self.spares = list(spares)

    def plan(self) -> FaultPlan:
        rng = SeededRng(stable_seed(self.seed, "plan"))
        count = int(round(self.fault_rate * self.txns))
        events: List[FaultEvent] = []
        message_chaos_used = False
        for _ in range(count):
            roll = rng.random()
            if roll < 0.45 or not self.providers:
                events.append(self._service_fault(rng))
            elif roll < 0.70:
                events.append(self._disconnect(rng))
            elif roll < 0.90 or message_chaos_used:
                events.append(self._disconnect_point(rng))
            else:
                message_chaos_used = True
                events.append(self._message_chaos(rng))
        # Crash events come from their own stream, appended after the
        # main events: a plan for an existing seed with crash_rate=0
        # is byte-identical to what earlier versions produced.
        if self.crash_rate > 0 and self.providers:
            crash_rng = SeededRng(stable_seed(self.seed, "crashplan"))
            # Tear flags come from yet another stream: enabling
            # checkpoints must not perturb the peers/points/delays the
            # crashplan stream hands out for a given seed.
            tear_rng = (
                SeededRng(stable_seed(self.seed, "tearplan"))
                if self.checkpoints else None
            )
            for _ in range(int(round(self.crash_rate * self.txns))):
                events.append(self._crash(crash_rng, tear_rng))
        # Replication events come from yet another stream, appended after
        # the crash events for the same reason: a plan for an existing
        # seed with replicas=0 is byte-identical to before.
        if self.replicas > 0 and self.providers:
            repl_rng = SeededRng(stable_seed(self.seed, "replplan"))
            if self.crash_rate > 0:
                for _ in range(int(round(self.crash_rate * self.txns))):
                    events.append(self._kill_primary(repl_rng))
            for _ in range(int(round(self.fault_rate * self.txns))):
                events.append(self._lag_replica(repl_rng))
        # Sharding events come from the dedicated "shardplan" stream,
        # appended after everything else: plans for existing seeds
        # without sharding keep their exact event prefix.
        if self.sharding and self.providers:
            shard_rng = SeededRng(stable_seed(self.seed, "shardplan"))
            for spare in self.spares:
                join_time = round(shard_rng.uniform(0.05, 0.6 * self.horizon), 4)
                events.append(
                    FaultEvent(kind="shard_join", peer=spare, time=join_time)
                )
                if shard_rng.random() < 0.5:
                    retire_time = round(
                        shard_rng.uniform(join_time + 0.3, self.horizon + 0.3), 4
                    )
                    events.append(
                        FaultEvent(
                            kind="shard_retire", peer=spare, time=retire_time
                        )
                    )
            if len(self.providers) > 1 and shard_rng.random() < 0.5:
                peer = shard_rng.choice(self.providers)
                retire_time = round(
                    shard_rng.uniform(0.05, 0.6 * self.horizon), 4
                )
                events.append(
                    FaultEvent(kind="shard_retire", peer=peer, time=retire_time)
                )
            if self.crash_rate > 0:
                for _ in range(int(round(self.crash_rate * self.txns))):
                    events.append(self._crash_during_migration(shard_rng))
        return FaultPlan(tuple(events))

    # -- samplers ------------------------------------------------------

    def _service_fault(self, rng: SeededRng) -> FaultEvent:
        peer = rng.choice(self.providers)
        return FaultEvent(
            kind="service_fault",
            peer=peer,
            method=self.provider_methods[peer],
            point=rng.choice(["before_execute", "after_execute"]),
        )

    def _disconnect(self, rng: SeededRng) -> FaultEvent:
        peer = rng.choice(self.providers)
        time = round(rng.uniform(0.05, self.horizon), 4)
        return FaultEvent(kind="disconnect", peer=peer, time=time)

    def _disconnect_point(self, rng: SeededRng) -> FaultEvent:
        """§3.3(b): the trigger's *invoker* dies while it executes.

        The provider tree is a binary heap (``AP2``'s delegating parent
        is ``AP1``, …), so a non-root provider's parent edge is known
        statically.  With a single provider there is no parent edge to
        cut; fall back to a plain timed disconnect.
        """
        children = [p for p in self.providers if self._index(p) > 1]
        if not children:
            return self._disconnect(rng)
        trigger = rng.choice(children)
        parent = f"AP{self._index(trigger) // 2}"
        return FaultEvent(
            kind="disconnect_point",
            peer=parent,
            trigger=trigger,
            method=self.provider_methods[trigger],
            point=rng.choice(["after_local_work", "before_return"]),
        )

    def _crash(self, rng: SeededRng, tear_rng: SeededRng = None) -> FaultEvent:
        peer = rng.choice(self.providers)
        from repro.p2p.failure import POINTS

        point = rng.choice(list(POINTS))
        delay = round(rng.uniform(0.2, 1.0), 4)
        tear = bool(tear_rng is not None and tear_rng.random() < 0.25)
        return FaultEvent(
            kind="crash",
            peer=peer,
            method=self.provider_methods[peer],
            point=point,
            delay=delay,
            tear_checkpoint=tear,
        )

    def _kill_primary(self, rng: SeededRng) -> FaultEvent:
        """Crash a replicated primary at an absolute time.

        Unlike ``crash``, the kill is not tied to a protocol point: the
        primary dies whole-process at ``time`` (losing volatile state)
        and restarts ``delay`` later.  In-flight invocations against it
        fail over to the most-caught-up replica.
        """
        peer = rng.choice(self.providers)
        time = round(rng.uniform(0.05, self.horizon), 4)
        delay = round(rng.uniform(0.2, 1.0), 4)
        return FaultEvent(kind="kill_primary", peer=peer, time=time, delay=delay)

    def _lag_replica(self, rng: SeededRng) -> FaultEvent:
        """Suspend one replica's WAL apply loop for ``delay`` virtual time.

        ``peer`` names the *primary* whose replica set is lagged; the
        runner resolves it to a concrete replica holder at apply time
        (the planner does not know the placement map).  A lagged replica
        buffers shipped frames without applying or acking them — the
        shape that makes failover pick the *other*, caught-up replica.
        """
        peer = rng.choice(self.providers)
        time = round(rng.uniform(0.05, self.horizon), 4)
        delay = round(rng.uniform(0.5, 2.0), 4)
        return FaultEvent(kind="lag_replica", peer=peer, time=time, delay=delay)

    def _crash_during_migration(self, rng: SeededRng) -> FaultEvent:
        """Crash one endpoint of the next live shard migration.

        ``trigger`` names the role (``source``/``target``), ``point``
        the migration phase (``copy``/``cutover``).  The runner *arms*
        the fault on the shard coordinator; it fires when a migration
        reaches that phase (there is no way to know at plan time which
        peer will be migrating).  The victim restarts ``delay`` later
        and recovers from its WAL (``rejoin(mode="in_doubt")``).
        """
        role = rng.choice(["source", "target"])
        point = rng.choice(["copy", "cutover"])
        delay = round(rng.uniform(0.2, 1.0), 4)
        return FaultEvent(
            kind="crash_during_migration", trigger=role, point=point, delay=delay
        )

    def _message_chaos(self, rng: SeededRng) -> FaultEvent:
        return FaultEvent(
            kind="message_chaos",
            drop_rate=round(rng.uniform(0.1, 0.5), 4),
            delay_rate=round(rng.uniform(0.1, 0.5), 4),
            max_delay=round(rng.uniform(0.05, 0.5), 4),
        )

    @staticmethod
    def _index(provider: str) -> int:
        return int(provider[2:])
