"""Build, run and settle one deterministic chaos experiment.

One run = a seeded concurrent workload (``repro.sim.scheduler``) over a
generated cluster, overlaid with a seeded :class:`FaultPlan`, followed
by a deterministic **settlement** phase and the
:class:`~repro.chaos.oracle.AtomicityOracle` sweep.

Cluster shape
-------------
``origins`` client peers (``C1`` …, super-peers, documents ``O1`` …)
issue all transactions; ``providers`` service peers (``AP1`` …,
documents ``D1`` …) form a binary-heap delegation tree: ``APi`` hosts a
:class:`~repro.services.service.DelegatingService` ``Si`` that inserts
one ``<chaos txn="$tag" step="$step"/>`` marker into ``Di`` and
delegates to ``S(2i)``/``S(2i+1)``.  Parameters are forwarded, so one
``InvokeOp`` leaves exactly one marker per document of the target's
subtree — the addressable-effect scheme the oracle checks.  Faults
target providers only: an origin is the paper's single commit point,
and the scheduler client would die with it.

Settlement
----------
After the scheduler drains: (1) run every pending event (delayed
messages, late planned disconnects); (2) reconnect dead peers —
deliberately *not* via :meth:`AXMLPeer.rejoin`, which compensates every
active share and would wrongly undo the share of a transaction that
committed while the peer was dead; (3) resolve each peer's in-doubt
shares against the origin's decision (``resolve_in_doubt``), which is
exactly what a returning peer can learn by asking any chain member;
(4) release per-transaction protocol state (``forget_transaction``).
Only then does the oracle sweep.

Mutation modes (``config.mutate``) deliberately break the protocol to
prove the oracle catches real violations; see :data:`MUTATIONS`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.oracle import AtomicityOracle, ExpectedEffect, Violation
from repro.chaos.planner import CHAOS_FAULT, FaultEvent, FaultPlan, FaultPlanner
from repro.obs import run_summary
from repro.obs.prof import profiled
from repro.p2p.messages import DisconnectNotice, RedirectedResult
from repro.query.parser import parse_action
from repro.query.update import apply_action
from repro.services.descriptor import ParamSpec, ServiceDescriptor
from repro.services.service import DelegatingService
from repro.sim.rng import SeededRng, stable_seed
from repro.sim.scheduler import COMMITTED, InvokeOp, TxnResult, TxnSpec
from repro.txn.recovery import FaultPolicy

#: Deliberate protocol breakages; each trips a distinct oracle kind.
MUTATIONS = (
    "skip_undo",      # drop one undo entry before compensating -> compensation_missing
    "double_apply",   # apply one insert twice, log it once      -> effect_duplicated
    "stale_chain",    # skip one forget_transaction              -> orphan_chain
    # drop the newest disk-recovered entry at restart -> compensation_missing
    # (proves recovery replays from the on-disk WAL, not volatile state)
    "crash_skip_undo",
)


@dataclass(frozen=True)
class ChaosConfig:
    """Every knob of one chaos run (JSON-round-trippable)."""

    seed: int = 7
    txns: int = 20
    providers: int = 6
    origins: int = 2
    concurrency: int = 4
    ops_per_txn: int = 3
    invoke_fraction: float = 0.6
    fault_rate: float = 0.2
    arrival_rate: float = 20.0
    op_gap: float = 0.01
    handlers: bool = False
    mutate: str = ""
    #: Give every provider a durable on-disk WAL (scratch directories).
    durability: bool = False
    #: Expected crash events per run = crash_rate * txns (needs durability).
    crash_rate: float = 0.0
    #: WAL checkpoint interval in appended entries; 0 = no checkpoints.
    checkpoint_every: int = 0
    #: WAL group-commit batch size; 1 = flush every frame (PR 5 path).
    wal_batch: int = 1
    #: Replicas per provider document/service (0 = no replication).
    #: > 0 turns on WAL shipping, deterministic failover and the
    #: ``kill_primary``/``lag_replica`` fault kinds.
    replicas: int = 0
    #: Committed entries buffered per ship channel before one
    #: :class:`~repro.p2p.messages.WalShipMessage` goes on the wire.
    ship_batch: int = 1
    #: Elastic sharding: place provider documents/services by a
    #: consistent-hash ring (``repro.p2p.sharding``) instead of the
    #: static one-doc-per-provider map, and plan ``shard_join`` /
    #: ``shard_retire`` / ``crash_during_migration`` faults.
    sharding: bool = False
    #: Spare peers (``SP1`` …) that start outside the ring and join it
    #: mid-run, triggering live shard migrations (needs ``sharding``).
    shard_spares: int = 0

    def __post_init__(self) -> None:
        if self.mutate and self.mutate not in MUTATIONS:
            raise ValueError(
                f"unknown mutation {self.mutate!r}; use one of {MUTATIONS}"
            )
        if self.providers < 1 or self.origins < 1 or self.txns < 1:
            raise ValueError("providers, origins and txns must all be >= 1")
        if self.crash_rate > 0 and not self.durability:
            raise ValueError(
                "crash_rate > 0 requires durability=True: a crashed peer "
                "without an on-disk WAL loses its log unrecoverably"
            )
        if self.mutate == "crash_skip_undo" and not self.durability:
            raise ValueError(
                "mutate='crash_skip_undo' targets WAL recovery; it "
                "requires durability=True"
            )
        if (self.checkpoint_every > 0 or self.wal_batch > 1) and not self.durability:
            raise ValueError(
                "checkpoint_every/wal_batch tune the on-disk WAL; they "
                "require durability=True"
            )
        if self.checkpoint_every < 0 or self.wal_batch < 1:
            raise ValueError(
                "checkpoint_every must be >= 0 and wal_batch >= 1"
            )
        if self.replicas < 0 or self.ship_batch < 1:
            raise ValueError("replicas must be >= 0 and ship_batch >= 1")
        if self.replicas >= self.providers and self.replicas > 0:
            raise ValueError(
                f"replicas={self.replicas} needs at least "
                f"{self.replicas + 1} providers: each replica is placed "
                "on a distinct provider other than the primary"
            )
        if self.ship_batch > 1 and self.replicas == 0:
            raise ValueError(
                "ship_batch tunes WAL shipping; it requires replicas > 0"
            )
        if self.shard_spares < 0:
            raise ValueError("shard_spares must be >= 0")
        if self.shard_spares > 0 and not self.sharding:
            raise ValueError(
                "shard_spares adds ring members; it requires sharding=True"
            )

    @property
    def horizon(self) -> float:
        """Virtual-time window planned disconnects are sampled from."""
        return self.txns / self.arrival_rate + 2.0

    def to_dict(self) -> Dict[str, object]:
        out = dict(asdict(self))
        # Elide the PR 7 WAL knobs at their defaults so summaries and
        # replay files of checkpoint-less runs stay byte-identical to
        # what earlier versions emitted.
        if self.checkpoint_every == 0:
            out.pop("checkpoint_every")
        if self.wal_batch == 1:
            out.pop("wal_batch")
        # Same rule for the PR 8 replication knobs.
        if self.replicas == 0:
            out.pop("replicas")
        if self.ship_batch == 1:
            out.pop("ship_batch")
        # ... and the sharding knobs.
        if not self.sharding:
            out.pop("sharding")
        if self.shard_spares == 0:
            out.pop("shard_spares")
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosConfig":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class ChaosRunResult:
    """Everything one run produced; ``ok`` iff the oracle found nothing."""

    config: ChaosConfig
    plan: FaultPlan
    results: List[TxnResult]
    violations: List[Violation]
    summary: Dict[str, object]
    cluster: object = field(repr=False, default=None)
    expected: List[ExpectedEffect] = field(repr=False, default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def oracle(self) -> AtomicityOracle:
        """A fresh oracle over this run's outcomes (for re-checking a
        cluster after poking at it — used by tests and notebooks)."""
        return AtomicityOracle(
            outcomes={r.label: r.status for r in self.results},
            expected=self.expected,
            txn_ids={r.label: list(r.txn_ids) for r in self.results},
        )


class _MutationState:
    """Once-only firing shared by every wrapped peer."""

    def __init__(self) -> None:
        self.fired = False


# ---------------------------------------------------------------------------
# cluster construction
# ---------------------------------------------------------------------------

def _provider_children(index: int, providers: int) -> List[int]:
    return [c for c in (2 * index, 2 * index + 1) if c <= providers]


def _provider_subtree(index: int, providers: int) -> List[int]:
    out, stack = [], [index]
    while stack:
        i = stack.pop()
        out.append(i)
        stack.extend(reversed(_provider_children(i, providers)))
    return out


def _marker_template(document: str) -> str:
    return (
        '<action type="insert"><data><chaos txn="$tag" step="$step"/></data>'
        f"<location>Select d from d in {document}//items;</location></action>"
    )


def build_chaos_cluster(config: ChaosConfig):
    """The generated deployment: returns ``(cluster, origins, providers)``."""
    from repro.api import Cluster

    cluster = Cluster()
    scratch = None
    if config.durability:
        from repro.sim.kernel import ScratchSpace

        scratch = ScratchSpace()
    #: The run's scratch root (None without durability); run_chaos
    #: removes it after the oracle sweep.
    cluster.scratch = scratch
    origins = [f"C{j}" for j in range(1, config.origins + 1)]
    providers = [f"AP{i}" for i in range(1, config.providers + 1)]
    for j, origin in enumerate(origins, start=1):
        cluster.add_peer(origin, super_peer=True)
        cluster.host_document(origin, f"<O{j}><items/></O{j}>", name=f"O{j}")
    for i, provider in enumerate(providers, start=1):
        cluster.add_peer(provider, **_durability_kwargs(config, scratch, provider))
        if config.sharding:
            # Placement is the ring's job (_place_sharded), not the
            # static one-doc-per-provider map.
            continue
        cluster.host_document(provider, f"<D{i}><items/></D{i}>", name=f"D{i}")
        cluster.host_service(provider, _chaos_service(i, config.providers))
    for spare in _spare_names(config):
        cluster.add_peer(spare, **_durability_kwargs(config, scratch, spare))
    if config.handlers:
        policy = [FaultPolicy(fault_names={CHAOS_FAULT}, retry_times=2)]
        for peer_id in origins + providers:
            for i in range(1, config.providers + 1):
                cluster.peer(peer_id).set_fault_policy(f"S{i}", policy)
    if config.sharding:
        _place_sharded(cluster, config, providers)
    elif config.replicas > 0:
        _place_replicas(cluster, config, providers)
    return cluster, origins, providers


def _durability_kwargs(config: ChaosConfig, scratch, peer_id: str) -> Dict[str, object]:
    if scratch is None:
        return {}
    if config.checkpoint_every > 0 or config.wal_batch > 1:
        from repro.txn.modes import DurabilityPolicy

        return {
            "durability": DurabilityPolicy(
                directory=scratch.path(peer_id),
                wal_batch=config.wal_batch,
                checkpoint_every=config.checkpoint_every,
            )
        }
    # Bare path: the exact PR 5 wiring, so checkpoint-less runs stay
    # byte-identical.
    return {"durability": scratch.path(peer_id)}


def _spare_names(config: ChaosConfig) -> List[str]:
    return [f"SP{k}" for k in range(1, config.shard_spares + 1)]


def _chaos_service(index: int, providers: int) -> DelegatingService:
    """The marker service ``S<index>``: inserts one ``<chaos/>`` marker
    into ``D<index>`` and delegates down the binary heap.  Delegation
    targets are the *build-time* peers; under sharding the placement
    directory reroutes them at invoke time."""
    delegations = [
        (f"AP{c}", f"S{c}") for c in _provider_children(index, providers)
    ]
    descriptor = ServiceDescriptor(
        method_name=f"S{index}",
        kind="delegating",
        params=(ParamSpec("tag"), ParamSpec("step")),
        target_document=f"D{index}",
        description="chaos marker service",
    )
    return DelegatingService(
        descriptor, delegations,
        local_action_template=_marker_template(f"D{index}"),
    )


def _place_sharded(cluster, config: ChaosConfig, providers: Sequence[str]) -> None:
    """Ring-driven placement: every shard ``D<i>`` (with its co-located
    service ``S<i>``) lands on ``ring.lookup("D<i>")`` — primary first,
    then ``config.replicas`` replica holders.  Spares start *outside*
    the ring; planned ``shard_join`` events bring them in mid-run.

    As with :func:`_place_replicas`, every peer gets a
    ``PeerDisconnected`` retry policy for every service so forward
    recovery engages (and consults the directory/failover selector)
    when a shard holder dies mid-invocation.
    """
    from repro.p2p.sharding import ShardCoordinator, ShardRing
    from repro.txn.recovery import DISCONNECT_FAULT

    cluster.replication.ship_batch = config.ship_batch
    ring = ShardRing(
        seed=stable_seed(config.seed, "ring"),
        members=providers,
        vnodes=16,
        replicas=config.replicas,
    )
    coordinator = ShardCoordinator(
        cluster.network, cluster.replication, ring,
        scratch=getattr(cluster, "scratch", None),
    )
    cluster.shard_coordinator = coordinator
    for i in range(1, config.providers + 1):
        document, method = f"D{i}", f"S{i}"
        owners = ring.lookup(document)
        cluster.host_document(
            owners[0], f"<D{i}><items/></D{i}>", name=document
        )
        cluster.host_service(owners[0], _chaos_service(i, config.providers))
        coordinator.register_shard(document, method)
        for holder in owners[1:]:
            cluster.replication.replicate_document(document, holder)
            cluster.replication.replicate_service(method, holder)
    policies = [FaultPolicy(fault_names={DISCONNECT_FAULT}, retry_times=2)]
    if config.handlers:
        policies.insert(0, FaultPolicy(fault_names={CHAOS_FAULT}, retry_times=2))
    for peer in cluster.peers.values():
        for i in range(1, config.providers + 1):
            peer.set_fault_policy(f"S{i}", policies)


def _place_replicas(cluster, config: ChaosConfig, providers: Sequence[str]) -> None:
    """Seeded replica placement: each provider's document *and* service
    get ``config.replicas`` copies on distinct other providers, drawn
    from the dedicated ``"placement"`` RNG stream (placement depends on
    the seed and the knobs only — never on dict order).

    Every peer also gets a ``PeerDisconnected`` retry policy for every
    service: forward recovery must engage (and consult the failover
    selector) when a replicated provider dies mid-invocation —
    without a handler the §3.2 default is backward recovery and the
    replicas would never be asked.
    """
    from repro.txn.recovery import DISCONNECT_FAULT

    cluster.replication.ship_batch = config.ship_batch
    rng = SeededRng(stable_seed(config.seed, "placement"))
    for provider in providers:
        index = int(provider[2:])
        pool = [p for p in providers if p != provider]
        for _ in range(config.replicas):
            choice = rng.choice(pool)
            pool.remove(choice)
            cluster.replication.replicate_document(f"D{index}", choice)
            cluster.replication.replicate_service(f"S{index}", choice)
    policies = [FaultPolicy(fault_names={DISCONNECT_FAULT}, retry_times=2)]
    if config.handlers:
        # Runs after (and replaces) the handlers block's assignment, so
        # the chaos-fault retry policy must be carried along.
        policies.insert(0, FaultPolicy(fault_names={CHAOS_FAULT}, retry_times=2))
    for peer in cluster.peers.values():
        for i in range(1, config.providers + 1):
            peer.set_fault_policy(f"S{i}", policies)


# ---------------------------------------------------------------------------
# workload generation
# ---------------------------------------------------------------------------

def generate_workload(
    config: ChaosConfig, origins: Sequence[str], providers: Sequence[str]
) -> Tuple[List[TxnSpec], List[ExpectedEffect]]:
    """Seeded specs plus the exact markers each would leave if committed."""
    rng = SeededRng(stable_seed(config.seed, "workload"))
    specs: List[TxnSpec] = []
    expected: List[ExpectedEffect] = []
    for t in range(config.txns):
        label = f"T{t:03d}"
        origin_index = t % len(origins)
        origin = origins[origin_index]
        origin_doc = f"O{origin_index + 1}"
        operations: List[object] = []
        for k in range(config.ops_per_txn):
            step = f"s{k}"
            if rng.random() < config.invoke_fraction:
                target = rng.choice(list(providers))
                index = int(target[2:])
                operations.append(InvokeOp(
                    target, f"S{index}", {"tag": label, "step": step}
                ))
                for m in _provider_subtree(index, config.providers):
                    expected.append(
                        ExpectedEffect(f"AP{m}", f"D{m}", label, step)
                    )
            else:
                operations.append(
                    '<action type="insert">'
                    f'<data><chaos txn="{label}" step="{step}"/></data>'
                    f"<location>Select d from d in {origin_doc}//items;"
                    "</location></action>"
                )
                expected.append(
                    ExpectedEffect(origin, origin_doc, label, step)
                )
        specs.append(TxnSpec(label, origin, tuple(operations)))
    return specs, expected


# ---------------------------------------------------------------------------
# fault application
# ---------------------------------------------------------------------------

def apply_plan(cluster, config: ChaosConfig, plan: FaultPlan) -> None:
    """Script every planned event onto the injector / message hook."""
    message_event: Optional[FaultEvent] = None
    for event in plan.events:
        if config.sharding:
            event = _resharded(cluster, event)
        if event.kind == "service_fault":
            cluster.injector.fault_service(
                event.peer, event.method, event.fault_name,
                times=1, point=event.point,
            )
        elif event.kind == "disconnect":
            cluster.injector.disconnect_at(event.peer, event.time)
        elif event.kind == "disconnect_point":
            cluster.injector.disconnect_peer_during(
                event.peer, event.trigger, event.method, event.point
            )
        elif event.kind == "message_chaos":
            message_event = event
        elif event.kind == "crash":
            cluster.injector.crash_peer_during(
                event.peer, event.method, event.point,
                restart_delay=event.delay,
                tear_checkpoint=event.tear_checkpoint,
            )
        elif event.kind == "kill_primary":
            if config.sharding:
                # The primary of the planned peer's shard moves with
                # migrations; resolve it when the kill fires.
                _schedule_kill_primary(cluster, event)
            else:
                cluster.injector.kill_at(
                    event.peer, event.time, restart_delay=event.delay
                )
        elif event.kind == "lag_replica":
            _schedule_lag(cluster, event)
        elif event.kind == "shard_join":
            cluster.network.events.schedule_at(
                event.time,
                lambda e=event: cluster.shard_coordinator.add_peer(e.peer),
            )
        elif event.kind == "shard_retire":
            cluster.network.events.schedule_at(
                event.time,
                lambda e=event: cluster.shard_coordinator.retire_peer(e.peer),
            )
        elif event.kind == "crash_during_migration":
            cluster.shard_coordinator.arm_crash(
                event.trigger, event.point, event.delay
            )
        else:
            raise ValueError(f"unknown fault event kind {event.kind!r}")
    if message_event is not None:
        _install_message_chaos(cluster, config, message_event)


def _resharded(cluster, event: FaultEvent) -> FaultEvent:
    """Retarget a planned fault at the shard's *current* holders.

    The planner scripts faults against the static heap topology
    (``AP<i>`` runs ``S<i>``); under sharding the ring decides who
    actually executes what, so point faults are remapped to the
    placement directory's primary at apply time.  Timed kinds that the
    runner already resolves at fire time (``kill_primary``,
    ``lag_replica``) and placement-free kinds pass through unchanged.
    """
    directory = cluster.network.directory

    def primary_of(method: str) -> str:
        holders = directory.service_map.get(method, [])
        return holders[0] if holders else ""

    if event.kind in ("service_fault", "crash"):
        peer = primary_of(event.method)
        if peer and peer != event.peer:
            return replace(event, peer=peer)
    elif event.kind == "disconnect_point":
        trigger = primary_of(event.method)
        parent_index = int(event.method[1:]) // 2
        peer = primary_of(f"S{parent_index}") if parent_index >= 1 else ""
        if trigger and peer and peer != trigger:
            return replace(event, peer=peer, trigger=trigger)
    return event


def _schedule_kill_primary(cluster, event: FaultEvent) -> None:
    """Sharded ``kill_primary``: crash whoever is primary for the
    planned peer's shard *when the event fires* (migrations may have
    moved it), restarting in-doubt ``delay`` later."""
    document = f"D{event.peer[2:]}"

    def fire() -> None:
        holders = cluster.network.directory.document_map.get(document, [])
        victim = holders[0] if holders else event.peer
        peer = cluster.network.get_peer(victim)
        if peer.disconnected:
            return
        peer.crash()

        def restart() -> None:
            if peer.disconnected:
                peer.rejoin(mode="in_doubt")

        cluster.network.events.schedule(event.delay, restart)

    cluster.network.events.schedule_at(event.time, fire)


def _schedule_lag(cluster, event: FaultEvent) -> None:
    """Script one ``lag_replica`` event.

    The planned ``peer`` names the *primary* (the planner does not know
    the placement map); the concrete lagged replica is resolved when the
    event fires — the smallest-id live non-primary holder of the
    primary's document at that moment, which is deterministic because
    holder lists and virtual time are.
    """
    document = f"D{event.peer[2:]}"

    def fire() -> None:
        replication = cluster.replication
        holders = replication.holders(document)
        candidates = sorted(
            h for h in holders[1:] if cluster.network.is_alive(h)
        )
        if not candidates:
            return
        replication.lag_replica(candidates[0], duration=event.delay)

    cluster.network.events.schedule_at(event.time, fire)


def _install_message_chaos(cluster, config: ChaosConfig, event: FaultEvent) -> None:
    """Drop/delay the §3.3 best-effort messages via the network hook.

    Decision messages (commit/abort/compensation requests) stay
    reliable: the protocol's atomicity argument assumes they eventually
    arrive, and settlement models exactly that eventuality.
    """
    rng = SeededRng(stable_seed(config.seed, "nethook"))

    def hook(source_id: str, target_id: str, message: object):
        if not isinstance(message, (DisconnectNotice, RedirectedResult)):
            return None
        roll = rng.random()
        if roll < event.drop_rate:
            return "drop"
        if roll < event.drop_rate + event.delay_rate:
            return round(rng.uniform(0.01, event.max_delay), 4)
        return None

    cluster.network.set_message_hook(hook)


# ---------------------------------------------------------------------------
# mutations
# ---------------------------------------------------------------------------

def _install_skip_undo(cluster, providers: Sequence[str], state: _MutationState) -> None:
    """First provider-side compensation silently loses its newest entry."""
    for provider in providers:
        manager = cluster.peer(provider).manager

        def mutated(txn_id, meter=None, _manager=manager, _orig=manager.abort_local):
            if not state.fired:
                entries = _manager.log.entries_for(txn_id)
                if entries:
                    _manager.log._entries.remove(entries[-1])
                    state.fired = True
            return _orig(txn_id, meter)

        manager.abort_local = mutated


def _install_double_apply(cluster, providers: Sequence[str], state: _MutationState) -> None:
    """First provider-side insert is applied twice but logged once."""
    for provider in providers:
        peer = cluster.peer(provider)

        def mutated(records, document_name, action_xml,
                    _peer=peer, _orig=peer.record_changes):
            _orig(records, document_name, action_xml)
            if not state.fired and records:
                apply_action(
                    _peer.get_axml_document(document_name).document,
                    parse_action(action_xml),
                )
                state.fired = True

        peer.record_changes = mutated


def _install_crash_skip_undo(
    cluster, providers: Sequence[str], state: _MutationState
) -> None:
    """First crash recovery silently loses its newest disk-recovered
    entry — the across-a-restart analogue of ``skip_undo``.

    If this is *not* flagged, the restarted peer was compensating from
    somewhere other than the on-disk WAL.
    """
    for provider in providers:
        wal = cluster.peer(provider).wal
        if wal is None:
            continue

        def mutated(_wal=wal, _orig=wal.reload):
            entries = _orig()
            if not state.fired and entries:
                dropped = entries[-1]
                _wal._live = [e for e in _wal._live if e.seq != dropped.seq]
                state.fired = True
                return entries[:-1]
            return entries

        wal.reload = mutated


# ---------------------------------------------------------------------------
# the run
# ---------------------------------------------------------------------------

def run_chaos(config: ChaosConfig, plan: Optional[FaultPlan] = None) -> ChaosRunResult:
    """Execute one chaos run; pass *plan* to replay/shrink a schedule."""
    cluster, origins, providers = build_chaos_cluster(config)
    try:
        if plan is None:
            plan = FaultPlanner(
                seed=config.seed,
                providers=providers,
                provider_methods={p: f"S{p[2:]}" for p in providers},
                txns=config.txns,
                fault_rate=config.fault_rate,
                horizon=config.horizon,
                crash_rate=config.crash_rate,
                checkpoints=config.checkpoint_every > 0,
                replicas=config.replicas,
                sharding=config.sharding,
                spares=_spare_names(config),
            ).plan()
        apply_plan(cluster, config, plan)

        mutation = _MutationState()
        if config.mutate == "skip_undo":
            _install_skip_undo(cluster, providers, mutation)
        elif config.mutate == "double_apply":
            _install_double_apply(cluster, providers, mutation)
        elif config.mutate == "crash_skip_undo":
            _install_crash_skip_undo(cluster, providers, mutation)

        specs, expected = generate_workload(config, origins, providers)
        scheduler = cluster.scheduler(
            max_inflight=config.concurrency,
            op_gap=config.op_gap,
            seed=stable_seed(config.seed, "sched"),
        )
        scheduler.submit_open_loop(specs, rate=config.arrival_rate)
        # The whole hot region is profiled: prof counters are logical event
        # counts, so they land in the summary deterministically (identical
        # across reruns and across serial vs. parallel sweep execution).
        with profiled(cluster.metrics):
            results = scheduler.run()
            violations = _settle_and_check(
                cluster, config, results, expected, mutation
            )
        summary = {
            "version": 1,
            "config": config.to_dict(),
            "plan": plan.to_dict(),
            "outcomes": {r.label: r.status for r in sorted(results, key=lambda r: r.label)},
            "violations": [v.to_dict() for v in violations],
            "metrics": run_summary(cluster.metrics),
        }
        cluster.metrics.incr("chaos_runs")
        if violations:
            cluster.metrics.incr("chaos_violations", len(violations))
        return ChaosRunResult(
            config, plan, results, violations, summary, cluster, expected
        )
    finally:
        _cleanup_durability(cluster)


def _cleanup_durability(cluster) -> None:
    """Close WAL handles and remove the run's scratch root.

    Runs after the oracle sweep (which reads the WALs), so no tempdir
    artifact outlives the run even when it raised.
    """
    scratch = getattr(cluster, "scratch", None)
    if scratch is None:
        return
    for peer in cluster.peers.values():
        if peer.wal is not None:
            peer.wal.close()
            if peer.manager.log is not None:
                peer.manager.log.sink = None
    scratch.cleanup()


def _settle_and_check(
    cluster,
    config: ChaosConfig,
    results: List[TxnResult],
    expected: List[ExpectedEffect],
    mutation: _MutationState,
) -> List[Violation]:
    # (1) drain: delayed messages and late planned events still fire
    # while dead peers are dead — chaos timing is part of the run.
    cluster.run_all()
    # (2) every peer returns (documents kept, liveness flag cleared).
    for peer_id, peer in cluster.peers.items():
        if peer.disconnected:
            cluster.network.reconnect(peer_id)
    # (3) settle in-doubt shares against the origins' decisions.
    decisions: List[Tuple[str, bool]] = []
    for result in results:
        for txn_id in result.txn_ids[:-1]:
            decisions.append((txn_id, False))
        if result.txn_ids:
            decisions.append((result.txn_ids[-1], result.status == COMMITTED))
    for txn_id, committed in decisions:
        for peer in cluster.peers.values():
            if peer.resolve_in_doubt(txn_id, committed) != "noop":
                cluster.metrics.incr("chaos_settled_shares")
    # (3b) converge the replica sets: lift lag, flush ship buffers,
    # apply in-flight frames, resync crash-restarted holders.  After
    # this every alive holder must equal its primary (replica_diverged).
    # Sharded runs ship between migration endpoints even with
    # replicas=0, so they settle the channels too.
    if config.replicas > 0 or config.sharding:
        cluster.replication.settle(drain=cluster.run_all)
    # (3c) reconcile shard placement with the ring: parked/crashed
    # migrations converge, stray copies drop, the directory ends up
    # exactly at the ring's assignment (else the oracle's
    # directory_stale/shard_* predicates fire).
    if config.sharding:
        cluster.shard_coordinator.settle()
    # (4) hygiene: release per-txn protocol state everywhere.
    skipped_stale = config.mutate != "stale_chain"
    for peer in cluster.peers.values():
        for txn_id, _committed in decisions:
            if not skipped_stale and txn_id in peer.chains:
                skipped_stale = True  # the deliberate stale entry
                continue
            peer.forget_transaction(txn_id)
    # (5) sweep.
    oracle = AtomicityOracle(
        outcomes={r.label: r.status for r in results},
        expected=expected,
        txn_ids={r.label: list(r.txn_ids) for r in results},
    )
    return oracle.check(cluster.peers)


def describe_plan(plan: FaultPlan) -> List[str]:
    """Human-readable one-liners, one per event (CLI / docs output)."""
    lines = []
    for event in plan.events:
        if event.kind == "service_fault":
            lines.append(
                f"service_fault {event.method}@{event.peer} [{event.point}]"
            )
        elif event.kind == "disconnect":
            lines.append(f"disconnect {event.peer} @t={event.time}")
        elif event.kind == "disconnect_point":
            lines.append(
                f"disconnect {event.peer} while {event.trigger} runs "
                f"{event.method} [{event.point}]"
            )
        elif event.kind == "crash":
            lines.append(
                f"crash {event.peer} during {event.method} [{event.point}] "
                f"restart after {event.delay}"
            )
        elif event.kind == "kill_primary":
            lines.append(
                f"kill_primary {event.peer} @t={event.time} "
                f"restart after {event.delay}"
            )
        elif event.kind == "lag_replica":
            lines.append(
                f"lag_replica of {event.peer} @t={event.time} "
                f"for {event.delay}"
            )
        elif event.kind == "shard_join":
            lines.append(f"shard_join {event.peer} @t={event.time}")
        elif event.kind == "shard_retire":
            lines.append(f"shard_retire {event.peer} @t={event.time}")
        elif event.kind == "crash_during_migration":
            lines.append(
                f"crash_during_migration {event.trigger} at {event.point} "
                f"restart after {event.delay}"
            )
        else:
            lines.append(
                f"message_chaos drop={event.drop_rate} "
                f"delay={event.delay_rate} max_delay={event.max_delay}"
            )
    return lines


def rerun(result: ChaosRunResult) -> ChaosRunResult:
    """Same config, same plan — the determinism primitive shrink relies on."""
    return run_chaos(replace(result.config), plan=result.plan)


# ---------------------------------------------------------------------------
# sweeps
# ---------------------------------------------------------------------------

def _sweep_row(config: ChaosConfig, result: ChaosRunResult) -> Dict[str, object]:
    """One table row of a sweep — shared by the serial and parallel paths
    so both produce byte-identical tables."""
    committed = sum(1 for r in result.results if r.committed)
    return {
        "seed": config.seed,
        "conc": config.concurrency,
        "fault_rate": config.fault_rate,
        "faults": len(result.plan),
        "txns": len(result.results),
        "committed": committed,
        "aborted": len(result.results) - committed,
        "violations": len(result.violations),
    }


def _sweep_cell(config: ChaosConfig) -> Dict[str, object]:
    """Worker-side sweep point: run + reduce to a picklable row.

    The full :class:`ChaosRunResult` (cluster, closures) never crosses
    the process boundary; failing configs are re-run in the parent —
    runs are deterministic, so the re-run reproduces the exact failure
    and yields a shrink-ready result object.
    """
    result = run_chaos(config)
    return _sweep_row(config, result)


def chaos_sweep(
    base: ChaosConfig,
    seeds: Sequence[int],
    concurrencies: Sequence[int] = (2, 4),
    fault_rates: Sequence[float] = (0.2,),
    metrics=None,
    workers: int = 1,
):
    """Run seeds × concurrency × fault-rate; returns ``(table, failures)``.

    Aggregate ``chaos_runs`` / ``chaos_violations`` counters land on
    *metrics* (a :class:`~repro.sim.metrics.MetricsCollector`; one is
    created when omitted) so sweeps plug into the ``repro.obs``
    reporting pipeline.  ``failures`` holds every failing
    :class:`ChaosRunResult`, ready for shrinking.

    ``workers`` > 1 fans the grid over that many processes (0 = all
    cores); rows merge in serial order, so the table — and its JSON
    artifact — is byte-identical to ``workers=1`` (see
    :mod:`repro.sim.parallel` for the contract).
    """
    from repro.sim.harness import ExperimentTable
    from repro.sim.metrics import MetricsCollector
    from repro.sim.parallel import parallel_map, resolve_workers

    metrics = metrics or MetricsCollector()
    table = ExperimentTable(
        title="chaos: atomicity under seeded faults",
        columns=[
            "seed", "conc", "fault_rate", "faults", "txns",
            "committed", "aborted", "violations",
        ],
    )
    configs = [
        replace(base, seed=seed, concurrency=concurrency, fault_rate=fault_rate)
        for fault_rate in fault_rates
        for concurrency in concurrencies
        for seed in seeds
    ]
    failures: List[ChaosRunResult] = []
    if resolve_workers(workers, len(configs)) > 1:
        rows = parallel_map(_sweep_cell, configs, workers)
        for config, row in zip(configs, rows):
            table.add_row(**row)
            metrics.incr("chaos_runs")
            if row["violations"]:
                metrics.incr("chaos_violations", row["violations"])
                failures.append(run_chaos(config))
    else:
        for config in configs:
            result = run_chaos(config)
            table.add_row(**_sweep_row(config, result))
            metrics.incr("chaos_runs")
            if result.violations:
                metrics.incr("chaos_violations", len(result.violations))
                failures.append(result)
    table.add_note(
        f"{len(list(seeds)) * len(list(concurrencies)) * len(list(fault_rates))}"
        f" runs, {len(failures)} failing"
    )
    return table, failures
