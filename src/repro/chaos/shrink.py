"""Greedy fault-schedule minimization + the repro-file format.

When a run fails the oracle, the *schedule* that provoked it is usually
mostly noise: greedy event-removal re-runs the same seed (same
workload, same interleaving) with one event deleted at a time and keeps
every deletion that still fails, iterating to a fixpoint.  Same-seed
replay makes this sound: a chaos run is a pure function of
``(config, plan)``, so "still fails without event i" is a property of
the plan, not of luck.

The minimized ``(config, plan, violations)`` triple is written as a
strict-JSON **repro file** (:func:`write_repro_file`) that
``repro chaos --replay FILE`` re-executes; the format is documented in
``docs/CHAOS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.chaos.planner import FaultPlan
from repro.chaos.runner import ChaosConfig, ChaosRunResult, run_chaos
from repro.obs import stable_json, write_json_artifact

REPRO_VERSION = 1


@dataclass
class ShrinkReport:
    """What minimization did: every candidate run is accounted for."""

    original_events: int
    minimized_events: int
    runs: int
    result: ChaosRunResult

    @property
    def removed(self) -> int:
        return self.original_events - self.minimized_events


def shrink_plan(
    config: ChaosConfig,
    plan: FaultPlan,
    max_runs: int = 200,
) -> ShrinkReport:
    """Greedy fault-removal minimization of a failing schedule.

    Deletion candidates are tried newest-first (later events are more
    often incidental); each pass restarts after a successful deletion
    and the loop ends at a fixpoint (no single deletion still fails) or
    at ``max_runs`` replays.  The returned report's ``result`` is the
    re-run of the minimized plan — still failing, by construction.
    """
    current_plan = plan
    current = run_chaos(config, plan=current_plan)
    if current.ok:
        raise ValueError("shrink_plan needs a failing (config, plan) pair")
    runs = 1
    progress = True
    while progress and runs < max_runs:
        progress = False
        for index in reversed(range(len(current_plan))):
            candidate_plan = current_plan.without(index)
            candidate = run_chaos(config, plan=candidate_plan)
            runs += 1
            if not candidate.ok:
                current_plan, current = candidate_plan, candidate
                progress = True
                break
            if runs >= max_runs:
                break
    return ShrinkReport(
        original_events=len(plan),
        minimized_events=len(current_plan),
        runs=runs,
        result=current,
    )


# ---------------------------------------------------------------------------
# repro files
# ---------------------------------------------------------------------------

def repro_payload(result: ChaosRunResult) -> Dict[str, object]:
    """The JSON body of a repro file for one failing run."""
    return {
        "version": REPRO_VERSION,
        "config": result.config.to_dict(),
        "plan": result.plan.to_dict(),
        "violations": [v.to_dict() for v in result.violations],
    }


def write_repro_file(path: str, result: ChaosRunResult) -> str:
    """Write the repro file (strict JSON, sorted keys); returns *path*."""
    write_json_artifact(path, repro_payload(result))
    return path


def load_repro_file(path: str) -> tuple:
    """Parse a repro file back into ``(config, plan)``."""
    import json

    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    version = data.get("version")
    if version != REPRO_VERSION:
        raise ValueError(f"unsupported repro-file version {version!r}")
    return (
        ChaosConfig.from_dict(data["config"]),
        FaultPlan.from_dict(data["plan"]),
    )


def replay_repro_file(path: str) -> ChaosRunResult:
    """Re-execute the run a repro file pins down."""
    config, plan = load_repro_file(path)
    return run_chaos(config, plan=plan)


def shrink_and_report(
    config: ChaosConfig,
    plan: FaultPlan,
    repro_path: Optional[str] = None,
) -> ShrinkReport:
    """Shrink, then (optionally) persist the minimized repro file."""
    report = shrink_plan(config, plan)
    if repro_path is not None:
        write_repro_file(repro_path, report.result)
    return report


def summary_text(result: ChaosRunResult) -> str:
    """Byte-stable JSON of a run summary (the determinism artifact)."""
    return stable_json(result.summary)
