"""The atomicity oracle: all-or-nothing verification after a chaos run.

The chaos workload is built so every forward effect is *addressable*:
each operation inserts exactly one ``<chaos txn="LABEL" step="STEP"/>``
marker per document its (possibly delegated) execution touches.  After
the run settles, the oracle sweeps every peer's documents, operation
log, transaction contexts and chain state and checks the paper's
relaxed-atomicity contract:

* a **committed** transaction's markers are present *exactly once* at
  every (peer, document, step) its operations reached — nothing lost,
  nothing double-applied;
* an **aborted** transaction left *no* markers anywhere — dynamic
  compensation (§3.1) fully undid every share, on every peer the
  invocation tree enlisted;
* no marker belongs to an unknown transaction (``orphan_effect``);
* every :class:`~repro.txn.wal.OperationLog` is empty — commit and
  compensation both truncate, so surviving entries mean a share was
  never settled (``log_residue``: the WAL ↔ document-state check);
* every transaction context reached a terminal state and that state
  matches the scheduler's outcome (``unfinished_context`` /
  ``outcome_mismatch``);
* no peer still holds an active-peer chain entry for a settled
  transaction (``orphan_chain``);
* a durable peer's on-disk WAL tail agrees with its in-memory log
  (``wal_tail_inconsistent``): the same live entry seqs, and no torn
  frames after a settled run — the disk ↔ memory check
  (``wal_tail_consistent`` predicate, see ``docs/DURABILITY.md``);
* every alive replica of a replicated document serializes identically
  to its primary after settlement (``replica_diverged``): WAL shipping
  plus settlement resync must leave the whole replica set convergent
  (see ``docs/REPLICATION.md``);
* under elastic sharding (``docs/SHARDING.md``) every shard routes to
  exactly one alive primary that actually holds it (``shard_lost``),
  no copy survives outside the directory's holder list
  (``shard_duplicated``), and the directory agrees with the
  consistent-hash ring's assignment (``directory_stale``).

When the cluster replicates documents, a committed transaction's
markers are expected on *every* holder of the touched document — the
shipped copies are part of the contract, not orphans.

Each failed predicate becomes a :class:`Violation`; runs are judged by
``violations == []``.  The exact predicates are documented (with their
paper references) in ``docs/CHAOS.md``.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.obs.prof import PROF
from repro.txn.transaction import TransactionState
from repro.xmlstore.serializer import canonical_digest

#: Violation kinds the oracle can report.
VIOLATION_KINDS = (
    "effect_missing",
    "effect_duplicated",
    "compensation_missing",
    "orphan_effect",
    "log_residue",
    "unfinished_context",
    "outcome_mismatch",
    "orphan_chain",
    "wal_tail_inconsistent",
    "replica_diverged",
    "shard_lost",
    "shard_duplicated",
    "directory_stale",
)

_MARKER = re.compile(r"<chaos\b([^>]*?)/?>")
_ATTR = re.compile(r'(\w+)="([^"]*)"')


@dataclass(frozen=True)
class Violation:
    """One broken atomicity predicate, addressed to where it was seen."""

    kind: str
    label: str = ""     # transaction label ("" when not attributable)
    peer: str = ""
    document: str = ""
    detail: str = ""

    def to_dict(self) -> Dict[str, str]:
        return {k: v for k, v in asdict(self).items() if v != ""}


@dataclass(frozen=True)
class ExpectedEffect:
    """One marker a committed transaction must have left exactly once."""

    peer: str
    document: str
    label: str
    step: str


def _canonical_xml(xml: str) -> str:
    """Order-insensitive canonical form of a serialized document.

    Recursively sorts every element's children by their own canonical
    serialization: two trees that hold the same nodes (same tags,
    attributes and text) in any sibling interleaving canonicalize to
    the same string.  Replication needs exactly this equivalence — the
    primary applies operations in execution order while replicas apply
    shipped frames per channel, and independent inserts into the same
    parent commute.
    """
    import xml.etree.ElementTree as ElementTree

    def norm(element) -> None:
        for child in element:
            norm(child)
        element[:] = sorted(
            element,
            key=lambda c: ElementTree.tostring(c, encoding="unicode"),
        )

    root = ElementTree.fromstring(xml)
    norm(root)
    return ElementTree.tostring(root, encoding="unicode")


def scan_markers(xml: str) -> List[Tuple[str, str]]:
    """All ``(txn, step)`` marker pairs in one serialized document."""
    out: List[Tuple[str, str]] = []
    for match in _MARKER.finditer(xml):
        attrs = dict(_ATTR.findall(match.group(1)))
        out.append((attrs.get("txn", ""), attrs.get("step", "")))
    return out


class AtomicityOracle:
    """Sweeps a settled cluster against the expected-effect map.

    ``outcomes`` maps transaction label → terminal scheduler status
    (``committed`` / ``aborted_failure`` / ``aborted_conflict``);
    ``expected`` lists every marker each label would leave if (and only
    if) it committed; ``txn_ids`` maps label → the transaction ids its
    attempts used (final attempt last).
    """

    def __init__(
        self,
        outcomes: Mapping[str, str],
        expected: Sequence[ExpectedEffect],
        txn_ids: Mapping[str, Sequence[str]],
    ):
        self.outcomes = dict(outcomes)
        self.expected = list(expected)
        self.txn_ids = {label: list(ids) for label, ids in txn_ids.items()}
        #: txn id → (label, decided-committed?) for context checks.
        self._decisions: Dict[str, Tuple[str, bool]] = {}
        for label, ids in self.txn_ids.items():
            committed = self.outcomes.get(label) == "committed"
            for txn_id in ids[:-1]:
                # Earlier attempts of a retried transaction always abort.
                self._decisions[txn_id] = (label, False)
            if ids:
                self._decisions[ids[-1]] = (label, committed)

    # -- sweep ---------------------------------------------------------

    def check(self, peers: Mapping[str, object]) -> List[Violation]:
        """Run every predicate over *peers* (id → AXMLPeer)."""
        violations: List[Violation] = []
        violations.extend(self._check_documents(peers))
        violations.extend(self._check_logs(peers))
        violations.extend(self._check_contexts(peers))
        violations.extend(self._check_chains(peers))
        violations.extend(self._check_wal_tails(peers))
        violations.extend(self._check_replicas(peers))
        violations.extend(self._check_shards(peers))
        return sorted(
            violations,
            key=lambda v: (v.kind, v.label, v.peer, v.document, v.detail),
        )

    def _check_documents(self, peers: Mapping[str, object]) -> List[Violation]:
        counts: Dict[Tuple[str, str, str, str], int] = {}
        for peer_id, peer in peers.items():
            for doc_name, document in peer.documents.items():
                for label, step in scan_markers(document.to_xml()):
                    key = (peer_id, doc_name, label, step)
                    counts[key] = counts.get(key, 0) + 1

        violations: List[Violation] = []
        replication = self._replication(peers)
        expected_keys: Set[Tuple[str, str, str, str]] = set()
        for effect in self.expected:
            if self.outcomes.get(effect.label) != "committed":
                continue
            # With replication, the committed marker must reach *every*
            # holder of the document (WAL shipping copies it); without,
            # the holder list degenerates to the effect's own peer.
            for holder in self._effect_holders(replication, effect):
                key = (holder, effect.document, effect.label, effect.step)
                expected_keys.add(key)
                seen = counts.get(key, 0)
                if seen == 0:
                    violations.append(Violation(
                        "effect_missing", effect.label, holder,
                        effect.document, f"step {effect.step}: 0 markers",
                    ))
                elif seen > 1:
                    violations.append(Violation(
                        "effect_duplicated", effect.label, holder,
                        effect.document, f"step {effect.step}: {seen} markers",
                    ))
        for (peer_id, doc_name, label, step), seen in sorted(counts.items()):
            key = (peer_id, doc_name, label, step)
            if key in expected_keys:
                continue
            if label in self.outcomes and self.outcomes[label] != "committed":
                violations.append(Violation(
                    "compensation_missing", label, peer_id, doc_name,
                    f"step {step}: {seen} markers survived the abort",
                ))
            else:
                violations.append(Violation(
                    "orphan_effect", label, peer_id, doc_name,
                    f"step {step}: {seen} unexpected markers",
                ))
        return violations

    @staticmethod
    def _replication(peers: Mapping[str, object]):
        """The cluster's replication map, if any (via any peer's network)."""
        for peer in peers.values():
            return getattr(peer.network, "replication", None)
        return None

    @staticmethod
    def _effect_holders(replication, effect: ExpectedEffect) -> List[str]:
        """Every peer that must carry *effect*'s marker after settlement."""
        if replication is not None:
            directory = getattr(replication, "directory", None)
            if directory is not None and directory.is_sharded(effect.document):
                # Sharded placement: the directory's holder list is
                # authoritative regardless of the workload's static
                # peer hint (the ring may have moved the shard).
                holders = replication.holders(effect.document)
                if holders:
                    return list(holders)
            holders = replication.holders(effect.document)
            if len(holders) > 1 and effect.peer in holders:
                return list(holders)
        return [effect.peer]

    def _check_shards(self, peers: Mapping[str, object]) -> List[Violation]:
        """The elastic-sharding predicates (``docs/SHARDING.md``).

        * ``shard_lost`` — no alive directory holder actually carries
          the shard's document: every key must keep routing to a live
          copy after settlement;
        * ``shard_duplicated`` — a copy survives on a peer *outside*
          the directory's holder list (a migration source that was
          never trimmed, a resurrected stale copy);
        * ``directory_stale`` — the directory's holder list disagrees
          with the ring's assignment: routing truth drifted from
          placement truth.
        """
        replication = self._replication(peers)
        directory = getattr(replication, "directory", None)
        if directory is None or not directory.sharded_docs:
            return []
        violations: List[Violation] = []
        for doc_name in sorted(directory.sharded_docs):
            holders = directory.document_map.get(doc_name, [])
            alive = [
                h for h in holders
                if h in peers
                and not peers[h].disconnected
                and doc_name in peers[h].documents
            ]
            if not alive:
                violations.append(Violation(
                    "shard_lost", document=doc_name,
                    detail="no alive holder carries the document",
                ))
            for peer_id, peer in sorted(peers.items()):
                if doc_name in peer.documents and peer_id not in holders:
                    violations.append(Violation(
                        "shard_duplicated", peer=peer_id, document=doc_name,
                        detail="copy outside the directory's holder list",
                    ))
            ring = getattr(directory, "ring", None)
            if ring is not None:
                want = ring.lookup(doc_name)
                if want and list(holders) != list(want):
                    violations.append(Violation(
                        "directory_stale", document=doc_name,
                        detail=(
                            f"directory holders {list(holders)} != "
                            f"ring assignment {list(want)}"
                        ),
                    ))
        return violations

    def _check_replicas(self, peers: Mapping[str, object]) -> List[Violation]:
        """``replica_diverged``: every alive replica ≡ its primary.

        Equality is judged on the id-free *canonical* serialization:
        node ids are rebound per host, and siblings are compared as a
        multiset (:func:`_canonical_xml`) because the workload's only
        write is an insert into an unordered collection — a holder that
        applied the same logical operations in a different interleaving
        (local execution vs. shipped frames from two primaries) has
        converged; a holder with a missing, extra or altered node has
        not.  Dead holders are skipped (settlement reconnects everyone,
        so in practice this sweeps the full set).

        Digest first: equal cached canonical digests mean byte-equal
        canonical text — trivially converged, no canonicalization at
        all.  Only mismatching digests (which may still be the same
        multiset in a different sibling order) pay for the full
        order-insensitive :func:`_canonical_xml` comparison, computed
        lazily for the primary the first time any holder needs it.
        """
        replication = self._replication(peers)
        if replication is None:
            return []
        violations: List[Violation] = []
        for doc_name in sorted(replication.replicated_documents()):
            holders = replication.holders(doc_name)
            if len(holders) < 2:
                continue
            primary = peers.get(holders[0])
            if primary is None or primary.disconnected:
                continue
            primary_doc = primary.documents.get(doc_name)
            if primary_doc is None:
                # No copy at the registered primary: divergence is
                # undefined — for sharded documents _check_shards flags
                # this as shard_lost.
                continue
            primary_digest = canonical_digest(primary_doc.document)
            primary_xml: Optional[str] = None
            for holder in holders[1:]:
                peer = peers.get(holder)
                if peer is None or peer.disconnected:
                    continue
                document = peer.documents.get(doc_name)
                if document is None:
                    violations.append(Violation(
                        "replica_diverged", peer=holder, document=doc_name,
                        detail="replica copy missing",
                    ))
                    continue
                if canonical_digest(document.document) == primary_digest:
                    PROF.incr("replica_digest_matches")
                    continue
                if primary_xml is None:
                    primary_xml = _canonical_xml(primary_doc.to_xml())
                if _canonical_xml(document.to_xml()) != primary_xml:
                    violations.append(Violation(
                        "replica_diverged", peer=holder, document=doc_name,
                        detail=f"content differs from primary {holders[0]}",
                    ))
        return violations

    def _check_logs(self, peers: Mapping[str, object]) -> List[Violation]:
        violations: List[Violation] = []
        for peer_id, peer in sorted(peers.items()):
            residues: Dict[str, int] = {}
            for entry in peer.manager.log:
                residues[entry.txn_id] = residues.get(entry.txn_id, 0) + 1
            for txn_id, count in sorted(residues.items()):
                label = self._decisions.get(txn_id, ("", False))[0]
                violations.append(Violation(
                    "log_residue", label, peer_id,
                    detail=f"{count} live log entries for settled txn",
                ))
        return violations

    def _check_contexts(self, peers: Mapping[str, object]) -> List[Violation]:
        violations: List[Violation] = []
        for peer_id, peer in sorted(peers.items()):
            for txn_id, context in sorted(peer.manager.contexts.items()):
                label, committed = self._decisions.get(txn_id, ("", False))
                if not context.is_finished:
                    violations.append(Violation(
                        "unfinished_context", label, peer_id,
                        detail=f"context left {context.state.value}",
                    ))
                    continue
                if txn_id not in self._decisions:
                    continue
                wanted = (
                    TransactionState.COMMITTED if committed
                    else TransactionState.ABORTED
                )
                if context.state is not wanted:
                    violations.append(Violation(
                        "outcome_mismatch", label, peer_id,
                        detail=(
                            f"context {context.state.value}, scheduler says "
                            f"{'committed' if committed else 'aborted'}"
                        ),
                    ))
        return violations

    def _check_chains(self, peers: Mapping[str, object]) -> List[Violation]:
        violations: List[Violation] = []
        for peer_id, peer in sorted(peers.items()):
            for txn_id in sorted(peer.chains):
                label = self._decisions.get(txn_id, ("", False))[0]
                violations.append(Violation(
                    "orphan_chain", label, peer_id,
                    detail="chain entry survived settlement",
                ))
        return violations

    def _check_wal_tails(self, peers: Mapping[str, object]) -> List[Violation]:
        """``wal_tail_consistent``: on-disk WAL ≡ in-memory log.

        After settlement every commit/abort was mirrored to disk via
        tombstones, so a durable peer's WAL must recover exactly the
        live entry seqs its in-memory log holds, with no torn frames.
        Details carry counts and seqs only — never filesystem paths,
        which would break byte-identical summaries.

        With group commit a live peer may legitimately hold appended
        entries whose frames are still in the batch buffer — that is
        the durability *window*, not a violation (a crash inside it
        discards the entries from memory and store alike).  The scan
        therefore overlays the pending batch (``include_pending``): it
        checks "disk ∪ buffer ≡ memory", which batching preserves and
        every real tail bug still breaks.
        """
        violations: List[Violation] = []
        for peer_id, peer in sorted(peers.items()):
            wal = getattr(peer, "wal", None)
            if wal is None:
                continue
            scan = wal.load(include_pending=True)
            if scan.torn:
                violations.append(Violation(
                    "wal_tail_inconsistent", peer=peer_id,
                    detail="torn frames in a settled WAL",
                ))
            disk_seqs = [entry.seq for entry in scan.entries]
            memory_seqs = sorted(e.seq for e in peer.manager.log)
            if disk_seqs != memory_seqs:
                violations.append(Violation(
                    "wal_tail_inconsistent", peer=peer_id,
                    detail=(
                        f"disk live seqs {disk_seqs} != "
                        f"in-memory seqs {memory_seqs}"
                    ),
                ))
        return violations
