"""``repro.chaos`` — deterministic chaos harness + atomicity oracle.

Seed-driven fault schedules (:mod:`~repro.chaos.planner`) overlaid on
concurrent scheduler workloads (:mod:`~repro.chaos.runner`), verified
all-or-nothing by the :class:`~repro.chaos.oracle.AtomicityOracle` and
minimized into replayable repro files (:mod:`~repro.chaos.shrink`).

Entry points::

    from repro.chaos import ChaosConfig, run_chaos
    result = run_chaos(ChaosConfig(seed=7, txns=20, fault_rate=0.2))
    assert result.ok, result.violations

or from the shell: ``python -m repro chaos --seed 7 --txns 20
--fault-rate 0.2``.  See ``docs/CHAOS.md`` for the fault model, the
oracle's exact predicates and the repro-file format.
"""

from repro.chaos.oracle import (
    AtomicityOracle,
    ExpectedEffect,
    VIOLATION_KINDS,
    Violation,
)
from repro.chaos.planner import (
    CHAOS_FAULT,
    FaultEvent,
    FaultPlan,
    FaultPlanner,
)
from repro.chaos.runner import (
    ChaosConfig,
    ChaosRunResult,
    MUTATIONS,
    build_chaos_cluster,
    chaos_sweep,
    describe_plan,
    generate_workload,
    rerun,
    run_chaos,
)
from repro.chaos.shrink import (
    ShrinkReport,
    load_repro_file,
    replay_repro_file,
    shrink_and_report,
    shrink_plan,
    summary_text,
    write_repro_file,
)

__all__ = [
    "AtomicityOracle",
    "CHAOS_FAULT",
    "ChaosConfig",
    "ChaosRunResult",
    "ExpectedEffect",
    "FaultEvent",
    "FaultPlan",
    "FaultPlanner",
    "MUTATIONS",
    "ShrinkReport",
    "VIOLATION_KINDS",
    "Violation",
    "build_chaos_cluster",
    "chaos_sweep",
    "describe_plan",
    "generate_workload",
    "load_repro_file",
    "replay_repro_file",
    "rerun",
    "run_chaos",
    "shrink_and_report",
    "shrink_plan",
    "summary_text",
    "write_repro_file",
]
