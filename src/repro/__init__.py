"""repro — reproduction of *Atomicity for P2P based XML Repositories*
(Biswas & Kim, ICDE 2007).

A from-scratch ActiveXML stack (XML store, query/update language, AXML
engine, web-service layer, simulated P2P network) carrying the paper's
transactional framework: dynamic compensation construction, nested and
peer-independent recovery, and disconnection handling via active-peer
chaining.

Quickstart
----------
The :mod:`repro.api` facade (``Cluster`` → ``Session`` →
``Transaction``) is the documented entry point:

>>> from repro.api import Cluster
>>> cluster = Cluster()
>>> _ = cluster.add_peer("AP1")
>>> doc = cluster.host_document("AP1", "<Shop><items/></Shop>", name="Shop")
>>> txn = cluster.session("AP1").transaction()
>>> _ = txn.submit('<action type="insert">'
...     '<data><item>42</item></data>'
...     '<location>Select s from s in Shop//items;</location></action>')
>>> txn.abort()   # dynamic compensation undoes the insert
True
>>> doc.to_xml()
'<Shop><items/></Shop>'

``Transaction`` is also a context manager (commit on clean exit, abort
on exception), and :meth:`Cluster.scheduler` attaches the concurrent
multi-transaction engine.  See ``examples/`` for full scenarios and
``DESIGN.md`` for the module inventory.
"""

__version__ = "1.0.0"

from repro.errors import (
    AtomicityViolation,
    CompensationError,
    PeerDisconnected,
    QueryError,
    ReproError,
    ServiceFault,
    TransactionError,
    XmlError,
)
from repro.xmlstore import Document, Element, NodeId, parse_document, serialize
from repro.xmlstore.path import parse_path
from repro.query import parse_action, parse_select
from repro.axml import AXMLDocument, MaterializationEngine, ServiceCall
from repro.services import (
    DelegatingService,
    FunctionService,
    QueryService,
    ServiceDescriptor,
    UpdateService,
)
from repro.p2p import (
    AXMLPeer,
    FailureInjector,
    PeerChain,
    ReplicationManager,
    SimNetwork,
)
from repro.txn import (
    CompensationPlan,
    OperationLog,
    Transaction,
    TransactionContext,
    analyze_sphere,
    compensate_records,
)
from repro.txn.recovery import DISCONNECT_FAULT, FaultPolicy
from repro.outcome import Outcome, OutcomeStatus
from repro.api import Cluster, Session

__all__ = [
    # facade (repro.api)
    "Cluster",
    "Session",
    "Outcome",
    "OutcomeStatus",
    "__version__",
    # errors
    "ReproError",
    "XmlError",
    "QueryError",
    "ServiceFault",
    "PeerDisconnected",
    "TransactionError",
    "CompensationError",
    "AtomicityViolation",
    # xml
    "Document",
    "Element",
    "NodeId",
    "parse_document",
    "serialize",
    "parse_path",
    # query
    "parse_select",
    "parse_action",
    # axml
    "AXMLDocument",
    "MaterializationEngine",
    "ServiceCall",
    # services
    "ServiceDescriptor",
    "QueryService",
    "UpdateService",
    "FunctionService",
    "DelegatingService",
    # p2p
    "SimNetwork",
    "AXMLPeer",
    "PeerChain",
    "FailureInjector",
    "ReplicationManager",
    # txn
    "Transaction",
    "TransactionContext",
    "OperationLog",
    "CompensationPlan",
    "compensate_records",
    "analyze_sphere",
    "FaultPolicy",
    "DISCONNECT_FAULT",
]
