"""Hierarchical spans over virtual time.

A span is one timed step of a run — a transaction, a service invocation,
an RPC hop, a compensation pass — with a status and a link to the span
it ran inside.  The simulation is synchronous (RPCs block, services run
in-process), so a single active-span stack per collector reconstructs
the full hierarchy: whatever is on top of the stack when a span starts
is its parent.

Long-lived spans that do not nest strictly (a transaction stays open
across many top-level invocations) start *detached*: they never join the
stack, and children name them explicitly via ``parent=``.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.obs.export import stable_json


@dataclass
class Span:
    """One timed, attributed step of a simulation run."""

    span_id: int
    name: str
    kind: str  # transaction | invoke | rpc | service | compensation | ...
    peer: str = ""
    txn_id: str = ""
    start: float = 0.0
    end: Optional[float] = None
    status: str = "running"  # ok | committed | aborted | fault | disconnected | ...
    parent_id: Optional[int] = None
    attrs: Dict[str, str] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "kind": self.kind,
            "peer": self.peer,
            "txn_id": self.txn_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        return cls(
            span_id=int(data["span_id"]),  # type: ignore[arg-type]
            name=str(data["name"]),
            kind=str(data["kind"]),
            peer=str(data.get("peer", "")),
            txn_id=str(data.get("txn_id", "")),
            start=float(data.get("start", 0.0)),  # type: ignore[arg-type]
            end=None if data.get("end") is None else float(data["end"]),  # type: ignore[arg-type]
            status=str(data.get("status", "running")),
            parent_id=(
                None if data.get("parent_id") is None else int(data["parent_id"])  # type: ignore[arg-type]
            ),
            attrs={str(k): str(v) for k, v in dict(data.get("attrs", {})).items()},  # type: ignore[arg-type]
        )

    def __str__(self) -> str:
        took = "…" if self.duration is None else f"{self.duration:.4f}s"
        return f"[{self.kind}] {self.name} ({self.status}, {took})"


class SpanCollector:
    """Collects spans for one simulation run.

    ``now`` supplies virtual time — pass ``lambda: clock.now`` from the
    owning network so span timestamps line up with the metrics.
    """

    def __init__(self, now: Optional[Callable[[], float]] = None):
        self.now: Callable[[], float] = now or (lambda: 0.0)
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._ids = itertools.count(1)

    # -- lifecycle ------------------------------------------------------

    def start(
        self,
        name: str,
        kind: str,
        peer: str = "",
        txn_id: str = "",
        parent: Optional[Span] = None,
        detached: bool = False,
        **attrs: str,
    ) -> Span:
        """Open a span; its parent is *parent* or the innermost open span.

        ``detached`` keeps the span off the active stack (for long-lived
        spans, e.g. whole transactions, that outlive strict nesting).
        """
        if parent is None and self._stack:
            parent = self._stack[-1]
        span = Span(
            span_id=next(self._ids),
            name=name,
            kind=kind,
            peer=peer,
            txn_id=txn_id,
            start=self.now(),
            parent_id=None if parent is None else parent.span_id,
            attrs={k: str(v) for k, v in attrs.items()},
        )
        self.spans.append(span)
        if not detached:
            self._stack.append(span)
        return span

    def end(self, span: Span, status: str = "ok", **attrs: str) -> Span:
        """Close a span (idempotent); removes it from the active stack."""
        if span.end is None:
            span.end = self.now()
            span.status = status
            span.attrs.update({k: str(v) for k, v in attrs.items()})
        if span in self._stack:
            self._stack.remove(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        kind: str,
        peer: str = "",
        txn_id: str = "",
        parent: Optional[Span] = None,
        **attrs: str,
    ) -> Iterator[Span]:
        """Context manager: ``ok`` on exit, the exception type on raise."""
        opened = self.start(name, kind, peer=peer, txn_id=txn_id, parent=parent, **attrs)
        try:
            yield opened
        except BaseException as exc:
            self.end(opened, status=f"error:{type(exc).__name__}")
            raise
        else:
            if opened.end is None:
                self.end(opened, status="ok")

    def current(self) -> Optional[Span]:
        """The innermost open (stacked) span, if any."""
        return self._stack[-1] if self._stack else None

    # -- reading --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def finished(self) -> List[Span]:
        return [s for s in self.spans if s.finished]

    def by_kind(self, kind: str) -> List[Span]:
        return [s for s in self.spans if s.kind == kind]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def slowest(self, n: int = 5, kind: Optional[str] = None) -> List[Span]:
        """The *n* longest finished spans (optionally of one kind)."""
        pool = [
            s
            for s in self.spans
            if s.finished and (kind is None or s.kind == kind)
        ]
        pool.sort(key=lambda s: (-(s.duration or 0.0), s.span_id))
        return pool[:n]

    def summary(self) -> Dict[str, object]:
        """Counts by kind and by status, plus the open-span count."""
        by_kind: Dict[str, int] = {}
        by_status: Dict[str, int] = {}
        for span in self.spans:
            by_kind[span.kind] = by_kind.get(span.kind, 0) + 1
            by_status[span.status] = by_status.get(span.status, 0) + 1
        return {
            "total": len(self.spans),
            "open": sum(1 for s in self.spans if not s.finished),
            "by_kind": by_kind,
            "by_status": by_status,
        }

    # -- export ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "summary": self.summary(),
            "spans": [span.to_dict() for span in self.spans],
        }

    def to_json(self) -> str:
        """Valid, stable JSON (sorted keys, no ``Infinity``/``NaN``)."""
        return stable_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "SpanCollector":
        """Rebuild a read-only collector from :meth:`to_json` output."""
        import json

        data = json.loads(text)
        collector = cls()
        collector.spans = [Span.from_dict(d) for d in data.get("spans", [])]
        if collector.spans:
            top = max(span.span_id for span in collector.spans)
            collector._ids = itertools.count(top + 1)
        return collector

    def __repr__(self) -> str:
        return f"SpanCollector(spans={len(self.spans)}, open={len(self._stack)})"
