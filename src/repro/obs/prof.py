"""Micro-profiler: cheap hot-path counters and wall-clock timers.

The observability layer (spans, histograms) answers *what happened* in
virtual time; this module answers *why a run was fast or slow* in real
terms: how often the query layer answered from the structural index vs.
re-walking the tree, how many event-queue operations the kernel served,
how many messages crossed the simulated network.

Design constraints:

* **Cheap** — one dict increment per event, no allocation, safe to call
  from the innermost loops (path-step resolution, the event heap).
* **Deterministic where it must be** — counters count logical events, so
  they are identical across reruns and across serial vs. parallel sweep
  execution; they may be merged into a run's
  :class:`~repro.sim.metrics.MetricsCollector` (prefixed ``prof_``)
  without breaking byte-identical summaries.
* **Honest about time** — wall-clock timers (``perf_counter``) are kept
  in a separate ``timings`` map that is *never* merged into
  deterministic summaries; benchmarks read them directly and publish
  them in ``BENCH_*.json`` artifacts, where wall time belongs.

Counter vocabulary used across the codebase::

    query_index_hits      descendant steps answered from the postings index
    query_index_skips     fast path declined (candidates > subtree size)
    query_tree_walks      descendant steps answered by a subtree walk
    query_walk_nodes      elements visited by those walks
    comp_log_lookups      O(1) id lookups for compensation-log targets
    index_rank_rebuilds   epoch-invalidated rank-cache rebuilds
    eventq_scheduled/_fired/_cancelled/_compactions   kernel heap ops
    messages_sent         simulated network sends
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional


class Profiler:
    """A bag of counters plus accumulated wall-clock timers."""

    __slots__ = ("counters", "timings")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timings: Dict[str, float] = {}

    # -- counters (hot path: keep these two lines) ----------------------

    def incr(self, name: str, amount: int = 1) -> None:
        counters = self.counters
        counters[name] = counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    # -- timers ---------------------------------------------------------

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the block's wall-clock duration under *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timings[name] = self.timings.get(name, 0.0) + elapsed

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        return dict(self.counters)

    def delta_since(self, before: Dict[str, int]) -> Dict[str, int]:
        """Counter movement since a :meth:`snapshot` (zero deltas dropped)."""
        return {
            name: value - before.get(name, 0)
            for name, value in self.counters.items()
            if value != before.get(name, 0)
        }

    def reset(self) -> None:
        self.counters.clear()
        self.timings.clear()

    def hit_rate(self, hits: str, misses: str) -> Optional[float]:
        """``hits / (hits + misses)`` or ``None`` when neither fired."""
        h, m = self.get(hits), self.get(misses)
        total = h + m
        return None if total == 0 else h / total

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        return f"Profiler({inner})"


#: The process-wide profiler every hot path writes to.  Per-run scoping
#: happens through :func:`profiled`, which reads deltas — resetting the
#: global between unrelated measurements is only needed in benchmarks.
PROF = Profiler()

#: Counters that never merge into run summaries.  These count *cache
#: effectiveness* of the serialization fast path, which by design varies
#: with the fast-path switch while the run's observable behaviour does
#: not — merging them would make "cache on" and "cache off" summaries
#: differ and break the byte-identity guarantee the P3 bench asserts.
#: Benchmarks read them straight from :data:`PROF` instead.
SUMMARY_LOCAL_COUNTERS = frozenset(
    {
        "serialize_cache_hits",
        "serialize_cache_misses",
        "serialize_tree_builds",
        "serialize_digest_hits",
        "serialize_digest_misses",
        "clone_fast",
        "clone_fallback",
        "entry_codec_hits",
        "entry_codec_misses",
        "replica_digest_matches",
        # Directory consultations happen on every routed invocation —
        # including ones outside the profiled block (settlement,
        # benches poking at clusters) — so the count is cache-like
        # bookkeeping, not a logical run event.
        "directory_lookups",
    }
)


@contextmanager
def profiled(metrics: Any = None, prefix: str = "prof_") -> Iterator[Profiler]:
    """Capture :data:`PROF` deltas over a block.

    When *metrics* (a :class:`~repro.sim.metrics.MetricsCollector`) is
    given, the block's counter deltas are merged into it under *prefix*
    so they surface in ``repro report`` and the run's JSON summary.
    Timings are deliberately not merged: wall-clock is not deterministic
    and would poison byte-identical summaries — and neither are the
    :data:`SUMMARY_LOCAL_COUNTERS`, whose values depend on cache state
    rather than on the run's logical behaviour.
    """
    before = PROF.snapshot()
    try:
        yield PROF
    finally:
        if metrics is not None:
            for name, delta in sorted(PROF.delta_since(before).items()):
                if name in SUMMARY_LOCAL_COUNTERS:
                    continue
                metrics.incr(prefix + name, delta)


def profile_summary(counters: Dict[str, int], prefix: str = "prof_") -> Dict[str, Any]:
    """The report-facing view of a run's ``prof_*`` counters.

    Returns the counters (prefix stripped) plus the derived index hit
    rate; empty dict when the run recorded nothing.
    """
    profile = {
        name[len(prefix):]: value
        for name, value in counters.items()
        if name.startswith(prefix)
    }
    if not profile:
        return {}
    hits = profile.get("query_index_hits", 0)
    walks = profile.get("query_tree_walks", 0)
    if hits + walks:
        profile["index_hit_rate"] = round(hits / (hits + walks), 4)
    return profile
