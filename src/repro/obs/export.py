"""Strict JSON export for metrics and spans.

Python's :func:`json.dumps` happily emits ``Infinity``/``NaN``, which no
strict parser (and no downstream tooling) accepts.  Every artifact this
repository writes goes through :func:`stable_json`: non-finite floats
become ``null``, keys are sorted, and the layout is fixed — so two runs
of the same scenario produce byte-identical files and ``BENCH_*.json``
trajectories diff cleanly across PRs.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any


def sanitize_for_json(obj: Any) -> Any:
    """Recursively replace non-finite floats with ``None``.

    Dict keys are coerced to strings (JSON object keys always are), so a
    sanitized structure always survives ``json.dumps(..., allow_nan=False)``.
    """
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if isinstance(obj, dict):
        return {str(k): sanitize_for_json(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [sanitize_for_json(v) for v in obj]
    return obj


def stable_json(obj: Any) -> str:
    """Serialize *obj* as strict, stable JSON (sorted keys, no NaN/inf)."""
    return json.dumps(
        sanitize_for_json(obj), sort_keys=True, allow_nan=False, indent=2
    )


def write_json_artifact(path: str, obj: Any) -> str:
    """Write *obj* as a stable JSON artifact; returns the path written."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(stable_json(obj) + "\n")
    return path
