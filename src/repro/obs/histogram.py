"""Value distributions with percentiles.

Counters answer "how many"; histograms answer "how slow" and "how deep".
One :class:`Histogram` holds every recorded sample (simulations are
small enough that exact percentiles beat bucketed approximations), and
its summary exposes the quantities EXPERIMENTS.md tracks across PRs:
count, min/max, mean, p50, p95.

Empty histograms summarize to ``None`` values — never ``inf``/``nan``,
which would poison the JSON export (see :mod:`repro.obs.export`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional


class Histogram:
    """An exact-sample histogram over one named quantity."""

    def __init__(self, name: str = ""):
        self.name = name
        self.values: List[float] = []
        self._sorted: Optional[List[float]] = None

    # -- recording ------------------------------------------------------

    def record(self, value: float) -> None:
        """Add one sample; non-finite values are rejected loudly."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"histogram {self.name!r} rejects non-finite {value!r}")
        self.values.append(value)
        self._sorted = None

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's samples into this one."""
        self.values.extend(other.values)
        self._sorted = None

    # -- statistics -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return float(sum(self.values))

    @property
    def min(self) -> Optional[float]:
        return min(self.values) if self.values else None

    @property
    def max(self) -> Optional[float]:
        return max(self.values) if self.values else None

    @property
    def mean(self) -> Optional[float]:
        return self.sum / len(self.values) if self.values else None

    def percentile(self, p: float) -> Optional[float]:
        """The *p*-th percentile (nearest-rank), ``None`` when empty.

        ``p`` is in [0, 100].  A single sample is every percentile of
        itself; ties collapse naturally because ranks index the sorted
        sample list.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.values:
            return None
        if self._sorted is None:
            self._sorted = sorted(self.values)
        if p == 0:
            return self._sorted[0]
        rank = math.ceil(p / 100.0 * len(self._sorted))
        return self._sorted[rank - 1]

    @property
    def p50(self) -> Optional[float]:
        return self.percentile(50)

    @property
    def p95(self) -> Optional[float]:
        return self.percentile(95)

    # -- export ---------------------------------------------------------

    def summary(self) -> Dict[str, Optional[float]]:
        """The scalar summary: JSON-safe, ``None`` for empty quantities."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
        }

    def to_dict(self, include_values: bool = True) -> Dict[str, object]:
        out: Dict[str, object] = dict(self.summary())
        out["name"] = self.name
        if include_values:
            out["values"] = list(self.values)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Histogram":
        """Rebuild from :meth:`to_dict` output (requires ``values``)."""
        histogram = cls(str(data.get("name", "")))
        for value in data.get("values", []):  # type: ignore[union-attr]
            histogram.record(float(value))
        return histogram

    def __repr__(self) -> str:
        if not self.values:
            return f"Histogram({self.name!r}, empty)"
        return (
            f"Histogram({self.name!r}, n={self.count}, "
            f"p50={self.p50:.4g}, p95={self.p95:.4g}, max={self.max:.4g})"
        )
