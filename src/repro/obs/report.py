"""Run summaries: one structured dict, one human-readable rendering.

``repro report`` and the benchmark artifacts both flow through
:func:`run_summary` — the machine-readable shape — and the CLI renders
it with :func:`render_report`.  Both take the collectors duck-typed
(anything with the :class:`repro.sim.metrics.MetricsCollector` /
:class:`repro.obs.spans.SpanCollector` surface) so this module stays
import-light.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.export import sanitize_for_json
from repro.obs.prof import profile_summary


def run_summary(metrics: Any, spans: Any = None) -> Dict[str, Any]:
    """The machine-readable summary of one run (JSON-safe).

    Keys: ``outcomes`` (txn outcome counts), ``counters``, ``messages``
    (per-kind breakdown), ``histograms`` (per-name scalar summaries),
    ``detection_latency`` (earliest, or ``None``), and — when a span
    collector is given — ``spans`` (counts) and ``slowest_spans``.
    """
    counters = dict(metrics.snapshot())
    messages = {
        key[len("messages."):]: value
        for key, value in counters.items()
        if key.startswith("messages.")
    }
    summary: Dict[str, Any] = {
        "outcomes": metrics.outcome_counts(),
        "counters": counters,
        "messages": messages,
        "histograms": {
            name: histogram.summary()
            for name, histogram in sorted(metrics.histograms.items())
        },
        "detections": len(metrics.detections),
        "detection_latency": metrics.detection_latency(),
    }
    chaos = {
        key: value for key, value in counters.items() if key.startswith("chaos_")
    }
    if chaos:
        # Chaos-harness accounting (repro.chaos): runs swept, oracle
        # violations, shares settled after the fact.
        summary["chaos"] = chaos
    sharding = {
        key: value
        for key, value in counters.items()
        if key == "migrations"
        or key.startswith(("shard_", "ring_", "migration_"))
    }
    if sharding:
        # Elastic-sharding accounting (repro.p2p.sharding): ring
        # membership churn, key moves, live migrations and their
        # disruption (deferred txns, WAL-tail entries shipped).
        # Absent entirely for non-sharded runs, so their summaries
        # stay byte-identical.
        summary["sharding"] = sharding
    profile = profile_summary(counters)
    if profile:
        # Hot-path micro-profile (repro.obs.prof): index hits vs. tree
        # walks, event-queue churn, derived index hit rate.
        summary["profile"] = profile
    if spans is not None:
        summary["spans"] = spans.summary()
        summary["slowest_spans"] = [
            {
                "name": span.name,
                "kind": span.kind,
                "peer": span.peer,
                "status": span.status,
                "duration": span.duration,
            }
            for span in spans.slowest(5)
        ]
    return sanitize_for_json(summary)


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_report(metrics: Any, spans: Any = None, title: str = "run report") -> str:
    """Render :func:`run_summary` as an aligned text report."""
    summary = run_summary(metrics, spans)
    lines: List[str] = [f"== {title} =="]

    outcomes = summary["outcomes"]
    lines.append("-- transaction outcomes --")
    if outcomes:
        for outcome, count in sorted(outcomes.items()):
            lines.append(f"  {outcome:<18} {count}")
    else:
        lines.append("  (none)")

    lines.append("-- message breakdown --")
    messages = summary["messages"]
    total = summary["counters"].get("messages", 0)
    lines.append(f"  {'total':<22} {total}")
    for kind, count in sorted(messages.items()):
        lines.append(f"  {kind:<22} {count}")

    lines.append("-- latency & depth histograms --")
    if summary["histograms"]:
        lines.append(
            f"  {'name':<22} {'n':>5} {'p50':>9} {'p95':>9} {'max':>9}"
        )
        for name, hist in summary["histograms"].items():
            lines.append(
                f"  {name:<22} {hist['count']:>5}"
                f" {_format_value(hist['p50']):>9}"
                f" {_format_value(hist['p95']):>9}"
                f" {_format_value(hist['max']):>9}"
            )
    else:
        lines.append("  (none)")
    lines.append(
        "  detection latency (earliest): "
        f"{_format_value(summary['detection_latency'])}"
    )

    if "chaos" in summary:
        lines.append("-- chaos --")
        for name, value in sorted(summary["chaos"].items()):
            lines.append(f"  {name:<22} {value}")

    if "sharding" in summary:
        lines.append("-- sharding --")
        for name, value in sorted(summary["sharding"].items()):
            lines.append(f"  {name:<22} {value}")

    if "profile" in summary:
        lines.append("-- hot-path profile --")
        for name, value in sorted(summary["profile"].items()):
            lines.append(f"  {name:<22} {_format_value(value)}")

    if spans is not None:
        span_summary = summary["spans"]
        lines.append("-- spans --")
        lines.append(
            f"  total={span_summary['total']} open={span_summary['open']}"
        )
        by_kind = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(span_summary["by_kind"].items())
        )
        if by_kind:
            lines.append(f"  by kind: {by_kind}")
        by_status = ", ".join(
            f"{status}={count}"
            for status, count in sorted(span_summary["by_status"].items())
        )
        if by_status:
            lines.append(f"  by status: {by_status}")
        if summary["slowest_spans"]:
            lines.append("-- slowest spans --")
            for span in summary["slowest_spans"]:
                lines.append(
                    f"  {_format_value(span['duration']):>9}s"
                    f"  {span['kind']:<13} {span['name']:<28}"
                    f" @{span['peer'] or '-':<5} [{span['status']}]"
                )
    return "\n".join(lines)
