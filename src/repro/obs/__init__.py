"""Structured observability: spans, histograms, JSON export, reports.

The paper evaluates its protocols by counting messages, pings and
"the number of XML nodes affected" (§3.2–§3.3); this package grows that
into a first-class monitoring subsystem, the way production P2P XML
platforms (ViP2P, the WebContent XML Store) treat tracing:

* :mod:`repro.obs.spans` — hierarchical spans over virtual time
  (transaction → service invocation → compensation step), emitted by
  the network, the peers and the transaction managers;
* :mod:`repro.obs.histogram` — latency/size distributions with
  percentiles, recorded alongside the flat counters;
* :mod:`repro.obs.export` — stable, strictly valid JSON artifacts
  (sorted keys, no ``Infinity``/``NaN``) for cross-run trajectories;
* :mod:`repro.obs.report` — the ``repro report`` run summary;
* :mod:`repro.obs.prof` — hot-path micro-profiler: index hits vs. tree
  walks, event-queue ops, message counts, wall-clock timers.
"""

from repro.obs.export import sanitize_for_json, stable_json, write_json_artifact
from repro.obs.histogram import Histogram
from repro.obs.prof import PROF, Profiler, profile_summary, profiled
from repro.obs.report import render_report, run_summary
from repro.obs.spans import Span, SpanCollector

__all__ = [
    "Histogram",
    "PROF",
    "Profiler",
    "Span",
    "SpanCollector",
    "profile_summary",
    "profiled",
    "render_report",
    "run_summary",
    "sanitize_for_json",
    "stable_json",
    "write_json_artifact",
]
