"""The unified entry point: ``Cluster`` → ``Session`` → ``Transaction``.

Everything a test, benchmark or example needs to drive the simulated
AXML P2P system lives behind three small classes:

* :class:`Cluster` — builds and owns a deployment: the network, the
  failure injector, replication, and the peers.  Classmethods construct
  the paper's canonical deployments (:meth:`Cluster.atplist`,
  :meth:`Cluster.fig1`, :meth:`Cluster.fig2`,
  :meth:`Cluster.from_topology`); :meth:`Cluster.scheduler` attaches the
  concurrent transaction engine.
* :class:`Session` — a client's view of one peer.
* :class:`Transaction` — a live root transaction, usable as a context
  manager: commit on clean exit, abort on exception.

Quickstart::

    from repro.api import Cluster

    cluster = Cluster.atplist()
    with cluster.session("AP1").transaction() as txn:
        txn.submit('<action type="query"><location>'
                   "Select p/points from p in ATPList//player;"
                   "</location></action>")
    # exiting the with-block committed the transaction

The legacy entry points (``repro.sim.scenarios.build_*`` and
``run_root_transaction``) still work but emit ``DeprecationWarning`` and
delegate here.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.axml.document import AXMLDocument
from repro.outcome import Outcome, OutcomeStatus
from repro.p2p.failure import FailureInjector
from repro.p2p.network import SimNetwork
from repro.p2p.peer import AXMLPeer
from repro.p2p.replication import ReplicationManager
from repro.services.descriptor import ParamSpec, ServiceDescriptor
from repro.services.service import DelegatingService, FunctionService, Service
from repro.sim.scheduler import TransactionScheduler
from repro.txn.operations import OperationOutcome
from repro.txn.recovery import FaultPolicy

__all__ = [
    "Cluster",
    "Session",
    "Transaction",
    "Outcome",
    "OutcomeStatus",
    "RunConfig",
    "SweepConfig",
    "chaos",
    "chaos_sweep",
    "add_run_arguments",
    "add_sweep_arguments",
    "add_output_arguments",
]

#: peer → list of (child_peer, method) it invokes, the topology shape.
Topology = Dict[str, List[Tuple[str, str]]]


class Transaction:
    """A live root transaction on one peer, with context-manager ergonomics.

    Created through :meth:`Session.transaction`.  On clean ``with`` exit
    the transaction commits; if the block raises, it aborts (backward
    recovery) and the exception propagates.  :meth:`commit` /
    :meth:`abort` may also be called explicitly — the exit handler is
    idempotent and will not double-finish.
    """

    def __init__(
        self,
        cluster: "Cluster",
        peer: AXMLPeer,
        _adopt=None,
        **span_attrs: str,
    ):
        self._cluster = cluster
        self._peer = peer
        self.txn = _adopt if _adopt is not None else peer.begin_transaction(**span_attrs)
        self._done = False

    # -- identity -------------------------------------------------------

    @property
    def txn_id(self) -> str:
        return self.txn.txn_id

    @property
    def origin(self) -> str:
        return self._peer.peer_id

    # -- work -----------------------------------------------------------

    def submit(
        self,
        action,
        document_name: Optional[str] = None,
        evaluation: str = "lazy",
    ) -> OperationOutcome:
        """Execute one local operation (an ``UpdateAction`` or its XML)."""
        return self._peer.submit(self.txn_id, action, document_name, evaluation)

    def invoke(
        self,
        target_peer: str,
        method_name: str,
        params: Optional[Dict[str, str]] = None,
        policies: Optional[Sequence[FaultPolicy]] = None,
    ) -> Outcome:
        """Invoke a service on another peer; returns a unified Outcome."""
        fragments = self._peer.invoke(
            self.txn_id, target_peer, method_name, params, policies
        )
        return Outcome(tuple(fragments), provider_peer=target_peer)

    # -- finishing ------------------------------------------------------

    def commit(self) -> None:
        """Origin-side commit.  Under OCC this may raise
        :class:`~repro.txn.occ.ValidationConflict`; the transaction is
        then already aborted and compensated — retry with a fresh one."""
        self._done = True
        self._peer.commit(self.txn_id)

    def abort(self) -> bool:
        """Origin-initiated abort; True if compensation fully ran."""
        self._done = True
        return self._peer.abort(self.txn_id)

    @property
    def finished(self) -> bool:
        return self._done

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._done:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False  # never suppress

    def __repr__(self) -> str:
        state = "finished" if self._done else "active"
        return f"Transaction({self.txn_id!r} @ {self.origin}, {state})"


class Session:
    """A client's handle on one peer of a cluster."""

    def __init__(self, cluster: "Cluster", peer_id: str):
        self._cluster = cluster
        self.peer_id = peer_id

    @property
    def peer(self) -> AXMLPeer:
        return self._cluster.peer(self.peer_id)

    def transaction(self, **span_attrs: str) -> Transaction:
        """Begin a transaction with this peer as origin."""
        return Transaction(self._cluster, self.peer, **span_attrs)

    begin = transaction  # explicit-style alias

    def __repr__(self) -> str:
        return f"Session({self.peer_id!r})"


class Cluster:
    """One simulated AXML deployment: network + peers + services.

    Build empty and populate (:meth:`add_peer`, :meth:`host_document`,
    :meth:`host_service`), or use a canonical constructor
    (:meth:`atplist`, :meth:`fig1`, :meth:`fig2`,
    :meth:`from_topology`).
    """

    def __init__(self, hop_latency: float = 0.005):
        self.network = SimNetwork(hop_latency=hop_latency)
        self.injector = FailureInjector(self.network)
        self.replication = ReplicationManager(self.network)
        #: The placement directory — the routing-truth holder maps the
        #: replication manager and elastic sharding share.
        self.directory = self.replication.directory
        self.peers: Dict[str, AXMLPeer] = {}
        #: invocation topology: peer → list of (child_peer, method).
        self.topology: Topology = {}

    # -- building -------------------------------------------------------

    def add_peer(self, peer_id: str, **peer_kwargs) -> AXMLPeer:
        """Create and register a peer; keyword args go to AXMLPeer."""
        peer_kwargs.setdefault("injector", self.injector)
        peer = AXMLPeer(peer_id, self.network, **peer_kwargs)
        self.peers[peer_id] = peer
        return peer

    def host_document(
        self,
        peer_id: str,
        document: Union[AXMLDocument, str],
        name: Optional[str] = None,
    ) -> AXMLDocument:
        """Host a document (an AXMLDocument, or its XML text + name)."""
        if isinstance(document, str):
            if name is None:
                raise ValueError("hosting XML text needs an explicit name=")
            document = AXMLDocument.from_xml(document, name=name)
        self.peer(peer_id).host_document(document)
        self.replication.register_primary(document.name, peer_id)
        return document

    def host_service(self, peer_id: str, service: Service) -> Service:
        self.peer(peer_id).host_service(service)
        self.replication.register_service(service.descriptor.method_name, peer_id)
        return service

    # -- access ---------------------------------------------------------

    def peer(self, peer_id: str) -> AXMLPeer:
        try:
            return self.peers[peer_id]
        except KeyError:
            raise KeyError(
                f"cluster has no peer {peer_id!r}; add_peer() it first"
            )

    def session(self, peer_id: str) -> Session:
        """A client session on one peer — the transaction entry point."""
        self.peer(peer_id)  # fail fast on unknown peers
        return Session(self, peer_id)

    @property
    def metrics(self):
        return self.network.metrics

    @property
    def spans(self):
        return self.network.spans

    @property
    def clock(self):
        return self.network.clock

    @property
    def events(self):
        return self.network.events

    # -- driving --------------------------------------------------------

    def run_until(self, deadline: float, max_events: int = 100_000) -> int:
        """Fire scheduled events up to *deadline* virtual seconds."""
        return self.network.events.run_until(deadline, max_events)

    def run_all(self, max_events: int = 100_000) -> int:
        """Fire every pending scheduled event."""
        return self.network.events.run_all(max_events)

    def scheduler(self, **scheduler_kwargs) -> TransactionScheduler:
        """A concurrent multi-transaction scheduler over this cluster."""
        return TransactionScheduler(self.network, **scheduler_kwargs)

    def run_topology(self, root: str = "AP1") -> Tuple[Transaction, Optional[Exception]]:
        """Begin a transaction at *root* and fire its topology invocations.

        Returns ``(transaction, error)`` — *error* is the exception that
        reached the origin when recovery ended backward, else None.  The
        transaction is left open on success so the caller decides
        commit/abort.
        """
        origin = self.peer(root)
        handle = Transaction(self, origin)
        error: Optional[Exception] = None
        try:
            for child, method in self.topology.get(root, []):
                handle.invoke(child, method, {})
        except Exception as exc:  # noqa: BLE001 - driver reports it
            error = exc
        return handle, error

    # -- canonical deployments -----------------------------------------

    @classmethod
    def atplist(
        cls,
        peer_independent: bool = False,
        chaining: bool = True,
        points_value: str = "890",
    ) -> "Cluster":
        """The §3.1 running example: AP1 hosts ATPList.xml; AP2 serves
        getPoints; AP3 serves getGrandSlamsWonbyYear."""
        from repro.sim.scenarios import ATPLIST_XML

        cluster = cls()
        for peer_id in ("AP1", "AP2", "AP3"):
            cluster.add_peer(
                peer_id, peer_independent=peer_independent, chaining=chaining
            )
        cluster.host_document(
            "AP1", AXMLDocument.from_xml(ATPLIST_XML, name="ATPList")
        )
        cluster.host_service(
            "AP2",
            FunctionService(
                ServiceDescriptor(
                    "getPoints",
                    kind="function",
                    params=(ParamSpec("name"),),
                    result_name="points",
                    compensatable=False,
                ),
                body=lambda params: [f"<points>{points_value}</points>"],
            ),
        )
        cluster.host_service(
            "AP3",
            FunctionService(
                ServiceDescriptor(
                    "getGrandSlamsWonbyYear",
                    kind="function",
                    params=(ParamSpec("name"), ParamSpec("year")),
                    result_name="grandslamswon",
                    compensatable=False,
                ),
                body=lambda params: [
                    f'<grandslamswon year="{params["year"]}">A, F</grandslamswon>'
                ],
            ),
        )
        return cluster

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        super_peers: Sequence[str] = ("AP1",),
        peer_independent: bool = False,
        chaining: bool = True,
        chain_scope: str = "immediate",
        parent_watch_interval: Optional[float] = None,
        hop_latency: float = 0.005,
        extra_peers: Sequence[str] = (),
    ) -> "Cluster":
        """A cluster for an arbitrary invocation topology.

        Every mentioned peer gets a document ``D<i>`` and a delegating
        service ``S<i>`` (local marker insert, then child invocations in
        topology order); ``extra_peers`` creates idle peers for
        recovery/replica experiments.
        """
        from repro.sim.scenarios import _marker_action, _peer_document

        cluster = cls(hop_latency=hop_latency)
        peer_ids: List[str] = []
        for parent, children in topology.items():
            if parent not in peer_ids:
                peer_ids.append(parent)
            for child, _ in children:
                if child not in peer_ids:
                    peer_ids.append(child)
        for extra in extra_peers:
            if extra not in peer_ids:
                peer_ids.append(extra)

        for peer_id in peer_ids:
            cluster.add_peer(
                peer_id,
                super_peer=peer_id in super_peers,
                peer_independent=peer_independent,
                chaining=chaining,
                chain_scope=chain_scope,
                parent_watch_interval=parent_watch_interval,
            )
            cluster.host_document(
                peer_id,
                AXMLDocument.from_xml(
                    _peer_document(peer_id), name=f"D{peer_id[2:]}"
                ),
            )

        for peer_id in peer_ids:
            method = f"S{peer_id[2:]}"
            cluster.host_service(
                peer_id,
                DelegatingService(
                    ServiceDescriptor(
                        method,
                        kind="delegating",
                        target_document=f"D{peer_id[2:]}",
                        result_name="entry",
                    ),
                    delegations=topology.get(peer_id, []),
                    local_action_template=_marker_action(peer_id),
                    extra_fragments=(
                        f'<done by="{peer_id}" method="{method}"/>',
                    ),
                ),
            )
        cluster.topology = dict(topology)
        return cluster

    @classmethod
    def fig1(cls, **kwargs) -> "Cluster":
        """Fig. 1's deployment (6 peers, nested invocations)."""
        from repro.sim.scenarios import FIG1_TOPOLOGY

        return cls.from_topology(FIG1_TOPOLOGY, **kwargs)

    @classmethod
    def fig2(cls, **kwargs) -> "Cluster":
        """Fig. 2's deployment (AP1 is a super peer, per the chain)."""
        from repro.sim.scenarios import FIG2_TOPOLOGY

        kwargs.setdefault("super_peers", ("AP1",))
        return cls.from_topology(FIG2_TOPOLOGY, **kwargs)

    # -- bridging to/from the legacy Scenario shape --------------------

    @classmethod
    def wrap(cls, scenario) -> "Cluster":
        """Adopt a legacy :class:`~repro.sim.scenarios.Scenario`."""
        cluster = cls.__new__(cls)
        cluster.network = scenario.network
        cluster.injector = scenario.injector
        cluster.replication = scenario.replication
        cluster.peers = dict(scenario.peers)
        cluster.topology = dict(scenario.topology)
        return cluster

    def as_scenario(self):
        """This cluster in the legacy Scenario shape (for old callers)."""
        from repro.sim.scenarios import Scenario

        return Scenario(
            self.network,
            self.injector,
            dict(self.peers),
            self.replication,
            dict(self.topology),
        )

    def __repr__(self) -> str:
        return f"Cluster(peers={sorted(self.peers)})"


@dataclass(frozen=True)
class RunConfig:
    """One run's knobs — the single configuration surface.

    The same frozen value drives :func:`chaos`, one cell of a
    :class:`SweepConfig`, and the ``repro chaos`` / ``repro bench`` /
    ``repro report`` CLIs (whose flags map onto these fields through
    :func:`add_run_arguments` / :meth:`from_namespace`).  Fields mirror
    :class:`~repro.chaos.ChaosConfig` plus the PR 7 WAL knobs;
    :meth:`to_chaos_config` applies the implicit-durability rule the
    CLI always had (crash faults, WAL mutations, checkpointing and
    batching all need the on-disk WAL, so they switch it on).
    """

    seed: int = 7
    txns: int = 20
    providers: int = 6
    origins: int = 2
    concurrency: int = 4
    ops_per_txn: int = 3
    invoke_fraction: float = 0.6
    fault_rate: float = 0.2
    handlers: bool = False
    mutate: str = ""
    durability: bool = False
    crash_rate: float = 0.0
    #: WAL checkpoint interval in appended entries; 0 = no checkpoints.
    checkpoint_every: int = 0
    #: WAL group-commit batch size; 1 = flush every frame.
    wal_batch: int = 1
    #: Replicas per provider document/service; 0 = no replication.
    replicas: int = 0
    #: Committed entries buffered per channel before one WAL-ship
    #: message goes on the wire.
    ship_batch: int = 1
    #: Elastic sharding: place provider shards by the consistent-hash
    #: ring (``repro.p2p.sharding``) with live migration faults.
    sharding: bool = False
    #: Spare peers that join the ring mid-run (needs ``sharding``).
    shard_spares: int = 0

    def to_chaos_config(self):
        """The equivalent :class:`~repro.chaos.ChaosConfig` (with the
        WAL implied when any knob that needs it is set)."""
        from repro.chaos import ChaosConfig

        return ChaosConfig(
            seed=self.seed,
            txns=self.txns,
            providers=self.providers,
            origins=self.origins,
            concurrency=self.concurrency,
            ops_per_txn=self.ops_per_txn,
            invoke_fraction=self.invoke_fraction,
            fault_rate=self.fault_rate,
            handlers=self.handlers,
            mutate=self.mutate,
            durability=bool(
                self.durability
                or self.crash_rate > 0
                or self.mutate == "crash_skip_undo"
                or self.checkpoint_every > 0
                or self.wal_batch > 1
                # WAL shipping streams the durable log, so replication
                # implies the on-disk WAL too.
                or self.replicas > 0
            ),
            crash_rate=self.crash_rate,
            checkpoint_every=self.checkpoint_every,
            wal_batch=self.wal_batch,
            replicas=self.replicas,
            ship_batch=self.ship_batch,
            sharding=self.sharding,
            shard_spares=self.shard_spares,
        )

    @classmethod
    def from_namespace(cls, args) -> "RunConfig":
        """Build from an argparse namespace produced by a parser that
        used :func:`add_run_arguments` (missing attributes keep their
        field defaults, so partial parsers — ``repro bench`` — work)."""
        values = {}
        renamed = {"ops_per_txn": "ops"}
        for f in fields(cls):
            attr = renamed.get(f.name, f.name)
            if hasattr(args, attr):
                value = getattr(args, attr)
                values[f.name] = f.default if value is None else value
        return cls(**values)


@dataclass(frozen=True)
class SweepConfig:
    """A seed sweep over one :class:`RunConfig` base.

    ``concurrencies`` / ``fault_rates`` default to empty, meaning
    "derive from the base run" (its concurrency and fault rate); the
    ``repro chaos --sweep`` CLI widens concurrencies to
    ``(2, base.concurrency)`` explicitly, as it always did.
    """

    run: RunConfig = field(default_factory=RunConfig)
    #: How many seeds, ``0..seeds-1``.
    seeds: int = 10
    #: Worker processes (0 = all cores; output byte-identical to serial).
    workers: int = 1
    concurrencies: Tuple[int, ...] = ()
    fault_rates: Tuple[float, ...] = ()

    @classmethod
    def from_namespace(cls, args) -> "SweepConfig":
        run = RunConfig.from_namespace(args)
        return cls(
            run=run,
            seeds=getattr(args, "seeds", cls.seeds),
            workers=getattr(args, "workers", cls.workers),
            concurrencies=(2, run.concurrency),
        )


# -- shared argparse builders (one flag surface for every CLI) -------------

def add_run_arguments(parser) -> None:
    """Install the :class:`RunConfig` flags on *parser*."""
    parser.add_argument("--seed", type=int, default=RunConfig.seed)
    parser.add_argument("--txns", type=int, default=RunConfig.txns)
    parser.add_argument(
        "--fault-rate", type=float, default=RunConfig.fault_rate,
        help="planned faults per transaction (default %(default)s)")
    parser.add_argument("--providers", type=int, default=RunConfig.providers)
    parser.add_argument("--origins", type=int, default=RunConfig.origins)
    parser.add_argument(
        "--concurrency", type=int, default=RunConfig.concurrency)
    parser.add_argument(
        "--ops", type=int, default=RunConfig.ops_per_txn,
        help="operations per transaction")
    parser.add_argument(
        "--invoke-fraction", type=float, default=RunConfig.invoke_fraction,
        help="fraction of ops that are remote invocations")
    parser.add_argument(
        "--handlers", action="store_true",
        help="install retry fault policies (forward recovery)")
    parser.add_argument(
        "--mutate", default="",
        choices=("skip_undo", "double_apply", "stale_chain",
                 "crash_skip_undo"),
        help="deliberately break the protocol (oracle demo)")
    parser.add_argument(
        "--crash-rate", type=float, default=RunConfig.crash_rate,
        help="planned crash-and-restart faults per transaction "
             "(implies --durability)")
    parser.add_argument(
        "--durability", action="store_true",
        help="give providers an on-disk WAL (crash recovery)")
    parser.add_argument(
        "--checkpoint-every", type=int, default=RunConfig.checkpoint_every,
        dest="checkpoint_every", metavar="N",
        help="WAL checkpoint every N appended entries "
             "(bounds recovery replay; implies --durability)")
    parser.add_argument(
        "--wal-batch", type=int, default=RunConfig.wal_batch,
        dest="wal_batch", metavar="N",
        help="WAL group-commit batch size (implies --durability "
             "when > 1)")
    parser.add_argument(
        "--replicas", type=int, default=RunConfig.replicas, metavar="R",
        help="replicas per provider document/service "
             "(WAL shipping + deterministic failover)")
    parser.add_argument(
        "--ship-batch", type=int, default=RunConfig.ship_batch,
        dest="ship_batch", metavar="N",
        help="committed WAL entries batched per ship message")
    parser.add_argument(
        "--sharding", action="store_true",
        help="consistent-hash shard placement with live migration "
             "(docs/SHARDING.md)")
    parser.add_argument(
        "--shard-spares", type=int, default=RunConfig.shard_spares,
        dest="shard_spares", metavar="K",
        help="spare peers that join the ring mid-run and trigger "
             "shard rebalancing (needs --sharding)")


def add_sweep_arguments(parser, workers_help: str = "") -> None:
    """Install the :class:`SweepConfig` flags on *parser*."""
    parser.add_argument(
        "--workers", type=int, default=SweepConfig.workers,
        help=workers_help or
        "worker processes for the sweep (0 = all cores; "
        "output is byte-identical to serial)")
    parser.add_argument(
        "--seeds", type=int, default=SweepConfig.seeds,
        help="(--sweep) how many seeds, 0..N-1")


def add_output_arguments(parser) -> None:
    """Install the shared artifact flag (``--json-out``) on *parser*."""
    parser.add_argument(
        "--json-out", metavar="PATH",
        help="also write the deterministic result as a JSON artifact")


def _warn_kwargs_shim(name: str, replacement: str) -> None:
    # stacklevel=3: this helper -> the shimmed facade -> the caller.
    warnings.warn(
        f"{name} with ChaosConfig keyword arguments is deprecated; "
        f"pass a {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def chaos(config: Optional[RunConfig] = None, **config_kwargs):
    """Run one seeded chaos experiment; returns a ``ChaosRunResult``.

    Facade over :mod:`repro.chaos`, configured by one
    :class:`RunConfig`.  ``result.ok`` says whether the atomicity
    oracle verified all-or-nothing outcomes::

        from repro.api import RunConfig, chaos

        result = chaos(RunConfig(seed=7, txns=20, fault_rate=0.2))
        assert result.ok, result.violations

    The pre-RunConfig spelling ``chaos(seed=7, txns=20, ...)`` (bare
    :class:`~repro.chaos.ChaosConfig` keyword arguments) still works
    but emits a ``DeprecationWarning``.  (Imported lazily:
    ``repro.chaos`` builds its clusters through this module.)
    """
    from repro.chaos import ChaosConfig, run_chaos

    if config is not None:
        if config_kwargs:
            raise TypeError(
                "chaos() takes a RunConfig or keyword arguments, not both"
            )
        return run_chaos(config.to_chaos_config())
    _warn_kwargs_shim("chaos()", "RunConfig")
    return run_chaos(ChaosConfig(**config_kwargs))


def chaos_sweep(config=None, workers: int = 1, metrics=None, **config_kwargs):
    """Sweep chaos over seeds; returns ``(table, failures)``.

    Facade over :func:`repro.chaos.chaos_sweep`, configured by one
    :class:`SweepConfig`.  ``workers`` > 1 fans the sweep over
    processes (0 = all cores) with byte-identical output::

        from repro.api import RunConfig, SweepConfig, chaos_sweep

        table, failures = chaos_sweep(
            SweepConfig(run=RunConfig(txns=12), seeds=10, workers=4))
        assert not failures, failures[0].violations

    The pre-SweepConfig spelling — a seeds iterable first plus
    :class:`~repro.chaos.ChaosConfig` keyword arguments,
    ``chaos_sweep(range(10), workers=4, txns=12)`` — still works but
    emits a ``DeprecationWarning``.
    """
    from repro.chaos import ChaosConfig
    from repro.chaos import chaos_sweep as _sweep

    if isinstance(config, SweepConfig):
        if config_kwargs:
            raise TypeError(
                "chaos_sweep() takes a SweepConfig or the legacy "
                "seeds + keyword arguments form, not both"
            )
        base = config.run.to_chaos_config()
        return _sweep(
            base,
            seeds=range(config.seeds),
            concurrencies=config.concurrencies or (base.concurrency,),
            fault_rates=config.fault_rates or (base.fault_rate,),
            metrics=metrics,
            workers=config.workers,
        )
    _warn_kwargs_shim("chaos_sweep()", "SweepConfig")
    base = ChaosConfig(**config_kwargs)
    return _sweep(
        base,
        seeds=config,
        concurrencies=(base.concurrency,),
        fault_rates=(base.fault_rate,),
        metrics=metrics,
        workers=workers,
    )
