"""Dynamic compensation construction (§3.1) — the paper's core idea.

Compensation-based models preserve relaxed atomicity by executing, for
each forward operation, a *compensating* operation that semantically
undoes it — in the reverse order of the forward execution.  The paper's
argument is that for AXML the compensating operations **cannot be
pre-defined statically**:

* a delete's compensation needs the deleted data — "the results of the
  <location> queries of the delete operations need to be logged";
* an insert's compensation deletes "the node having the corresponding
  ID", known only after execution;
* a *query* may materialize embedded service calls (under lazy
  evaluation, a set determined only at run time), so even queries need
  dynamically constructed compensation.

This module turns the change records produced by
:func:`repro.query.update.apply_action` and by the materialization
engine into compensating :class:`~repro.query.ast.UpdateAction`
documents.  Because actions serialize to XML, the constructed
compensations can be shipped to other peers — the enabler of
peer-independent compensation (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import CompensationError
from repro.query.ast import ActionType, NodeRef, SelectQuery, UpdateAction, VarPath
from repro.query.update import (
    ChangeRecord,
    DeleteRecord,
    InsertRecord,
    ReplaceRecord,
    UpdateResult,
    apply_action,
)
from repro.xmlstore.nodes import Document, NodeId
from repro.xmlstore.path import NULL_METER, PathExpr, TraversalMeter


def node_query(node_id: NodeId, document_name: str) -> SelectQuery:
    """Build the id-based location query ``Select n from n in id(..@..);``."""
    return SelectQuery(
        select_paths=(VarPath("n", PathExpr(())),),
        var="n",
        source=NodeRef(repr(node_id), document_name),
    )


def compensation_for_insert(record: InsertRecord, document_name: str) -> UpdateAction:
    """Insert → delete the node with the returned id (§3.1)."""
    return UpdateAction(
        action_type=ActionType.DELETE,
        location=node_query(record.node_id, document_name),
    )


def compensation_for_delete(
    record: DeleteRecord, document_name: str, ordered: bool = True
) -> UpdateAction:
    """Delete → insert the logged snapshot back under the logged parent.

    With ``ordered=True`` the insert carries a sibling anchor
    (before/after semantics of [16]) so the original ordering is
    preserved; ``ordered=False`` reproduces the paper's unordered
    behaviour (plain append).

    Note the deviation from the paper's worked example: the example's
    compensating location re-evaluates the original path with ``/..``
    appended (``p/citizenship/..``), which navigates *through the deleted
    node* and finds nothing once the delete has happened.  We target the
    logged parent id instead — consistent with the paper's own use of
    node ids for insert compensation.
    """
    anchor: Optional[Tuple[str, str]] = None
    if ordered:
        if record.before_id is not None:
            anchor = ("after", repr(record.before_id))
        elif record.after_id is not None:
            anchor = ("before", repr(record.after_id))
    return UpdateAction(
        action_type=ActionType.INSERT,
        location=node_query(record.parent_id, document_name),
        data=(record.snapshot_xml,),
        anchor=anchor,
        rebind=True,
    )


def compensation_for_replace(
    record: ReplaceRecord, document_name: str, ordered: bool = True
) -> List[UpdateAction]:
    """Replace → delete the new node(s), re-insert the old value (§3.1).

    Mirrors the paper's decomposition: the compensating operation is
    itself a delete followed by an insert that "reinstates the old data
    values".
    """
    actions: List[UpdateAction] = [
        compensation_for_insert(ins, document_name) for ins in record.inserted
    ]
    actions.append(compensation_for_delete(record.deleted, document_name, ordered))
    return actions


def compensate_records(
    records: Sequence[ChangeRecord], document_name: str, ordered: bool = True
) -> List[UpdateAction]:
    """Compensating actions for a record sequence, in reverse order.

    This is the run-time constructor: it reads the log records of one
    forward operation (an update's change records, or the records of all
    service-call materializations a query triggered) and emits the
    actions that undo them.  Compensation executes compensating
    operations "in the reverse order of the execution of their
    respective forward operations" — the reversal happens here.
    """
    actions: List[UpdateAction] = []
    for record in reversed(list(records)):
        if isinstance(record, InsertRecord):
            actions.append(compensation_for_insert(record, document_name))
        elif isinstance(record, DeleteRecord):
            actions.append(compensation_for_delete(record, document_name, ordered))
        elif isinstance(record, ReplaceRecord):
            actions.extend(compensation_for_replace(record, document_name, ordered))
        else:  # pragma: no cover - exhaustive over ChangeRecord
            raise CompensationError(f"unknown change record {record!r}")
    return actions


def compensating_actions_for(
    result: UpdateResult, document_name: str, ordered: bool = True
) -> List[UpdateAction]:
    """Compensating actions for one applied update's result."""
    return compensate_records(result.records, document_name, ordered)


@dataclass
class CompensationPlan:
    """An executable compensation: ordered actions against one document.

    Produced dynamically at run time and consumed either locally (the
    original peer compensates itself) or remotely (peer-independent
    compensation: the plan's XML form is shipped and executed by whoever
    performs recovery, §3.2).
    """

    document_name: str
    actions: List[UpdateAction] = field(default_factory=list)

    def extend_from_records(
        self, records: Sequence[ChangeRecord], ordered: bool = True
    ) -> None:
        """Append compensation for *records* (newest forward op first)."""
        self.actions.extend(compensate_records(records, self.document_name, ordered))

    def is_empty(self) -> bool:
        return not self.actions

    def to_xml(self) -> str:
        """Serialize as a ``<compensation>`` document for shipping."""
        body = "".join(action.to_xml() for action in self.actions)
        return f'<compensation document="{self.document_name}">{body}</compensation>'

    @classmethod
    def from_xml(cls, xml_text: str) -> "CompensationPlan":
        from repro.query.parser import action_from_element
        from repro.xmlstore.parser import parse_document

        root = parse_document(xml_text, name="compensation").root
        if root.name.local != "compensation":
            raise CompensationError(
                f"expected <compensation>, found <{root.name.text}>"
            )
        plan = cls(root.attributes.get("document", ""))
        for child in root.find_children("action"):
            plan.actions.append(action_from_element(child))
        return plan

    def execute(
        self, document: Document, meter: TraversalMeter = NULL_METER
    ) -> List[UpdateResult]:
        """Run every compensating action, in order, against *document*.

        Individual actions whose targets have vanished (e.g. the node was
        already removed by a later-compensated operation) are no-ops —
        compensation moves the system to an *acceptable* state, which
        tolerates already-gone targets, but genuine failures still raise.
        """
        results: List[UpdateResult] = []
        for action in self.actions:
            results.append(
                apply_action(document, action, meter, tolerate_missing_targets=True)
            )
        return results

    def __len__(self) -> int:
        return len(self.actions)
