"""Typed durability and rejoin knobs (replacing stringly parameters).

PR 5 grew two stringly-typed parameters: ``AXMLPeer(durability=<dir>)``
(a bare directory path meaning "attach an on-disk WAL there") and
``AXMLPeer.rejoin(mode="compensate"|"in_doubt")``.  This module gives
both a typed surface while keeping every old call-site working — the
strings are *coerced*, never rejected.

Mapping notes (old → new), in the spirit of ``repro/outcome.py``:

===========================  =============================================
old spelling                 new spelling
===========================  =============================================
``durability=None``          ``durability=None`` (≡ ``Durability.MEMORY``)
``durability="/wal/dir"``    ``DurabilityPolicy(directory="/wal/dir")``
                             (≡ ``Durability.WAL`` with default knobs;
                             the bare string is still accepted and
                             coerced by :func:`coerce_durability`)
``rejoin(mode="compensate")``  ``rejoin(mode=RejoinMode.COMPENSATE)``
``rejoin(mode="in_doubt")``    ``rejoin(mode=RejoinMode.IN_DOUBT)``
===========================  =============================================

:class:`DurabilityPolicy` also carries the PR 7 write-path knobs that a
bare path could never express: group-commit batching (``wal_batch``,
``flush_interval``, ``flush_on_prepare``) and checkpointing
(``checkpoint_every``) — see ``docs/DURABILITY.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union


class Durability(enum.Enum):
    """Whether a peer's operation log outlives its process."""

    #: In-memory log only; the peer fails by disconnecting, never crashing.
    MEMORY = "memory"
    #: Every log entry streamed to an on-disk WAL (``repro.txn.durable_wal``).
    WAL = "wal"

    @classmethod
    def coerce(cls, value: Union["Durability", str]) -> "Durability":
        """Accept the enum or its string value (``"memory"`` / ``"wal"``)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"unknown durability {value!r}; use one of "
                f"{[m.value for m in cls]}"
            ) from None


class RejoinMode(enum.Enum):
    """What :meth:`AXMLPeer.rejoin` does with recovered shares."""

    #: Compensate every recovered share immediately (the caller knows
    #: the rest of the system already aborted around the dead peer).
    COMPENSATE = "compensate"
    #: Rebuild an ``ACTIVE`` in-doubt context per recovered transaction
    #: and wait for ``resolve_in_doubt`` — required after a crash.
    IN_DOUBT = "in_doubt"

    @classmethod
    def coerce(cls, value: Union["RejoinMode", str]) -> "RejoinMode":
        """Accept the enum or its string value; unknown strings raise
        the same ``ValueError`` the stringly API raised."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(f"unknown rejoin mode {value!r}") from None


@dataclass(frozen=True)
class DurabilityPolicy:
    """Every knob of a peer's durable WAL, in one frozen value.

    ``mode`` is :attr:`Durability.WAL` whenever a ``directory`` is set.
    The defaults reproduce PR 5's write path exactly: one physical
    flush per frame (``wal_batch=1``), no flush timer, no checkpoints —
    so a policy built from a bare directory string changes nothing.
    """

    directory: str = ""
    #: Frames buffered per group-commit batch; 1 = flush every frame.
    wal_batch: int = 1
    #: Virtual-time flush quantum for a partially-filled batch (needs
    #: an event queue; ``None`` = no timer, barriers/batch-size only).
    flush_interval: Optional[float] = 0.05
    #: Barrier-flush before protocol-critical message sends (share
    #: hand-off, invocation requests) so a durable entry can never be
    #: deferred past a message another peer acts on.
    flush_on_prepare: bool = True
    #: Take a checkpoint every N appended entries; 0 disables.
    checkpoint_every: int = 0
    #: Segment rollover threshold (ignored while checkpointing is on —
    #: checkpoints subsume rollover compaction).
    segment_max_frames: int = 256

    def __post_init__(self) -> None:
        if self.wal_batch < 1:
            raise ValueError("wal_batch must be >= 1")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.flush_interval is not None and self.flush_interval <= 0:
            raise ValueError("flush_interval must be positive (or None)")

    @property
    def mode(self) -> Durability:
        return Durability.WAL if self.directory else Durability.MEMORY


def coerce_durability(
    value: Union[None, str, DurabilityPolicy]
) -> Optional[DurabilityPolicy]:
    """The ``AXMLPeer(durability=...)`` coercion: ``None`` stays None
    (memory-only), a bare string is a WAL directory with default knobs,
    a :class:`DurabilityPolicy` passes through."""
    if value is None:
        return None
    if isinstance(value, DurabilityPolicy):
        return value if value.directory else None
    if isinstance(value, str):
        return DurabilityPolicy(directory=value) if value else None
    raise TypeError(
        f"durability must be None, a directory path or a DurabilityPolicy, "
        f"not {type(value).__name__}"
    )
