"""The per-peer operation log.

§3.1 spells out what must be logged to make dynamic compensation
possible: "the delete operations as well as the results of the
<location> queries of the delete operations need to be logged", insert
operations log the returned node ids, and query operations log the
change records of every service-call materialization they triggered.

The log is append-only and in-memory (durability is out of the paper's
scope — peers fail by *disconnecting*, not by losing state), but it
round-trips through a text form so tests can assert exactly what a
recovering peer would see.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.query.update import ChangeRecord


@dataclass
class LogEntry:
    """One logged forward operation.

    ``kind`` is ``update`` (insert/delete/replace), ``query`` (with the
    materialization records lazy evaluation produced) or ``service``
    (an operation executed on behalf of a remote invoker).
    """

    seq: int
    txn_id: str
    kind: str
    document_name: str
    action_xml: str
    records: List[ChangeRecord] = field(default_factory=list)
    #: Simulated time of the append (0.0 outside a simulation).
    timestamp: float = 0.0

    @property
    def is_compensatable(self) -> bool:
        return bool(self.records)


class OperationLog:
    """Append-only operation log of one peer."""

    def __init__(self, peer_id: str = ""):
        self.peer_id = peer_id
        self._entries: List[LogEntry] = []
        self._seq = itertools.count(1)

    def append(
        self,
        txn_id: str,
        kind: str,
        document_name: str,
        action_xml: str,
        records: Sequence[ChangeRecord] = (),
        timestamp: float = 0.0,
    ) -> LogEntry:
        """Append a forward operation's log entry and return it."""
        entry = LogEntry(
            seq=next(self._seq),
            txn_id=txn_id,
            kind=kind,
            document_name=document_name,
            action_xml=action_xml,
            records=list(records),
            timestamp=timestamp,
        )
        self._entries.append(entry)
        return entry

    # -- reading ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    def entries_for(self, txn_id: str) -> List[LogEntry]:
        """All live entries of one transaction, oldest first."""
        return [e for e in self._entries if e.txn_id == txn_id]

    def undo_entries(self, txn_id: str) -> List[LogEntry]:
        """Entries to compensate, newest first (reverse execution order)."""
        return list(reversed(self.entries_for(txn_id)))

    def documents_touched(self, txn_id: str) -> List[str]:
        """Distinct documents the transaction modified, in first-touch order."""
        seen = set()
        out: List[str] = []
        for entry in self.entries_for(txn_id):
            if entry.records and entry.document_name not in seen:
                seen.add(entry.document_name)
                out.append(entry.document_name)
        return out

    def record_count(self, txn_id: str) -> int:
        return sum(len(e.records) for e in self.entries_for(txn_id))

    # -- truncation ----------------------------------------------------------

    def truncate(self, txn_id: str) -> int:
        """Drop a finished transaction's entries; returns how many.

        Called on commit (compensation will never be needed) or after
        compensation completes.
        """
        before = len(self._entries)
        self._entries = [e for e in self._entries if e.txn_id != txn_id]
        return before - len(self._entries)

    # -- diagnostics --------------------------------------------------------------

    def approximate_bytes(self, txn_id: Optional[str] = None) -> int:
        """Rough log footprint (used by the log-vs-snapshot experiment E3)."""
        entries = self.entries_for(txn_id) if txn_id else self._entries
        total = 0
        for entry in entries:
            total += len(entry.action_xml)
            for record in entry.records:
                snapshot = getattr(record, "snapshot_xml", "")
                inserted = getattr(record, "inserted_xml", "")
                total += len(snapshot) + len(inserted) + 32
                if record.kind == "replace":
                    total += len(record.deleted.snapshot_xml)
                    total += sum(len(i.inserted_xml) for i in record.inserted)
        return total

    def dump(self) -> str:
        """Human-readable text form of the whole log."""
        lines = []
        for e in self._entries:
            lines.append(
                f"#{e.seq} [{e.txn_id}] {e.kind} doc={e.document_name} "
                f"records={len(e.records)} t={e.timestamp:.3f} {e.action_xml}"
            )
        return "\n".join(lines)

    # -- persistence ---------------------------------------------------------

    def to_text(self) -> str:
        """Serialize the full log as an XML document.

        Together with :meth:`from_text` this gives peers a restart
        story: a peer that went down with in-flight transactions can
        reload its log and compensate them on rejoin (see
        ``AXMLPeer.rejoin``).  The encoding dogfoods the library's own
        XML layer.
        """
        from repro.xmlstore.nodes import Document
        from repro.xmlstore.serializer import serialize

        doc = Document("log")
        root = doc.create_root("log")
        root.attributes["peer"] = self.peer_id
        for entry in self._entries:
            entry_el = root.new_element(
                "entry",
                {
                    "seq": str(entry.seq),
                    "txn": entry.txn_id,
                    "kind": entry.kind,
                    "document": entry.document_name,
                    "timestamp": repr(entry.timestamp),
                },
            )
            entry_el.new_element("forward").new_text(entry.action_xml)
            for record in entry.records:
                _record_to_element(entry_el, record)
        return serialize(doc)

    @classmethod
    def from_text(cls, text: str) -> "OperationLog":
        """Restore a log serialized by :meth:`to_text`."""
        import itertools as _itertools

        from repro.xmlstore.parser import parse_document

        doc = parse_document(text, name="log")
        log = cls(doc.root.attributes.get("peer", ""))
        max_seq = 0
        for entry_el in doc.root.find_children("entry"):
            forward_el = entry_el.first_child("forward")
            records = [
                _record_from_element(rec_el)
                for rec_el in entry_el.find_children("record")
            ]
            entry = LogEntry(
                seq=int(entry_el.attributes["seq"]),
                txn_id=entry_el.attributes["txn"],
                kind=entry_el.attributes["kind"],
                document_name=entry_el.attributes["document"],
                action_xml=forward_el.text_content() if forward_el is not None else "",
                records=records,
                timestamp=float(entry_el.attributes.get("timestamp", "0")),
            )
            log._entries.append(entry)
            max_seq = max(max_seq, entry.seq)
        log._seq = _itertools.count(max_seq + 1)
        return log


def _record_to_element(parent, record: ChangeRecord) -> None:
    from repro.query.update import DeleteRecord, InsertRecord, ReplaceRecord

    if isinstance(record, DeleteRecord):
        el = parent.new_element(
            "record",
            {
                "kind": "delete",
                "node": repr(record.node_id),
                "parent": repr(record.parent_id),
                "index": str(record.index),
                "before": repr(record.before_id) if record.before_id else "",
                "after": repr(record.after_id) if record.after_id else "",
            },
        )
        el.new_element("snapshot").new_text(record.snapshot_xml)
    elif isinstance(record, InsertRecord):
        el = parent.new_element(
            "record",
            {
                "kind": "insert",
                "node": repr(record.node_id),
                "parent": repr(record.parent_id),
                "index": str(record.index),
            },
        )
        el.new_element("data").new_text(record.inserted_xml)
    elif isinstance(record, ReplaceRecord):
        el = parent.new_element("record", {"kind": "replace"})
        _record_to_element(el, record.deleted)
        for inserted in record.inserted:
            _record_to_element(el, inserted)
    else:  # pragma: no cover - exhaustive
        raise TypeError(f"unknown record {record!r}")


def _record_from_element(element) -> ChangeRecord:
    from repro.query.update import DeleteRecord, InsertRecord, ReplaceRecord
    from repro.xmlstore.nodes import NodeId

    kind = element.attributes.get("kind", "")
    if kind == "delete":
        snapshot_el = element.first_child("snapshot")
        return DeleteRecord(
            node_id=NodeId.parse(element.attributes["node"]),
            parent_id=NodeId.parse(element.attributes["parent"]),
            index=int(element.attributes["index"]),
            before_id=(
                NodeId.parse(element.attributes["before"])
                if element.attributes.get("before")
                else None
            ),
            after_id=(
                NodeId.parse(element.attributes["after"])
                if element.attributes.get("after")
                else None
            ),
            snapshot_xml=snapshot_el.text_content() if snapshot_el is not None else "",
        )
    if kind == "insert":
        data_el = element.first_child("data")
        return InsertRecord(
            node_id=NodeId.parse(element.attributes["node"]),
            parent_id=NodeId.parse(element.attributes["parent"]),
            index=int(element.attributes["index"]),
            inserted_xml=data_el.text_content() if data_el is not None else "",
        )
    if kind == "replace":
        children = element.find_children("record")
        deleted = _record_from_element(children[0])
        inserted = [_record_from_element(child) for child in children[1:]]
        return ReplaceRecord(deleted, inserted)
    raise ValueError(f"unknown record kind {kind!r}")
