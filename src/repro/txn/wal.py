"""The per-peer operation log.

§3.1 spells out what must be logged to make dynamic compensation
possible: "the delete operations as well as the results of the
<location> queries of the delete operations need to be logged", insert
operations log the returned node ids, and query operations log the
change records of every service-call materialization they triggered.

The log is append-only.  It lives in memory, round-trips through a text
form (:meth:`OperationLog.to_text` / :meth:`OperationLog.from_text`),
and can be made crash-durable by attaching a :class:`LogSink` — see
:mod:`repro.txn.durable_wal`, which streams every entry to disk at
append time so a peer that dies mid-transaction can rebuild its log on
restart and compensate from it (``AXMLPeer.rejoin``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Protocol, Sequence

from repro.query.update import ChangeRecord


@dataclass
class LogEntry:
    """One logged forward operation.

    ``kind`` is ``update`` (insert/delete/replace), ``query`` (with the
    materialization records lazy evaluation produced) or ``service``
    (an operation executed on behalf of a remote invoker).
    """

    seq: int
    txn_id: str
    kind: str
    document_name: str
    action_xml: str
    records: List[ChangeRecord] = field(default_factory=list)
    #: Simulated time of the append (0.0 outside a simulation).
    timestamp: float = 0.0
    #: Memoized :func:`entry_to_xml` frame.  Entries are immutable after
    #: append, so the first encode (durable-WAL write) is reused by the
    #: checkpoint and by every replication ship instead of re-rendering.
    _xml_cache: Optional[str] = field(
        default=None, repr=False, compare=False
    )

    @property
    def is_compensatable(self) -> bool:
        return bool(self.records)


class LogSink(Protocol):
    """Durability hook: observes the log's mutations as they happen.

    ``on_append`` runs *after* the entry joined the in-memory log;
    ``on_truncate`` runs after a finished transaction's entries were
    dropped.  :class:`repro.txn.durable_wal.DurableWal` implements this
    protocol with an on-disk segment file.
    """

    def on_append(self, entry: LogEntry) -> None: ...

    def on_truncate(self, txn_id: str) -> None: ...


class OperationLog:
    """Append-only operation log of one peer."""

    def __init__(self, peer_id: str = ""):
        self.peer_id = peer_id
        self._entries: List[LogEntry] = []
        self._seq = itertools.count(1)
        #: Optional durability sink (see :class:`LogSink`).
        self.sink: Optional[LogSink] = None

    def append(
        self,
        txn_id: str,
        kind: str,
        document_name: str,
        action_xml: str,
        records: Sequence[ChangeRecord] = (),
        timestamp: float = 0.0,
    ) -> LogEntry:
        """Append a forward operation's log entry and return it."""
        entry = LogEntry(
            seq=next(self._seq),
            txn_id=txn_id,
            kind=kind,
            document_name=document_name,
            action_xml=action_xml,
            records=list(records),
            timestamp=timestamp,
        )
        self._entries.append(entry)
        if self.sink is not None:
            self.sink.on_append(entry)
        return entry

    # -- reading ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    def entries_for(self, txn_id: str) -> List[LogEntry]:
        """All live entries of one transaction, oldest first."""
        return [e for e in self._entries if e.txn_id == txn_id]

    def undo_entries(self, txn_id: str) -> List[LogEntry]:
        """Entries to compensate, newest first (reverse execution order)."""
        return list(reversed(self.entries_for(txn_id)))

    def documents_touched(self, txn_id: str) -> List[str]:
        """Distinct documents the transaction modified, in first-touch order."""
        seen = set()
        out: List[str] = []
        for entry in self.entries_for(txn_id):
            if entry.records and entry.document_name not in seen:
                seen.add(entry.document_name)
                out.append(entry.document_name)
        return out

    def record_count(self, txn_id: str) -> int:
        return sum(len(e.records) for e in self.entries_for(txn_id))

    # -- truncation ----------------------------------------------------------

    def truncate(self, txn_id: str) -> int:
        """Drop a finished transaction's entries; returns how many.

        Called on commit (compensation will never be needed) or after
        compensation completes.
        """
        before = len(self._entries)
        self._entries = [e for e in self._entries if e.txn_id != txn_id]
        removed = before - len(self._entries)
        if removed and self.sink is not None:
            self.sink.on_truncate(txn_id)
        return removed

    # -- diagnostics --------------------------------------------------------------

    def approximate_bytes(self, txn_id: Optional[str] = None) -> int:
        """Rough log footprint (used by the log-vs-snapshot experiment E3).

        Every record — direct or nested inside a ``ReplaceRecord`` —
        pays the same flat per-record overhead plus its payload length,
        so E3's comparison is not skewed by how a change happens to be
        nested.
        """
        entries = self.entries_for(txn_id) if txn_id else self._entries
        return sum(entry_bytes(entry) for entry in entries)

    def dump(self) -> str:
        """Human-readable text form of the whole log."""
        lines = []
        for e in self._entries:
            lines.append(
                f"#{e.seq} [{e.txn_id}] {e.kind} doc={e.document_name} "
                f"records={len(e.records)} t={e.timestamp:.3f} {e.action_xml}"
            )
        return "\n".join(lines)

    # -- persistence ---------------------------------------------------------

    def to_text(self) -> str:
        """Serialize the full log as an XML document.

        Together with :meth:`from_text` this gives peers a restart
        story: a peer that went down with in-flight transactions can
        reload its log and compensate them on rejoin (see
        ``AXMLPeer.rejoin``).  The encoding dogfoods the library's own
        XML layer.
        """
        from repro.xmlstore.nodes import Document
        from repro.xmlstore.serializer import serialize

        doc = Document("log")
        root = doc.create_root("log")
        root.attributes["peer"] = self.peer_id
        for entry in self._entries:
            entry_el = root.new_element("entry", _entry_attrs(entry))
            _fill_entry_element(entry_el, entry)
        return serialize(doc)

    @classmethod
    def from_text(cls, text: str) -> "OperationLog":
        """Restore a log serialized by :meth:`to_text`.

        Entries are re-ordered by ``seq`` — ``undo_entries`` must
        compensate in true reverse execution order even when the text
        was merged or reordered in transit — and duplicate seqs are
        rejected (two entries claiming the same position cannot both be
        replayed).
        """
        from repro.xmlstore.parser import parse_document

        doc = parse_document(text, name="log")
        entries = [
            _entry_from_element(entry_el)
            for entry_el in doc.root.find_children("entry")
        ]
        return cls.from_entries(
            doc.root.attributes.get("peer", ""), entries
        )

    @classmethod
    def from_entries(
        cls, peer_id: str, entries: Sequence[LogEntry]
    ) -> "OperationLog":
        """A log adopting *entries* (sorted by seq, duplicates rejected),
        with ``append`` continuing after the highest adopted seq."""
        import itertools as _itertools

        log = cls(peer_id)
        ordered = sorted(entries, key=lambda e: e.seq)
        seen = set()
        for entry in ordered:
            if entry.seq in seen:
                raise ValueError(
                    f"duplicate log seq {entry.seq} in restored log"
                )
            seen.add(entry.seq)
        log._entries = list(ordered)
        max_seq = ordered[-1].seq if ordered else 0
        log._seq = _itertools.count(max_seq + 1)
        return log


# ---------------------------------------------------------------------------
# single-entry XML codec (shared by to_text/from_text and the durable WAL)
# ---------------------------------------------------------------------------

def _entry_attrs(entry: LogEntry) -> dict:
    return {
        "seq": str(entry.seq),
        "txn": entry.txn_id,
        "kind": entry.kind,
        "document": entry.document_name,
        "timestamp": repr(entry.timestamp),
    }


def _fill_entry_element(entry_el, entry: LogEntry) -> None:
    entry_el.new_element("forward").new_text(entry.action_xml)
    for record in entry.records:
        _record_to_element(entry_el, record)


def _entry_from_element(entry_el) -> LogEntry:
    forward_el = entry_el.first_child("forward")
    records = [
        _record_from_element(rec_el)
        for rec_el in entry_el.find_children("record")
    ]
    return LogEntry(
        seq=int(entry_el.attributes["seq"]),
        txn_id=entry_el.attributes["txn"],
        kind=entry_el.attributes["kind"],
        document_name=entry_el.attributes["document"],
        action_xml=forward_el.text_content() if forward_el is not None else "",
        records=records,
        timestamp=float(entry_el.attributes.get("timestamp", "0")),
    )


def entry_to_xml(entry: LogEntry) -> str:
    """One entry as a self-contained XML document (durable-WAL framing).

    Frames are memoized on the entry (entries are immutable once
    appended), so an entry written to the WAL, folded into a checkpoint
    and shipped to R replicas encodes once rather than 2+R times.  The
    cache is encode-side only: decoding never seeds it, keeping the
    memoized frame provably identical to a fresh render.
    """
    from repro.obs.prof import PROF
    from repro.xmlstore.fastpath import fast_path_enabled
    from repro.xmlstore.nodes import Document
    from repro.xmlstore.serializer import serialize

    use_cache = fast_path_enabled()
    if use_cache and entry._xml_cache is not None:
        PROF.incr("entry_codec_hits")
        return entry._xml_cache
    doc = Document("entry")
    root = doc.create_root("entry")
    root.attributes.update(_entry_attrs(entry))
    _fill_entry_element(root, entry)
    text = serialize(doc)
    if use_cache:
        PROF.incr("entry_codec_misses")
        entry._xml_cache = text
    return text


def entry_from_xml(text: str) -> LogEntry:
    """Decode one entry serialized by :func:`entry_to_xml`."""
    from repro.xmlstore.parser import parse_document

    doc = parse_document(text, name="entry")
    return _entry_from_element(doc.root)


def entry_bytes(entry: LogEntry) -> int:
    """Logical payload size of one entry (action + record accounting).

    Used for :meth:`OperationLog.approximate_bytes` and the durable
    WAL's ``wal_bytes`` counter.  Deliberately *not* the serialized
    frame length: node-id reprs embed a process-global document serial,
    so frame lengths vary between runs within one process and would
    break byte-identical summaries.
    """
    return len(entry.action_xml) + sum(
        _record_bytes(record) for record in entry.records
    )


def _record_bytes(record: ChangeRecord) -> int:
    """Flat 32-byte overhead + payload, applied uniformly at every
    nesting level (a replace charges itself plus its halves)."""
    total = 32
    if record.kind == "replace":
        total += _record_bytes(record.deleted)
        total += sum(_record_bytes(inserted) for inserted in record.inserted)
    else:
        total += len(getattr(record, "snapshot_xml", ""))
        total += len(getattr(record, "inserted_xml", ""))
    return total


def _record_to_element(parent, record: ChangeRecord) -> None:
    from repro.query.update import DeleteRecord, InsertRecord, ReplaceRecord

    if isinstance(record, DeleteRecord):
        el = parent.new_element(
            "record",
            {
                "kind": "delete",
                "node": repr(record.node_id),
                "parent": repr(record.parent_id),
                "index": str(record.index),
                "before": repr(record.before_id) if record.before_id else "",
                "after": repr(record.after_id) if record.after_id else "",
            },
        )
        el.new_element("snapshot").new_text(record.snapshot_xml)
    elif isinstance(record, InsertRecord):
        el = parent.new_element(
            "record",
            {
                "kind": "insert",
                "node": repr(record.node_id),
                "parent": repr(record.parent_id),
                "index": str(record.index),
            },
        )
        el.new_element("data").new_text(record.inserted_xml)
    elif isinstance(record, ReplaceRecord):
        el = parent.new_element("record", {"kind": "replace"})
        _record_to_element(el, record.deleted)
        for inserted in record.inserted:
            _record_to_element(el, inserted)
    else:  # pragma: no cover - exhaustive
        raise TypeError(f"unknown record {record!r}")


def _record_from_element(element) -> ChangeRecord:
    from repro.query.update import DeleteRecord, InsertRecord, ReplaceRecord
    from repro.xmlstore.nodes import NodeId

    kind = element.attributes.get("kind", "")
    if kind == "delete":
        snapshot_el = element.first_child("snapshot")
        return DeleteRecord(
            node_id=NodeId.parse(element.attributes["node"]),
            parent_id=NodeId.parse(element.attributes["parent"]),
            index=int(element.attributes["index"]),
            before_id=(
                NodeId.parse(element.attributes["before"])
                if element.attributes.get("before")
                else None
            ),
            after_id=(
                NodeId.parse(element.attributes["after"])
                if element.attributes.get("after")
                else None
            ),
            snapshot_xml=snapshot_el.text_content() if snapshot_el is not None else "",
        )
    if kind == "insert":
        data_el = element.first_child("data")
        return InsertRecord(
            node_id=NodeId.parse(element.attributes["node"]),
            parent_id=NodeId.parse(element.attributes["parent"]),
            index=int(element.attributes["index"]),
            inserted_xml=data_el.text_content() if data_el is not None else "",
        )
    if kind == "replace":
        children = element.find_children("record")
        deleted = _record_from_element(children[0])
        inserted = [_record_from_element(child) for child in children[1:]]
        return ReplaceRecord(deleted, inserted)
    raise ValueError(f"unknown record kind {kind!r}")
