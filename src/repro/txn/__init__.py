"""The paper's contribution: relaxed-ACID transactions for AXML systems.

Modules
-------
* :mod:`repro.txn.transaction` — transactions and per-peer transaction
  contexts (§3.2's ``TC_Ax``).
* :mod:`repro.txn.wal` — the operation log: location-query results,
  inserted-node ids, old values — what dynamic compensation reads.
* :mod:`repro.txn.operations` — transactional operation wrappers.
* :mod:`repro.txn.compensation` — §3.1 dynamic compensation construction.
* :mod:`repro.txn.recovery` — §3.2 nested recovery protocol.
* :mod:`repro.txn.peer_independent` — §3.2 peer-independent compensation.
* :mod:`repro.txn.disconnection` — §3.3 disconnection handling (chaining).
* :mod:`repro.txn.spheres` — §3.3 spheres of atomicity.
* :mod:`repro.txn.manager` — the per-peer transaction manager.
"""

from repro.txn.transaction import (
    Transaction,
    TransactionContext,
    TransactionState,
)
from repro.txn.wal import LogEntry, OperationLog
from repro.txn.operations import TransactionalOperation
from repro.txn.compensation import (
    compensate_records,
    compensating_actions_for,
    CompensationPlan,
)
from repro.txn.spheres import SphereAnalysis, analyze_sphere

__all__ = [
    "Transaction",
    "TransactionContext",
    "TransactionState",
    "LogEntry",
    "OperationLog",
    "TransactionalOperation",
    "compensate_records",
    "compensating_actions_for",
    "CompensationPlan",
    "SphereAnalysis",
    "analyze_sphere",
]
