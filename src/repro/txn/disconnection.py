"""Scenario drivers for the §3.3 disconnection cases.

The mechanics of the chaining protocol live on the peer
(:class:`repro.p2p.peer.AXMLPeer`): result redirection past a dead
parent, descendant notification, sibling timeout reporting, reuse of
redirected results.  This module packages the paper's four cases as
runnable scenario steps so tests, examples and benchmarks exercise them
uniformly, and reports what happened in each.

Case map (Fig. 2 topology, ``[AP1* -> AP2 -> [AP3 -> AP6] || [AP4 -> AP5]]``):

(a) leaf disconnection, detected by the parent — an invocation of the
    leaf fails; nested recovery (§3.2) handles it (retry/replica or
    abort).
(b) parent disconnection, detected by the child returning results — the
    child redirects results up the chain; the grandparent reuses them.
(c) child disconnection, detected by the parent via ping — the parent
    informs the orphaned descendants, preventing wasted effort.
(d) sibling disconnection, detected by a sibling via stream silence —
    the sibling notifies the dead peer's parent and children.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import PeerDisconnected, ServiceFault
from repro.p2p.peer import AXMLPeer


@dataclass
class CaseReport:
    """What a disconnection case produced, for assertions and tables."""

    case: str
    disconnected_peer: str
    detected_by: str
    #: None until a detection event for the peer exists.
    detection_latency: Optional[float] = None
    work_reused: int = 0
    work_discarded: int = 0
    descendants_informed: int = 0
    recovered: bool = False
    metrics: Dict[str, int] = field(default_factory=dict)


def _snapshot_delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    keys = set(before) | set(after)
    return {k: after.get(k, 0) - before.get(k, 0) for k in keys if after.get(k, 0) != before.get(k, 0)}


def run_case_a_leaf_disconnection(
    parent: AXMLPeer,
    txn_id: str,
    leaf_peer: str,
    method_name: str,
    params: Optional[Dict[str, str]] = None,
) -> CaseReport:
    """(a) The leaf is already disconnected; the parent invokes it and
    runs nested recovery on the failure."""
    network = parent.network
    before = network.metrics.snapshot()
    report = CaseReport("a", leaf_peer, parent.peer_id)
    try:
        parent.invoke(txn_id, leaf_peer, method_name, params or {})
        report.recovered = True  # forward recovery succeeded
    except (PeerDisconnected, ServiceFault):
        report.recovered = False  # backward recovery ran
    report.detection_latency = network.metrics.detection_latency(leaf_peer)
    report.metrics = _snapshot_delta(before, network.metrics.snapshot())
    report.work_discarded = report.metrics.get("invocations_discarded", 0)
    return report


def run_case_b_parent_disconnection(
    grandparent: AXMLPeer,
    txn_id: str,
    dead_parent: str,
    replacement_peer: str,
    method_name: str,
    params: Optional[Dict[str, str]] = None,
) -> CaseReport:
    """(b) After the parent died mid-invocation (results were redirected
    to *grandparent* by the network's return-failure path), the
    grandparent forward-recovers by re-invoking on *replacement_peer*,
    passing along any reusable redirected results."""
    network = grandparent.network
    before = network.metrics.snapshot()
    report = CaseReport("b", dead_parent, grandparent.peer_id)
    reused: Dict[str, List[str]] = {}
    for (t, method), fragments in list(grandparent.reusable_results.items()):
        if t == txn_id:
            reused[method] = fragments
            del grandparent.reusable_results[(t, method)]
            network.metrics.record_reused_invocation()
    try:
        grandparent.invoke(
            txn_id,
            replacement_peer,
            method_name,
            params or {},
            reused_fragments=reused,
        )
        report.recovered = True
    except (PeerDisconnected, ServiceFault):
        report.recovered = False
    report.detection_latency = network.metrics.detection_latency(dead_parent)
    report.metrics = _snapshot_delta(before, network.metrics.snapshot())
    report.work_reused = len(reused) + report.metrics.get("invocations_reused", 0)
    report.work_discarded = report.metrics.get("invocations_discarded", 0)
    return report


def run_case_c_child_disconnection(
    parent: AXMLPeer, txn_id: str
) -> CaseReport:
    """(c) The parent pings its chain children; on a detected death it
    informs the orphaned descendants (saving their remaining effort)."""
    network = parent.network
    before = network.metrics.snapshot()
    dead = parent.check_child_liveness(txn_id)
    report = CaseReport(
        "c",
        dead[0] if dead else "",
        parent.peer_id,
    )
    if dead:
        report.detection_latency = network.metrics.detection_latency(dead[0])
    report.metrics = _snapshot_delta(before, network.metrics.snapshot())
    report.descendants_informed = report.metrics.get("descendants_informed", 0)
    report.recovered = bool(dead)
    return report


def run_case_d_sibling_disconnection(
    sibling: AXMLPeer, txn_id: str, silent_sibling: str
) -> CaseReport:
    """(d) A sibling notices the silence of another sibling's data stream
    and notifies that peer's parent and children through the chain."""
    network = sibling.network
    before = network.metrics.snapshot()
    sibling.report_stream_timeout(txn_id, silent_sibling)
    report = CaseReport("d", silent_sibling, sibling.peer_id)
    report.detection_latency = network.metrics.detection_latency(silent_sibling)
    report.metrics = _snapshot_delta(before, network.metrics.snapshot())
    report.descendants_informed = report.metrics.get(
        "disconnect_notices_received", 0
    )
    report.recovered = report.descendants_informed > 0
    return report
